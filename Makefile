# Convenience targets for the power-er reproduction.
#
#   make test        - tier-1 test suite
#   make bench-smoke - <60s perf smoke: fast paths must beat the scalar
#                      references (POWER_BENCH_FAST=1 shrinks the workload)
#   make bench-perf  - full pipeline benchmark; enforces the 5x vectorize /
#                      3x construct speedup floors and refreshes
#                      benchmarks/results/BENCH_pipeline.json

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench-smoke bench-perf

test:
	$(PYTHON) -m pytest -q

bench-smoke:
	POWER_BENCH_FAST=1 $(PYTHON) benchmarks/bench_perf_pipeline.py --check
	POWER_BENCH_FAST=1 $(PYTHON) -m pytest -q tests/test_perf_smoke.py

bench-perf:
	$(PYTHON) benchmarks/bench_perf_pipeline.py --check
