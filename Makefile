# Convenience targets for the power-er reproduction.
#
#   make check        - the default gate: tests + engine smoke + lint
#   make test         - tier-1 test suite
#   make engine-smoke - <60s deterministic fault-injection run asserting
#                       crash-resume converges to the straight-through run
#   make lint         - ruff over src/tests/benchmarks (skipped with a
#                       notice when ruff is not installed; config lives in
#                       pyproject.toml so editors pick it up regardless)
#   make bench-smoke  - <60s perf smoke: fast paths must beat the scalar
#                       references (POWER_BENCH_FAST=1 shrinks the workload)
#   make bench-perf   - full pipeline benchmark; enforces the 5x vectorize /
#                       3x construct speedup floors and refreshes
#                       benchmarks/results/BENCH_pipeline.json

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test engine-smoke lint bench-smoke bench-perf

check: test engine-smoke lint

test:
	$(PYTHON) -m pytest -q

engine-smoke:
	POWER_BENCH_FAST=1 $(PYTHON) benchmarks/engine_smoke.py

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping lint (config: pyproject.toml [tool.ruff])"; \
	fi

bench-smoke:
	POWER_BENCH_FAST=1 $(PYTHON) benchmarks/bench_perf_pipeline.py --check
	POWER_BENCH_FAST=1 $(PYTHON) -m pytest -q tests/test_perf_smoke.py

bench-perf:
	$(PYTHON) benchmarks/bench_perf_pipeline.py --check
