# Convenience targets for the power-er reproduction.
#
#   make check        - the default gate: tests + smokes + verify + lint
#   make test         - tier-1 test suite
#   make engine-smoke - <60s deterministic fault-injection run asserting
#                       crash-resume converges to the straight-through run
#   make verify       - repro.verify battery: differential oracles, structural
#                       invariants, metamorphic laws, mutation self-test
#   make lint         - ruff over src/tests/benchmarks (skipped with a
#                       notice when ruff is not installed; config lives in
#                       pyproject.toml so editors pick it up regardless)
#   make coverage     - tier-1 suite under pytest-cov; enforces the line
#                       floor and refreshes benchmarks/results/COVERAGE.json
#                       (skipped with a notice when pytest-cov is missing)
#   make bench-smoke  - <60s perf smoke: fast paths must beat the scalar
#                       references (POWER_BENCH_FAST=1 shrinks the workload)
#   make bench-perf   - full pipeline benchmark; enforces the 5x vectorize /
#                       3x construct speedup floors and refreshes
#                       benchmarks/results/BENCH_pipeline.json
#   make shard-smoke  - 2-worker sharded resolution (exact mode) asserting
#                       byte-equivalence with the serial resolver
#   make bench-shard  - shard-scaling benchmark: speedup curve + measured
#                       Amdahl fraction; enforces the 2.5x @ 4 workers floor
#                       and refreshes benchmarks/results/BENCH_shard.json
#   make bench-selection - selection-loop benchmark: incremental path-cover
#                       engine vs per-round scratch (byte-identical
#                       transcripts); enforces the 3x floor and refreshes
#                       benchmarks/results/BENCH_selection.json
#   make bench-selection-smoke - <60s smoke of the same; the gate only
#                       requires the incremental engine to win (>= 1.0x)
#   make bench-obs    - observability overhead benchmark: full resolution in
#                       three modes (obs off / metrics / tracing+metrics);
#                       enforces <1% metrics and <5% tracing overhead plus
#                       deterministic 4-worker span merge, and refreshes
#                       benchmarks/results/BENCH_obs.json
#   make bench-obs-smoke - <60s smoke of the same with relaxed percentage
#                       bars (tiny workloads make relative overhead noise)
#   make stream-smoke - <5s streaming CLI smoke: ingest the restaurant
#                       dataset in checkpointed batches, then resume the
#                       same snapshot directory and finish the stream
#   make bench-stream - streaming-ingest benchmark: incremental resolution
#                       vs re-resolve-per-batch and index extend vs rebuild
#                       (bit-equivalence asserted while timing); enforces
#                       the 3x floors and refreshes
#                       benchmarks/results/BENCH_stream.json
#   make bench-stream-smoke - <60s smoke of the same; the gates only
#                       require the incremental paths not to lose
#   make serve-smoke  - <60s serving CLI smoke: spawn a private server,
#                       ingest the restaurant dataset through the client,
#                       then respawn on the same checkpoint root and query
#                       clusters from the restored session
#   make bench-serve  - serve-throughput benchmark: 1/8/32 concurrent
#                       tenants over real sockets (state_sha bit-equivalence
#                       asserted while timing) plus a priced load-shedding
#                       burst; enforces the 3x aggregate-throughput floor
#                       and refreshes benchmarks/results/BENCH_serve.json
#   make bench-serve-smoke - <60s smoke of the same with a smaller fan-out
#                       and a relaxed scaling bar (shedding and equivalence
#                       gates are never relaxed)
#   make plan-smoke   - <60s planner CLI smoke: fast-calibrate a throwaway
#                       profile, then explain a plan for the restaurant
#                       dataset from it
#   make bench-plan   - planner-quality benchmark: exhaustive config grid vs
#                       the planned config (pair-universe equivalence asserted
#                       while timing); enforces the 1.15x regret ceiling +
#                       synthetic-host adaptation and refreshes
#                       benchmarks/results/BENCH_plan.json
#   make bench-plan-smoke - <60s smoke of the same with a relaxed regret bar
#                       (adaptation gates are never relaxed)

PYTHON ?= python
export PYTHONPATH := src

# Minimum acceptable line coverage (percent) for `make coverage`.
COVERAGE_FLOOR ?= 85

.PHONY: check test engine-smoke shard-smoke stream-smoke serve-smoke plan-smoke verify lint coverage bench-smoke bench-perf bench-shard bench-selection bench-selection-smoke bench-obs bench-obs-smoke bench-stream bench-stream-smoke bench-serve bench-serve-smoke bench-plan bench-plan-smoke

check: test engine-smoke shard-smoke stream-smoke serve-smoke plan-smoke bench-selection-smoke bench-obs-smoke bench-stream-smoke bench-serve-smoke bench-plan-smoke verify coverage lint

test:
	$(PYTHON) -m pytest -q

engine-smoke:
	POWER_BENCH_FAST=1 $(PYTHON) benchmarks/engine_smoke.py

shard-smoke:
	$(PYTHON) -m repro shard --dataset restaurant --scale 0.05 --workers 2 \
		--check-equivalence

verify:
	$(PYTHON) -m repro verify --dataset restaurant --scale 0.05 --quiet

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping lint (config: pyproject.toml [tool.ruff])"; \
	fi

coverage:
	@if $(PYTHON) -c "import pytest_cov" >/dev/null 2>&1; then \
		$(PYTHON) -m pytest -q -m "not slow" \
			--cov=src/repro --cov-report=term --cov-report=json:coverage.json \
			--cov-fail-under=$(COVERAGE_FLOOR) && \
		$(PYTHON) benchmarks/coverage_summary.py coverage.json \
			benchmarks/results/COVERAGE.json; \
	else \
		echo "pytest-cov not installed; skipping coverage" \
		     "(floor: $(COVERAGE_FLOOR)%, summary: benchmarks/results/COVERAGE.json)"; \
	fi

bench-smoke:
	POWER_BENCH_FAST=1 $(PYTHON) benchmarks/bench_perf_pipeline.py --check
	POWER_BENCH_FAST=1 $(PYTHON) -m pytest -q tests/test_perf_smoke.py

bench-perf:
	$(PYTHON) benchmarks/bench_perf_pipeline.py --check

bench-shard:
	$(PYTHON) benchmarks/bench_shard_scaling.py --check

bench-selection:
	$(PYTHON) benchmarks/bench_selection_loop.py --check

bench-selection-smoke:
	POWER_BENCH_FAST=1 $(PYTHON) benchmarks/bench_selection_loop.py --check

bench-obs:
	$(PYTHON) benchmarks/bench_obs_overhead.py --check

bench-obs-smoke:
	POWER_BENCH_FAST=1 $(PYTHON) benchmarks/bench_obs_overhead.py --check

# Scratch directory for the streaming CLI smoke (wiped before and after).
STREAM_SMOKE_DIR ?= .stream-smoke

stream-smoke:
	@rm -rf $(STREAM_SMOKE_DIR) && mkdir -p $(STREAM_SMOKE_DIR)
	$(PYTHON) -m repro generate restaurant $(STREAM_SMOKE_DIR)/records.csv
	$(PYTHON) -m repro stream $(STREAM_SMOKE_DIR)/records.csv --batch-size 200 \
		--checkpoint-dir $(STREAM_SMOKE_DIR)/ck --max-batches 2
	$(PYTHON) -m repro stream $(STREAM_SMOKE_DIR)/records.csv --batch-size 200 \
		--checkpoint-dir $(STREAM_SMOKE_DIR)/ck --resume
	@rm -rf $(STREAM_SMOKE_DIR)

bench-stream:
	$(PYTHON) benchmarks/bench_stream_ingest.py --check

# The smoke writes outside benchmarks/results/ on purpose: the committed
# BENCH_stream.json holds full-run numbers and fast-mode timings must not
# clobber it.
STREAM_SMOKE_OUT ?= /tmp/BENCH_stream_smoke.json

bench-stream-smoke:
	POWER_BENCH_FAST=1 $(PYTHON) benchmarks/bench_stream_ingest.py --check \
		--out $(STREAM_SMOKE_OUT)

# Scratch directory for the serving CLI smoke (wiped before and after).
SERVE_SMOKE_DIR ?= .serve-smoke

serve-smoke:
	@rm -rf $(SERVE_SMOKE_DIR) && mkdir -p $(SERVE_SMOKE_DIR)
	$(PYTHON) -m repro generate restaurant $(SERVE_SMOKE_DIR)/records.csv
	$(PYTHON) -m repro client ingest-csv --spawn $(SERVE_SMOKE_DIR)/root \
		--session smoke --input $(SERVE_SMOKE_DIR)/records.csv \
		--batch-size 200
	$(PYTHON) -m repro client clusters --spawn $(SERVE_SMOKE_DIR)/root \
		--session smoke
	@rm -rf $(SERVE_SMOKE_DIR)

bench-serve:
	$(PYTHON) benchmarks/bench_serve_throughput.py --check

# Like the stream smoke: fast-mode timings must not clobber the committed
# full-run BENCH_serve.json.
SERVE_SMOKE_OUT ?= /tmp/BENCH_serve_smoke.json

bench-serve-smoke:
	POWER_BENCH_FAST=1 $(PYTHON) benchmarks/bench_serve_throughput.py --check \
		--out $(SERVE_SMOKE_OUT)

# Scratch directory for the planner CLI smoke (wiped before and after).
PLAN_SMOKE_DIR ?= .plan-smoke

plan-smoke:
	@rm -rf $(PLAN_SMOKE_DIR) && mkdir -p $(PLAN_SMOKE_DIR)
	$(PYTHON) -m repro plan --calibrate --fast \
		--profile $(PLAN_SMOKE_DIR)/profile.json
	$(PYTHON) -m repro plan --explain --dataset restaurant --scale 0.05 \
		--profile $(PLAN_SMOKE_DIR)/profile.json
	@rm -rf $(PLAN_SMOKE_DIR)

bench-plan:
	$(PYTHON) benchmarks/bench_plan_quality.py --check

# Like the other smokes: fast-mode timings must not clobber the committed
# full-run BENCH_plan.json.
PLAN_SMOKE_OUT ?= /tmp/BENCH_plan_smoke.json

bench-plan-smoke:
	POWER_BENCH_FAST=1 $(PYTHON) benchmarks/bench_plan_quality.py --check \
		--out $(PLAN_SMOKE_OUT)
