"""Table 2: the paper example's similarity vectors."""

from conftest import run_once
from repro.experiments import figures


def test_table2_similarity(benchmark, results):
    rows = run_once(benchmark, figures.table2_similarity,
                    save_to=results("table2_similarity.txt"))
    assert len(rows) == 18  # the paper's eighteen similar pairs
    assert all(len(row) == 5 for row in rows)
