"""Ablation: the Power+ confidence threshold (paper default 0.8)."""

from conftest import run_once
from repro.experiments import ablations


def test_ablation_confidence(benchmark, results):
    rows = run_once(
        benchmark,
        ablations.confidence_sweep,
        save_to=results("ablation_confidence.txt"),
    )
    thresholds = [row[1] for row in rows]
    blues = [row[4] for row in rows]
    assert thresholds == sorted(thresholds)
    # Higher thresholds defer more vertices to the histogram step.
    assert blues[-1] >= blues[0]
