"""Streaming-ingest benchmark: incremental resolution must earn its keep.

Streams an ACMPub workload through :class:`repro.stream.StreamingResolver`
and times it against (a) the naive service that re-resolves the whole
growing prefix after every batch, and (b) the same stream with per-batch
token-index rebuilds instead of incremental extends.  Equivalence is
asserted while timing — bit-identical labels, billing, and clusters
between extend and rebuild modes, and a decided-pair universe equal to
the final one-shot join.  The report lands in
``benchmarks/results/BENCH_stream.json``.

Gates: streamed ingest >= 3x faster than re-resolve-per-batch, and index
extends >= 3x faster than rebuilds (relaxed under ``POWER_BENCH_FAST=1``,
where sub-second runs make the ratios noisy).

Runs two ways:

* under pytest (the benchmark suite): ``pytest benchmarks/bench_stream_ingest.py``
* standalone: ``PYTHONPATH=src python benchmarks/bench_stream_ingest.py --check``
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments import emit, perf
from repro.experiments.stream_ingest import (
    run_stream_ingest_benchmark,
    stream_acceptance_failures,
    stream_summary_rows,
)

RESULT_NAME = "BENCH_stream.json"
HEADERS = ("strategy", "wall", "index time", "speedup")


def test_stream_ingest(benchmark, results):
    from conftest import run_once

    report = run_once(benchmark, run_stream_ingest_benchmark)
    perf.write_report(report, results(RESULT_NAME))
    emit("Streaming ingest", HEADERS, stream_summary_rows(report))
    failures = stream_acceptance_failures(report)
    assert not failures, "; ".join(failures)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=None,
                        help="ACMPub subsample fraction (default 0.15; 0.02 in fast mode)")
    parser.add_argument("--records", type=int, default=None,
                        help="cap on streamed records (default 2000; 400 in fast mode)")
    parser.add_argument("--batch-size", type=int, default=None,
                        help="records per streamed batch (default 100; 80 in fast mode)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).parent / "results" / RESULT_NAME)
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero when a speedup or equivalence gate fails")
    args = parser.parse_args(argv)

    report = run_stream_ingest_benchmark(
        scale=args.scale,
        records_cap=args.records,
        batch_size=args.batch_size,
        seed=args.seed,
    )
    path = perf.write_report(report, args.out)
    emit("Streaming ingest", HEADERS, stream_summary_rows(report))
    print(f"report -> {path}")

    failures = stream_acceptance_failures(report)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if args.check and failures:
        return 1
    if not failures:
        print("all gates passed:", json.dumps({
            "ingest_vs_reresolve": round(
                report["speedups"]["ingest_vs_reresolve"], 2
            ),
            "index_extend_vs_rebuild": round(
                report["speedups"]["index_extend_vs_rebuild"], 2
            ),
            "extend_equals_rebuild": report["equivalence"]["extend_equals_rebuild"],
        }))
    return 0


if __name__ == "__main__":
    sys.exit(main())
