"""Extension bench: robustness to spammer workers per aggregation scheme."""

from conftest import run_once
from repro.experiments import ablations


def test_extension_spammers(benchmark, results):
    rows = run_once(
        benchmark,
        ablations.spammer_sweep,
        save_to=results("extension_spammers.txt"),
    )
    by = {(row[1], row[2]): row for row in rows}
    fractions = sorted({row[1] for row in rows})
    moderate = fractions[1]
    heavy = fractions[-1]
    # At moderate spam, estimated-accuracy aggregation clearly wins: the
    # spammers' ~0.5 estimated accuracy zeroes their weight.
    assert by[(moderate, "quality-aware")][3] >= by[(moderate, "majority")][3] - 0.01
    # At heavy spam every aggregator degrades; they stay in the same band.
    assert by[(heavy, "quality-aware")][3] >= by[(heavy, "majority")][3] - 0.12
    # Without spammers the two are comparable.
    assert abs(by[(0.0, "quality-aware")][3] - by[(0.0, "majority")][3]) < 0.15
