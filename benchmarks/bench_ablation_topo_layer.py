"""Ablation: which topological level Power asks first (paper: the middle)."""

from conftest import run_once
from repro.experiments import ablations


def test_ablation_topo_layer(benchmark, results):
    rows = run_once(
        benchmark,
        ablations.topo_layer_sweep,
        save_to=results("ablation_topo_layer.txt"),
    )
    by = {row[1]: row for row in rows}
    middle_questions = by[0.5][3]
    extreme_questions = min(by[0.0][3], by[1.0][3])
    # Asking the middle level should not cost more than asking an extreme
    # (boundary vertices concentrate in the middle, §5.3.2).
    assert middle_questions <= extreme_questions * 1.35
