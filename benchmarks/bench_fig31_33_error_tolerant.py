"""Figs 31-33: error tolerance — Power vs Power+ over epsilon."""

import numpy as np

from conftest import run_once
from repro.experiments import figures


def test_fig31_33_error_tolerant(benchmark, results):
    rows = run_once(
        benchmark,
        figures.error_tolerant_sweep,
        save_to=results("fig31_33_error_tolerant.txt"),
    )
    for dataset in {row[0] for row in rows}:
        power = [r for r in rows if r[0] == dataset and r[2] == "power"]
        plus = [r for r in rows if r[0] == dataset and r[2] == "power+"]
        # Fig 31: Power+ improves quality on average across epsilon.
        assert np.mean([r[3] for r in plus]) >= np.mean([r[3] for r in power])
        # Fig 32: Power+ asks somewhat more questions (no inference from
        # BLUE vertices), but stays in the same order of magnitude... the
        # gap grows with worker noise, so allow a wide factor.
        for p_row, plus_row in zip(power, plus):
            assert plus_row[4] >= p_row[4] * 0.8
