"""Shard-scaling benchmark: the exact sharded resolver's speedup curve.

Times :class:`repro.shard.ShardedResolver` (exact lockstep mode) against
the serial :class:`repro.core.PowerResolver` on an ACMPub-scale workload
at 1/2/4/8 workers, measures the Amdahl parallel fraction from an inline
instrumented run, verifies every run byte-identical to the serial
baseline *while* timing it, and writes the machine-readable report to
``benchmarks/results/BENCH_shard.json``.

Runs two ways:

* under pytest (the benchmark suite): ``pytest benchmarks/bench_shard_scaling.py``
* standalone: ``PYTHONPATH=src python benchmarks/bench_shard_scaling.py --check``

Gate: 2.5x speedup at 4 workers — measured wall-clock on hosts with >= 4
CPUs, Amdahl projection from the measured parallel fraction on
``cpu_limited`` hosts (the report records which basis applied).
``POWER_BENCH_FAST=1`` shrinks the workload to a <60s smoke run.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments import emit, shard_scaling

RESULT_NAME = "BENCH_shard.json"
HEADERS = ("workers", "shards", "seconds", "measured", "projected", "equivalent")


def test_shard_scaling(benchmark, results):
    from conftest import run_once

    report = run_once(benchmark, shard_scaling.run_shard_benchmark)
    shard_scaling.write_report(report, results(RESULT_NAME))
    emit(
        "Sharded exact-mode speedup curve",
        HEADERS,
        shard_scaling.summary_rows(report),
    )
    failures = shard_scaling.acceptance_failures(report)
    assert not failures, "; ".join(failures)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="acmpub",
                        choices=("acmpub", "cora", "restaurant"))
    parser.add_argument("--scale", type=float, default=None,
                        help="ACMPub subsample fraction (default 0.15; 0.02 in fast mode)")
    parser.add_argument("--workers", type=int, nargs="+", default=None,
                        help="speedup-curve points (default 1 2 4 8)")
    parser.add_argument("--shards", type=int, default=None,
                        help="tiles per parallel stage (default 2x workers)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).parent / "results" / RESULT_NAME)
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero when an equivalence or speedup gate fails")
    args = parser.parse_args(argv)

    report = shard_scaling.run_shard_benchmark(
        dataset=args.dataset,
        scale=args.scale,
        worker_counts=tuple(args.workers) if args.workers else None,
        shards=args.shards,
        seed=args.seed,
    )
    path = shard_scaling.write_report(report, args.out)
    emit(
        "Sharded exact-mode speedup curve",
        HEADERS,
        shard_scaling.summary_rows(report),
    )
    print(f"report -> {path}")
    print(
        f"parallel fraction {report['parallel_fraction']:.3f} "
        f"({report['parallel_seconds']:.2f}s of {report['inline']['seconds']:.2f}s), "
        f"gate basis: {report['target']['basis']}"
        + (" [cpu_limited]" if report["cpu_limited"] else "")
    )

    failures = shard_scaling.acceptance_failures(report)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if args.check and failures:
        return 1
    if not failures:
        print("all gates passed:",
              json.dumps({
                  f"{run['workers']}w": f"{run['measured_speedup']}x"
                  for run in report["runs"]
              }))
    return 0


if __name__ == "__main__":
    sys.exit(main())
