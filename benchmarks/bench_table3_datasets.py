"""Table 3: dataset statistics at benchmark scale."""

from conftest import run_once
from repro.experiments import figures


def test_table3_datasets(benchmark, results):
    rows = run_once(benchmark, figures.table3_datasets,
                    save_to=results("table3_datasets.txt"))
    stats = {row[0]: row for row in rows}
    # Published shapes for the two full-size datasets.
    assert stats["restaurant"][1] == 858 and stats["restaurant"][2] == 752
    assert stats["cora"][1] == 997 and stats["cora"][2] == 191
    # ACMPub runs at reduced scale but keeps the records/entities ratio.
    ratio = stats["acmpub"][1] / stats["acmpub"][2]
    assert 10 <= ratio <= 15  # full-size ratio is 66879/5347 = 12.5
    assert all(row[5] == 5 for row in rows)  # five workers per pair
