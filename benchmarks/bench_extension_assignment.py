"""Extension bench: quality-aware question-to-worker assignment."""

from conftest import run_once
from repro.experiments import ablations


def test_extension_assignment(benchmark, results):
    rows = run_once(
        benchmark,
        ablations.assignment_compare,
        save_to=results("extension_assignment.txt"),
    )
    by = {row[1]: row for row in rows}
    assert set(by) == {"random", "round-robin", "best-worker"}
    # Routing questions to the best (estimated) workers pays off.
    assert by["best-worker"][2] >= by["random"][2] - 0.02
    assert by["best-worker"][2] >= by["round-robin"][2] - 0.02
