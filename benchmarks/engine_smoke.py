#!/usr/bin/env python
"""Engine smoke: a deterministic fault-injection run, crashed and resumed.

A <60 s end-to-end check of the orchestration runtime, wired into
``make engine-smoke`` (and thereby ``make check``):

1. run a Power selection on the restaurant workload through the engine with
   the ``flaky`` fault profile, journaling to a scratch file (the
   straight-through reference);
2. re-run with ``crash_after`` so a :class:`SimulatedCrash` kills the run
   partway, leaving a partial journal (its tail torn by a few bytes to
   mimic a mid-write crash);
3. resume from that journal and assert the resumed run converges to the
   straight-through run — same matches, distinct questions, cents, and
   simulated wall clock.

Exits non-zero (with a diff summary) on any divergence, so CI catches both
determinism regressions and journal-replay drift.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.engine import CrowdEngine, EngineConfig
from repro.exceptions import SimulatedCrash
from repro.experiments.runner import make_crowd, prepare, run_method

DATASET = "restaurant"
BAND = "90"
SEED = 7
CRASH_AFTER = 40  # answered pairs before the simulated crash


def run(workload, journal_path: Path, resume: bool = False, crash_after: int | None = None):
    engine = CrowdEngine(
        EngineConfig(
            faults="flaky",
            seed=SEED,
            journal_path=journal_path,
            resume=resume,
            crash_after=crash_after,
            event_log_limit=10,
        )
    )
    crowd = make_crowd(workload, BAND, SEED)
    row = run_method("power", workload, crowd, seed=SEED, engine=engine)
    return row, engine


def main() -> int:
    workload = prepare(DATASET)
    with tempfile.TemporaryDirectory(prefix="engine-smoke-") as scratch:
        scratch = Path(scratch)

        straight, straight_engine = run(workload, scratch / "straight.jsonl")
        telemetry = straight_engine.telemetry
        print(
            f"straight-through : F1={straight.f_measure:.3f} "
            f"questions={straight.questions} cents={straight.cost_cents} "
            f"wall-clock={telemetry.wall_clock_seconds / 60:.1f}min "
            f"re-posts={telemetry.re_posts}"
        )

        crashed_journal = scratch / "crashed.jsonl"
        try:
            run(workload, crashed_journal, crash_after=CRASH_AFTER)
        except SimulatedCrash as crash:
            print(f"crashed run      : {crash}")
        else:
            print("FAIL: crash_after did not trigger a SimulatedCrash")
            return 1
        raw = crashed_journal.read_bytes()
        crashed_journal.write_bytes(raw[:-5])  # tear the last line mid-write

        resumed, resumed_engine = run(workload, crashed_journal, resume=True)
        print(
            f"resumed run      : F1={resumed.f_measure:.3f} "
            f"questions={resumed.questions} cents={resumed.cost_cents} "
            f"wall-clock={resumed_engine.telemetry.wall_clock_seconds / 60:.1f}min"
        )

        checks = {
            "f_measure": (straight.f_measure, resumed.f_measure),
            "questions": (straight.questions, resumed.questions),
            "iterations": (straight.iterations, resumed.iterations),
            "cost_cents": (straight.cost_cents, resumed.cost_cents),
            "wall_clock": (
                round(straight_engine.telemetry.wall_clock_seconds, 6),
                round(resumed_engine.telemetry.wall_clock_seconds, 6),
            ),
        }
        failures = {k: v for k, v in checks.items() if v[0] != v[1]}
        if failures:
            for name, (expected, got) in failures.items():
                print(f"FAIL: {name}: straight-through={expected} resumed={got}")
            return 1
    print("OK: resume converged to the straight-through run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
