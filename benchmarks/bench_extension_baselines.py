"""Extension bench: the seven-way comparison (adds CrowdER, node-priority)."""

from conftest import run_once
from repro.experiments import ablations


def test_extension_seven_way(benchmark, results):
    rows = run_once(
        benchmark,
        ablations.extended_baselines,
        save_to=results("extension_baselines.txt"),
    )
    by = {row[1]: row for row in rows}
    assert set(by) == {
        "power", "power+", "trans", "node-priority", "gcer", "acd", "crowder",
    }
    # CrowdER anchors the cost ceiling: it asks every candidate pair.
    assert by["crowder"][3] == max(row[3] for row in rows)
    # Power stays the cheapest method.
    assert by["power"][3] == min(row[3] for row in rows)
    # Node-priority exploits transitivity: cheaper than CrowdER.
    assert by["node-priority"][3] < by["crowder"][3]
