"""Figs 27-30: parallel selection — SinglePath vs Multi-Path vs Power."""

from conftest import run_once
from repro.experiments import figures


def test_fig27_30_parallel_selection(benchmark, results):
    rows = run_once(
        benchmark,
        figures.parallel_selection,
        save_to=results("fig27_30_parallel_selection.txt"),
    )
    for dataset in {row[0] for row in rows}:
        by = {row[1]: row for row in rows if row[0] == dataset}
        single, multi, power = by["single-path"], by["multi-path"], by["power"]
        # Fig 29: the parallel algorithms need far fewer iterations.
        assert power[4] < single[4]
        assert multi[4] < single[4]
        # Fig 28: parallelism costs a few extra questions at most.
        assert power[3] <= multi[3] * 1.3 + 5
        # Fig 27: all three reach similar quality.
        scores = [single[2], multi[2], power[2]]
        assert max(scores) - min(scores) < 0.2
        # Fig 30: every assignment step is fast (well under a second per
        # iteration on these graph sizes).
        for row in (single, multi, power):
            assert row[5] < 60.0
