"""Ablation: 2-D index + verification vs a full m-dimensional range tree."""

from conftest import run_once
from repro.experiments import ablations


def test_ablation_index_dimensionality(benchmark, results):
    rows = run_once(
        benchmark,
        ablations.index_dimensionality,
        save_to=results("ablation_index_dimensionality.txt"),
    )
    by = {row[2]: row for row in rows}
    # Both produce the same edge set ...
    assert by["2d+verify"][4] == by["full-nd"][4]
    # ... and the paper's footnote-5 heuristic is vindicated: the low-dim
    # index with verification is at least competitive.
    assert by["2d+verify"][3] <= by["full-nd"][3] * 1.5
