"""Ablation: histogram binning for the §6 BLUE-pair coloring."""

from conftest import run_once
from repro.experiments import ablations


def test_ablation_histograms(benchmark, results):
    rows = run_once(
        benchmark,
        ablations.histogram_sweep,
        save_to=results("ablation_histograms.txt"),
    )
    assert {row[1] for row in rows} == {"equi-depth", "equi-width"}
    # Every configuration stays usable (the histogram is a fallback, not
    # the primary signal).
    assert all(row[3] > 0.4 for row in rows)
