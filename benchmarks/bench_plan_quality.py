"""Planner-quality benchmark: regret vs exhaustive configuration search.

Times every (join method x similarity substrate) combination on the
planner-visible pipeline stages, calibrates the host, plans, and grades
the planned configuration against the exhaustive best and worst.  Also
plans the same table under perturbed synthetic host profiles and demands
the decisions diverge.  The report lands in
``benchmarks/results/BENCH_plan.json``.

Gates: planner regret (planned / best runtime) <= 1.15x and planned
strictly faster than the worst configuration (relaxed to 1.5x / <= worst
under ``POWER_BENCH_FAST=1``, where sub-millisecond stages make ratios
noisy); synthetic-host adaptation gates are never relaxed.

Runs two ways:

* under pytest (the benchmark suite): ``pytest benchmarks/bench_plan_quality.py``
* standalone: ``PYTHONPATH=src python benchmarks/bench_plan_quality.py --check``
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments import emit, perf
from repro.experiments.plan_quality import (
    plan_acceptance_failures,
    plan_summary_rows,
    run_plan_benchmark,
)

RESULT_NAME = "BENCH_plan.json"
HEADERS = ("workload", "rows", "planned", "planned ms", "best ms", "worst ms", "regret")


def test_plan_quality(benchmark, results):
    from conftest import run_once

    report = run_once(benchmark, run_plan_benchmark)
    perf.write_report(report, results(RESULT_NAME))
    emit("Planner quality", HEADERS, plan_summary_rows(report))
    failures = plan_acceptance_failures(report)
    assert not failures, "; ".join(failures)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="restaurant",
                        help="dataset for the regret grid (default: restaurant)")
    parser.add_argument("--scale", type=float, action="append", dest="scales",
                        help="subsample fraction; repeatable (default 0.5 and 1.0; "
                             "0.15 in fast mode)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="best-of-N timing repeats (default 3; 2 in fast mode)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).parent / "results" / RESULT_NAME)
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero when a regret or adaptation gate fails")
    args = parser.parse_args(argv)

    report = run_plan_benchmark(
        dataset=args.dataset,
        scales=tuple(args.scales) if args.scales else None,
        repeats=args.repeats,
        seed=args.seed,
    )
    path = perf.write_report(report, args.out)
    emit("Planner quality", HEADERS, plan_summary_rows(report))
    print(f"report -> {path}")

    failures = plan_acceptance_failures(report)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if args.check and failures:
        return 1
    if not failures:
        print("all gates passed:", json.dumps({
            "worst_regret": max(cell["regret"] for cell in report["grid"]),
            "regret_max": report["gates"]["regret_max"],
            "synthetic_joins": sorted(
                {entry["join_method"] for entry in report["synthetic_hosts"]}
            ),
        }))
    return 0


if __name__ == "__main__":
    sys.exit(main())
