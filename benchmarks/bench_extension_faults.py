"""Extension bench: the method panel on a faulty crowd platform."""

from conftest import run_once
from repro.experiments import ablations


def test_extension_faults(benchmark, results):
    rows = run_once(
        benchmark,
        ablations.fault_sweep,
        save_to=results("extension_faults.txt"),
    )
    by = {(row[1], row[2]): row for row in rows}
    rates = sorted({row[1] for row in rows})
    top = rates[-1]
    # Rate 0 is the engine's equivalence regression: no faults, no re-posts,
    # and Power's synchronous quality.
    assert by[(0.0, "power")][3] >= 0.99
    assert by[(0.0, "power")][7] == 0 and by[(0.0, "power")][8] == 0
    # Faults actually bite (re-posts appear) but Power absorbs them: its
    # few questions give the fault distribution few targets.
    assert by[(top, "power")][7] > 0
    assert by[(top, "power")][3] >= 0.95
    if (top, "gcer") in by:
        # Question-hungry baselines collapse where Power holds.
        assert by[(top, "gcer")][3] < by[(top, "power")][3] - 0.2
        assert by[(top, "gcer")][5] > 10 * by[(top, "power")][5]  # spend gap
