"""Fig 20: graph-construction efficiency (BruteForce vs QuickSort vs Index)."""

from conftest import run_once
from repro.experiments import figures


def test_fig20_construction_restaurant(benchmark, results):
    rows = run_once(
        benchmark,
        figures.construction_benchmark,
        dataset="restaurant",
        save_to=results("fig20_construction_restaurant.txt"),
    )
    largest = rows[-1]
    _, size, _, brute, quicksort, index = largest
    # The paper's ordering at scale: Index fastest, BruteForce slowest.
    assert index < brute
    assert index < quicksort
    # Construction time grows with the number of pairs.
    assert rows[-1][3] > rows[0][3]


def test_fig20_construction_cora(benchmark, results):
    rows = run_once(
        benchmark,
        figures.construction_benchmark,
        dataset="cora",
        sizes=(1000, 3000),
        save_to=results("fig20_construction_cora.txt"),
    )
    _, _, _, brute, _, index = rows[-1]
    assert index < brute
