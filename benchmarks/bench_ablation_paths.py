"""Ablation: matching-based Dilworth decomposition vs greedy peeling."""

from conftest import run_once
from repro.experiments import ablations


def test_ablation_paths(benchmark, results):
    rows = run_once(
        benchmark,
        ablations.path_cover_compare,
        save_to=results("ablation_paths.txt"),
    )
    by = {row[1]: row for row in rows}
    # Both decompositions color the graph correctly...
    assert abs(by["matching"][2] - by["greedy"][2]) < 0.15
    # ...but the minimal decomposition should not need more questions.
    assert by["matching"][3] <= by["greedy"][3] * 1.2
