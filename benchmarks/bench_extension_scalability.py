"""Extension bench: Power's question count grows sub-linearly in #pairs."""

from conftest import run_once
from repro.experiments import ablations


def test_extension_scalability(benchmark, results):
    rows = run_once(
        benchmark,
        ablations.scalability_sweep,
        save_to=results("extension_scalability.txt"),
    )
    assert len(rows) >= 3
    ratios = [row[3] for row in rows]
    # The questions-per-pair ratio falls as the graph grows.
    assert ratios[-1] < ratios[0]
    # Quality holds at every size.
    assert all(row[4] > 0.8 for row in rows)
