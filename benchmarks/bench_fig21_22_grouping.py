"""Figs 21-22: grouping — number of groups and grouping time."""

from conftest import run_once
from repro.experiments import figures


def test_fig21_22_grouping(benchmark, results):
    rows = run_once(
        benchmark,
        figures.grouping_benchmark,
        save_to=results("fig21_22_grouping.txt"),
    )
    by = {(row[0], row[1]): row for row in rows}
    for dataset in {row[0] for row in rows}:
        eps_rows = sorted(
            (row for row in rows if row[0] == dataset), key=lambda r: r[1]
        )
        split_counts = [row[2] for row in eps_rows]
        # Fig 21: larger epsilon -> fewer groups.
        assert split_counts == sorted(split_counts, reverse=True)
        for row in eps_rows:
            _, eps, split_groups, split_time, greedy_groups, greedy_time = row
            if greedy_groups != "n/a":
                # The paper: Greedy yields somewhat fewer groups but is far
                # slower than Split.
                assert greedy_groups <= split_groups * 1.5
                assert greedy_time > split_time
