"""Ablation: vote aggregation schemes (majority / weighted / quality-aware)."""

from conftest import run_once
from repro.experiments import ablations


def test_ablation_aggregation(benchmark, results):
    rows = run_once(
        benchmark,
        ablations.aggregation_compare,
        save_to=results("ablation_aggregation.txt"),
    )
    by = {row[1]: row for row in rows}
    assert set(by) == {"majority", "weighted", "quality-aware"}
    # Informed aggregation should not lose to plain majority voting.
    assert by["weighted"][2] >= by["majority"][2] - 0.1
    assert by["quality-aware"][2] >= by["majority"][2] - 0.1
