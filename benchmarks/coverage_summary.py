"""Condense pytest-cov's ``coverage.json`` into a small committed summary.

Usage::

    python benchmarks/coverage_summary.py coverage.json benchmarks/results/COVERAGE.json

The full ``coverage.json`` (per-line detail, hundreds of KB) stays
untracked; the summary keeps the headline totals plus per-package line
coverage so regressions show up in review diffs.
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict
from pathlib import Path


def summarize(raw: dict) -> dict:
    totals = raw.get("totals", {})
    packages: dict[str, dict[str, int]] = defaultdict(
        lambda: {"num_statements": 0, "covered_lines": 0, "missing_lines": 0}
    )
    for filename, entry in raw.get("files", {}).items():
        parts = Path(filename).parts
        # src/repro/graph/dag.py -> repro.graph
        try:
            anchor = parts.index("repro")
        except ValueError:
            continue
        package = ".".join(parts[anchor:-1]) or "repro"
        summary = entry.get("summary", {})
        bucket = packages[package]
        bucket["num_statements"] += int(summary.get("num_statements", 0))
        bucket["covered_lines"] += int(summary.get("covered_lines", 0))
        bucket["missing_lines"] += int(summary.get("missing_lines", 0))
    package_rows = {}
    for package in sorted(packages):
        bucket = packages[package]
        statements = bucket["num_statements"]
        percent = 100.0 * bucket["covered_lines"] / statements if statements else 100.0
        package_rows[package] = {
            "percent_covered": round(percent, 2),
            "num_statements": statements,
            "missing_lines": bucket["missing_lines"],
        }
    return {
        "meta": {
            "format": 1,
            "source": "pytest-cov (coverage.py json report)",
            "note": "regenerate via `make coverage`",
        },
        "totals": {
            "percent_covered": round(float(totals.get("percent_covered", 0.0)), 2),
            "num_statements": int(totals.get("num_statements", 0)),
            "covered_lines": int(totals.get("covered_lines", 0)),
            "missing_lines": int(totals.get("missing_lines", 0)),
        },
        "packages": package_rows,
    }


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    source, destination = Path(argv[1]), Path(argv[2])
    raw = json.loads(source.read_text())
    summary = summarize(raw)
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(json.dumps(summary, indent=2) + "\n")
    print(
        f"coverage: {summary['totals']['percent_covered']:.2f}% of "
        f"{summary['totals']['num_statements']} statements -> {destination}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
