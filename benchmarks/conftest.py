"""Fixtures for the benchmark suite.

Each bench wraps one figure/table harness from
:mod:`repro.experiments.figures`, runs it exactly once under
pytest-benchmark (``rounds=1``), asserts the paper's qualitative shape, and
persists the printed table under ``benchmarks/results/`` for
EXPERIMENTS.md.

Set ``POWER_BENCH_FAST=1`` to shrink every sweep for a quick smoke run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def results(results_dir):
    """Path factory: results('fig20.txt') -> fresh file in results/."""

    def factory(name: str) -> Path:
        path = results_dir / name
        if path.exists():
            path.unlink()
        return path

    return factory


def run_once(benchmark, function, *args, **kwargs):
    """Run a harness exactly once under pytest-benchmark."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
