"""Ablation: the anytime question-budget / quality curve."""

from conftest import run_once
from repro.experiments import ablations


def test_ablation_budget_curve(benchmark, results):
    rows = run_once(
        benchmark,
        ablations.budget_curve,
        save_to=results("ablation_budget.txt"),
    )
    # Questions asked never exceed the budget.
    for _, budget, questions, _ in rows:
        if budget != "unlimited":
            assert questions <= budget
    # Quality at full budget beats the zero-budget machine-only guess.
    zero = next(row for row in rows if row[1] == 0)
    full = next(row for row in rows if row[1] == "unlimited")
    assert full[3] >= zero[3]
