"""Figs 23-24: grouping vs non-grouping — quality and #questions."""

from conftest import run_once
from repro.experiments import figures


def test_fig23_24_group_vs_nongroup(benchmark, results):
    rows = run_once(
        benchmark,
        figures.group_vs_nongroup,
        save_to=results("fig23_24_group_vs_nongroup.txt"),
    )
    nongroup = next(row for row in rows if row[1] == "non-group")
    grouped = [row for row in rows if row[1] != "non-group" and row[3] != "n/a"]
    assert grouped
    # Fig 24: grouping significantly reduces the number of questions.
    assert min(row[4] for row in grouped) < nongroup[4]
    # Fig 23: the quality cost of grouping is small.
    for row in grouped:
        assert row[3] >= nongroup[3] - 0.15
