"""Figs 12-14: quality / #questions / #iterations vs worker accuracy,
simulation regime (§7.2.2's uniform-error workers)."""

from conftest import run_once
from repro.experiments import figures


def test_fig12_14_accuracy_simulation(benchmark, results):
    rows = run_once(
        benchmark,
        figures.accuracy_sweep,
        mode="simulation",
        save_to=results("fig12_14_accuracy_simulation.txt"),
    )
    by = {(r.dataset, r.band, r.method): r for r in rows}
    datasets = {r.dataset for r in rows}
    for dataset in datasets:
        # Fig 12: Power+ tolerates low-quality workers at least as well as
        # Power (small tolerance: on datasets where Power already does well
        # the two are statistically tied).
        assert (
            by[(dataset, "70", "power+")].f_measure
            >= by[(dataset, "70", "power")].f_measure - 0.02
        )
        # Quality improves (or holds) as workers get better, per method.
        for method in ("power+", "acd"):
            assert (
                by[(dataset, "90", method)].f_measure
                >= by[(dataset, "70", method)].f_measure - 0.05
            )
        # Fig 13: the cost gap is insensitive to accuracy.
        for band in ("70", "80", "90"):
            power = by[(dataset, band, "power")]
            acd = by[(dataset, band, "acd")]
            assert power.questions * 3 < acd.questions
    # Power+ vs the error-blind baselines at 70%: the paper's headline.
    for dataset in datasets:
        power_plus = by[(dataset, "70", "power+")].f_measure
        gcer = by[(dataset, "70", "gcer")].f_measure
        assert power_plus >= gcer - 0.05
