"""Observability overhead benchmark: tracing must be (nearly) free.

Runs one full resolution (ACMPub-scale by default, simulated crowd
included) in three interleaved modes — observability disabled, metrics
only, tracing+metrics — and writes best-of-N timings, overhead
percentages, and the 4-worker span-merge determinism check to
``benchmarks/results/BENCH_obs.json``.

Gates: identical results in all three modes, metrics-only overhead under
1%, tracing+metrics overhead under 5%, and the multi-process trace
structure byte-equal to the inline run's.  ``POWER_BENCH_FAST=1`` shrinks
the workload and relaxes the percentage bars (tiny runs make relative
overhead noise).

Runs two ways:

* under pytest (the benchmark suite): ``pytest benchmarks/bench_obs_overhead.py``
* standalone: ``PYTHONPATH=src python benchmarks/bench_obs_overhead.py --check``
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments import emit, perf
from repro.experiments.obs_overhead import (
    obs_acceptance_failures,
    obs_summary_rows,
    run_obs_overhead_benchmark,
)

RESULT_NAME = "BENCH_obs.json"
HEADERS = ("mode", "seconds", "overhead", "spans/metrics")


def test_obs_overhead(benchmark, results):
    from conftest import run_once

    report = run_once(benchmark, run_obs_overhead_benchmark)
    perf.write_report(report, results(RESULT_NAME))
    emit("Observability overhead", HEADERS, obs_summary_rows(report))
    failures = obs_acceptance_failures(report)
    assert not failures, "; ".join(failures)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="acmpub",
                        choices=("acmpub", "cora", "restaurant"))
    parser.add_argument("--scale", type=float, default=None,
                        help="ACMPub subsample fraction (default 0.15; 0.02 in fast mode)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="best-of-N timing per mode (default 3; 1 in fast mode)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).parent / "results" / RESULT_NAME)
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero when an overhead or determinism gate fails")
    args = parser.parse_args(argv)

    report = run_obs_overhead_benchmark(
        dataset=args.dataset,
        scale=args.scale,
        repeats=args.repeats,
        seed=args.seed,
    )
    path = perf.write_report(report, args.out)
    emit("Observability overhead", HEADERS, obs_summary_rows(report))
    print(f"report -> {path}")

    failures = obs_acceptance_failures(report)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if args.check and failures:
        return 1
    if not failures:
        print("all gates passed:", json.dumps({
            "tracing_overhead_pct": report["modes"]["tracing"]["overhead_pct"],
            "metrics_overhead_pct": report["modes"]["metrics"]["overhead_pct"],
            "shard_merge_deterministic": report["shard_merge"]["deterministic"],
        }))
    return 0


if __name__ == "__main__":
    sys.exit(main())
