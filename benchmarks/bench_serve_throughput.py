"""Serve-throughput benchmark: concurrent tenants must beat one tenant.

Pushes the same per-session workload through a live resolution server at
1, 8, and 32 concurrent sessions (real sockets, one driver per tenant)
and gates: aggregate throughput at the top fan-out >= 3x the
single-session baseline, every session's final ``state_sha`` bit-identical
to a direct serial run, and a deliberate overload burst shed with priced
``retry_after`` refusals instead of collapsing.  The report lands in
``benchmarks/results/BENCH_serve.json``.

Runs two ways:

* under pytest (the benchmark suite): ``pytest benchmarks/bench_serve_throughput.py``
* standalone: ``PYTHONPATH=src python benchmarks/bench_serve_throughput.py --check``
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.experiments import emit, perf
from repro.experiments.serve_load import (
    run_serve_load_benchmark,
    serve_acceptance_failures,
    serve_summary_rows,
)

RESULT_NAME = "BENCH_serve.json"
HEADERS = ("phase", "wall", "throughput", "p50 / p99", "scaling")


def _run_in_scratch(**kwargs):
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as scratch:
        return run_serve_load_benchmark(scratch, **kwargs)


def test_serve_throughput(benchmark, results):
    from conftest import run_once

    report = run_once(benchmark, _run_in_scratch)
    perf.write_report(report, results(RESULT_NAME))
    emit("Serve throughput", HEADERS, serve_summary_rows(report))
    failures = serve_acceptance_failures(report)
    assert not failures, "; ".join(failures)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=None,
                        help="records per session (default 75; 45 in fast mode)")
    parser.add_argument("--batch-size", type=int, default=None,
                        help="records per batch (default 25; 15 in fast mode)")
    parser.add_argument("--crowd-latency", type=float, default=None,
                        help="simulated crowd round-trip seconds per batch "
                             "(default 1.0; 0.3 in fast mode)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).parent / "results" / RESULT_NAME)
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero when a scaling, isolation, or "
                             "shedding gate fails")
    args = parser.parse_args(argv)

    report = _run_in_scratch(
        records_cap=args.records,
        batch_size=args.batch_size,
        crowd_latency=args.crowd_latency,
        seed=args.seed,
    )
    path = perf.write_report(report, args.out)
    emit("Serve throughput", HEADERS, serve_summary_rows(report))
    print(f"report -> {path}")

    failures = serve_acceptance_failures(report)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if args.check and failures:
        return 1
    if not failures:
        print("all gates passed:", json.dumps({
            "max_vs_single_throughput": round(
                report["speedups"]["max_vs_single_throughput"], 2
            ),
            "sessions_bit_identical": all(
                phase["sessions_bit_identical"] for phase in report["phases"]
            ),
            "shed": report["shedding"]["shed"],
        }))
    return 0


if __name__ == "__main__":
    sys.exit(main())
