"""Figs 25-26: serial selection — Random vs SinglePath on raw graphs."""

from conftest import run_once
from repro.experiments import figures


def test_fig25_26_serial_selection(benchmark, results):
    rows = run_once(
        benchmark,
        figures.serial_selection,
        save_to=results("fig25_26_serial_selection.txt"),
    )
    sizes = sorted({row[1] for row in rows})
    for size in sizes:
        random_row = next(r for r in rows if r[1] == size and r[2] == "random")
        single_row = next(r for r in rows if r[1] == size and r[2] == "single-path")
        # Fig 26: SinglePath asks no more questions than Random (its
        # binary search targets the boundary vertices).
        assert single_row[4] <= random_row[4] * 1.15
        # Fig 25: both achieve similar quality.
        assert abs(single_row[3] - random_row[3]) < 0.2
    # Questions grow with graph size for both selectors.
    first, last = sizes[0], sizes[-1]
    for name in ("random", "single-path"):
        q_first = next(r[4] for r in rows if r[1] == first and r[2] == name)
        q_last = next(r[4] for r in rows if r[1] == last and r[2] == name)
        assert q_last >= q_first
