"""Extension bench: streaming (incremental) resolution vs one-shot."""

from conftest import run_once
from repro.experiments import ablations


def test_extension_incremental(benchmark, results):
    rows = run_once(
        benchmark,
        ablations.incremental_compare,
        save_to=results("extension_incremental.txt"),
    )
    one_shot = next(row for row in rows if row[1] == "one-shot")
    streams = [row for row in rows if row[1] != "one-shot"]
    # Streaming costs more questions but keeps comparable quality.
    for row in streams:
        assert row[2] >= one_shot[2] * 0.8
        assert row[4] >= one_shot[4] - 0.1
    # Larger batches approach the one-shot cost.
    assert streams[-1][2] <= streams[0][2] * 1.2
