"""Fig 34: effect of the number of attributes (Cora)."""

from conftest import run_once
from repro.experiments import figures


def test_fig34_num_attributes(benchmark, results):
    rows = run_once(
        benchmark,
        figures.attribute_sweep,
        save_to=results("fig34_num_attributes.txt"),
    )
    counts = [row[0] for row in rows]
    questions = [row[2] for row in rows]
    assert counts == sorted(counts)
    # Fig 34: more attributes -> sparser partial order -> more questions.
    assert questions[-1] > questions[0]
    # Quality stays reasonable throughout.
    assert all(row[1] > 0.5 for row in rows)
