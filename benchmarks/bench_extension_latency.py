"""Extension bench: modeled wall-clock latency per method."""

from conftest import run_once
from repro.experiments import ablations


def test_extension_latency(benchmark, results):
    rows = run_once(
        benchmark,
        ablations.latency_compare,
        save_to=results("extension_latency.txt"),
    )
    by = {row[1]: row for row in rows}
    # Power's few parallel rounds give the lowest modeled wall clock among
    # the graph selectors; serial SinglePath is by far the slowest of them.
    assert by["power"][4] <= by["multi-path"][4] * 1.5
    assert by["power"][4] * 3 < by["single-path"][4]
    # The ask-everything baselines pay for their question volume too.
    assert by["power"][4] < by["trans"][4]
    assert by["power"][4] < by["crowder"][4]
