"""Pipeline fast-path benchmark: prune → vectorize → construct speedups.

Times every stage's scalar reference against its vectorized fast path on an
ACMPub-scale workload, verifies equivalence inline, and writes the
machine-readable report to ``benchmarks/results/BENCH_pipeline.json``.

Runs two ways:

* under pytest (the benchmark suite): ``pytest benchmarks/bench_perf_pipeline.py``
* standalone: ``PYTHONPATH=src python benchmarks/bench_perf_pipeline.py --check``

``POWER_BENCH_FAST=1`` shrinks the workload to a <60s smoke run whose gate
only requires the fast paths to win; the full run enforces the 5x vectorize
and 3x construct floors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments import emit, perf

RESULT_NAME = "BENCH_pipeline.json"
HEADERS = ("stage", "reference", "fast", "ref s", "fast s", "speedup", "equivalent")


def test_perf_pipeline(benchmark, results):
    from conftest import run_once

    report = run_once(benchmark, perf.run_pipeline_benchmark)
    perf.write_report(report, results(RESULT_NAME))
    emit("Pipeline fast-path speedups", HEADERS, perf.summary_rows(report))
    failures = perf.acceptance_failures(report)
    assert not failures, "; ".join(failures)
    assert perf.verify_resolution_identity()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="acmpub",
                        choices=("acmpub", "cora", "restaurant"))
    parser.add_argument("--scale", type=float, default=None,
                        help="ACMPub subsample fraction (default 0.15; 0.02 in fast mode)")
    parser.add_argument("--similarity", default="bigram",
                        choices=("bigram", "jaccard", "edit"))
    parser.add_argument("--repeats", type=int, default=None,
                        help="best-of-N timing (default 3; 1 in fast mode)")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).parent / "results" / RESULT_NAME)
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero when a speedup floor or equivalence gate fails")
    args = parser.parse_args(argv)

    report = perf.run_pipeline_benchmark(
        dataset=args.dataset,
        scale=args.scale,
        similarity=args.similarity,
        repeats=args.repeats,
    )
    path = perf.write_report(report, args.out)
    emit("Pipeline fast-path speedups", HEADERS, perf.summary_rows(report))
    print(f"report -> {path}")

    failures = perf.acceptance_failures(report)
    if not perf.verify_resolution_identity():
        failures.append("end-to-end: batch and scalar resolutions differ")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if args.check and failures:
        return 1
    if not failures:
        print("all gates passed:",
              json.dumps({s["stage"]: f"{s['speedup']}x" for s in report["stages"]}))
    return 0


if __name__ == "__main__":
    sys.exit(main())
