"""Figs 15-17: effect of the similarity function (Jaccard / edit / bigram)."""

import numpy as np

from conftest import run_once
from repro.experiments import figures


def test_fig15_17_similarity_functions(benchmark, results):
    rows = run_once(
        benchmark,
        figures.similarity_function_sweep,
        save_to=results("fig15_17_similarity_functions.txt"),
    )
    # r.band carries the similarity-function label in this sweep.
    for dataset in {r.dataset for r in rows}:
        for method in ("power+", "acd"):
            scores = [
                r.f_measure for r in rows if r.dataset == dataset and r.method == method
            ]
            # Fig 15: the similarity function has little impact on quality.
            assert max(scores) - min(scores) < 0.25
        power_questions = [
            r.questions for r in rows if r.dataset == dataset and r.method == "power"
        ]
        # Fig 16: question counts stay within the same order of magnitude.
        assert max(power_questions) < 10 * max(1, min(power_questions))
