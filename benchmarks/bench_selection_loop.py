"""Selection-loop benchmark: incremental engine vs per-round scratch.

Runs the full ask/color loop of the path-cover selectors on an ACMPub-scale
dominance graph twice — once through the incremental engine (packed-bitset
reachability + warm-started path covers) and once forced onto the scratch
reference (per-round ``restricted_adjacency`` + Hopcroft-Karp from empty) —
verifies the two transcripts are byte-identical inline, and writes the
machine-readable report (per-selector speedups, per-round phase splits, and
a rounds-vs-n scaling sweep) to ``benchmarks/results/BENCH_selection.json``.

Runs two ways:

* under pytest (the benchmark suite): ``pytest benchmarks/bench_selection_loop.py``
* standalone: ``PYTHONPATH=src python benchmarks/bench_selection_loop.py --check``

``POWER_BENCH_FAST=1`` shrinks the workload to a smoke run whose gate only
requires the incremental engine to win; the full run enforces the 3x floor.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments import emit, perf

RESULT_NAME = "BENCH_selection.json"
HEADERS = ("selector", "rounds", "scratch s", "incremental s", "speedup", "equivalent")


def test_selection_loop(benchmark, results):
    from conftest import run_once

    report = run_once(benchmark, perf.run_selection_benchmark)
    perf.write_report(report, results(RESULT_NAME))
    emit("Selection-loop speedups", HEADERS, perf.selection_summary_rows(report))
    failures = perf.selection_acceptance_failures(report)
    assert not failures, "; ".join(failures)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="acmpub",
                        choices=("acmpub", "cora", "restaurant"))
    parser.add_argument("--scale", type=float, default=None,
                        help="ACMPub subsample fraction (default 0.15; 0.02 in fast mode)")
    parser.add_argument("--max-vertices", type=int, default=None,
                        help="graph-size cap (default 2500; 300 in fast mode)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="best-of-N timing (default 3; 1 in fast mode)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).parent / "results" / RESULT_NAME)
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero when the speedup floor or equivalence gate fails")
    args = parser.parse_args(argv)

    report = perf.run_selection_benchmark(
        dataset=args.dataset,
        scale=args.scale,
        max_vertices=args.max_vertices,
        repeats=args.repeats,
        seed=args.seed,
    )
    path = perf.write_report(report, args.out)
    emit("Selection-loop speedups", HEADERS, perf.selection_summary_rows(report))
    print(f"report -> {path}")

    failures = perf.selection_acceptance_failures(report)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if args.check and failures:
        return 1
    if not failures:
        print("all gates passed:",
              json.dumps({s["selector"]: f"{s['speedup']}x"
                          for s in report["selectors"]}))
    return 0


if __name__ == "__main__":
    sys.exit(main())
