"""Figs 9-11: quality / #questions / #iterations vs worker accuracy,
real-crowd regime (difficulty-aware workers — see DESIGN.md)."""

import numpy as np

from conftest import run_once
from repro.experiments import figures


def test_fig09_11_accuracy_real(benchmark, results):
    rows = run_once(
        benchmark,
        figures.accuracy_sweep,
        mode="real",
        save_to=results("fig09_11_accuracy_real.txt"),
    )
    by = {(r.dataset, r.band, r.method): r for r in rows}
    datasets = {r.dataset for r in rows}
    for dataset in datasets:
        for band in ("70", "80", "90"):
            power = by[(dataset, band, "power")]
            acd = by[(dataset, band, "acd")]
            trans = by[(dataset, band, "trans")]
            gcer = by[(dataset, band, "gcer")]
            # Fig 10: Power asks several times fewer questions than every
            # baseline (GCER's budget is tied to ACD but transitivity lets
            # it stop early, so the margin there is smaller).
            assert power.questions * 3 < acd.questions
            assert power.questions < gcer.questions
            assert power.questions < trans.questions
            # Fig 11: Power needs no more crowd iterations than any baseline.
            assert power.iterations <= min(acd.iterations, trans.iterations)
            assert power.iterations <= gcer.iterations
        # Fig 9 (real): with difficulty-aware workers every method does well
        # on the easy restaurant dataset across all bands.
        if dataset == "restaurant":
            for band in ("70", "80", "90"):
                assert by[(dataset, band, "power+")].f_measure > 0.85


def test_fig09_power_plus_quality_shape(benchmark, results):
    """Power+ matches or beats the baselines at 90% accuracy."""
    rows = run_once(
        benchmark,
        figures.accuracy_sweep,
        mode="real",
        datasets=("restaurant",),
        bands=("90",),
        save_to=results("fig09_quality_shape.txt"),
    )
    by = {r.method: r for r in rows}
    competitors = [by["trans"].f_measure, by["gcer"].f_measure]
    assert by["power+"].f_measure >= np.mean(competitors) - 0.05
