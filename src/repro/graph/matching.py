"""Maximum bipartite matching and minimal disjoint path decomposition (§5.2).

The paper turns the pair graph into a bipartite graph (each vertex appears
on both sides; dominance edges cross sides), computes a maximum matching,
and reads off a *minimal* set of vertex-disjoint paths covering all vertices
— Fulkerson's proof of Dilworth's theorem (paper Theorem 2): with ``J``
matched edges the cover has ``|V| - J`` paths, so a maximum matching yields
the minimum path cover.

The matching is our own Hopcroft–Karp implementation (``O(E sqrt(V))``);
tests cross-check it against networkx.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

import numpy as np

from ..exceptions import GraphError

_INFINITY = float("inf")


def hopcroft_karp(
    adjacency: Sequence[Sequence[int]], num_right: int | None = None
) -> tuple[list[int], list[int]]:
    """Maximum matching in a bipartite graph given left-side adjacency.

    Args:
        adjacency: ``adjacency[u]`` lists the right vertices adjacent to left
            vertex ``u``.
        num_right: number of right vertices; inferred from the edges when
            omitted.

    Returns:
        ``(match_left, match_right)`` where ``match_left[u]`` is the right
        partner of ``u`` (or -1) and vice versa.
    """
    num_left = len(adjacency)
    if num_right is None:
        num_right = 0
        for neighbors in adjacency:
            for v in neighbors:
                if v + 1 > num_right:
                    num_right = v + 1
    match_left = [-1] * num_left
    match_right = [-1] * num_right
    distance = [0.0] * num_left

    def bfs() -> bool:
        queue: deque[int] = deque()
        for u in range(num_left):
            if match_left[u] == -1:
                distance[u] = 0.0
                queue.append(u)
            else:
                distance[u] = _INFINITY
        found_free = False
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                partner = match_right[v]
                if partner == -1:
                    found_free = True
                elif distance[partner] == _INFINITY:
                    distance[partner] = distance[u] + 1
                    queue.append(partner)
        return found_free

    def dfs(u: int) -> bool:
        for v in adjacency[u]:
            partner = match_right[v]
            if partner == -1 or (
                distance[partner] == distance[u] + 1 and dfs(partner)
            ):
                match_left[u] = v
                match_right[v] = u
                return True
        distance[u] = _INFINITY
        return False

    # Iterative phases; the inner DFS is converted to recursion-free form via
    # sys recursion depth being acceptable (augmenting paths are short in the
    # layered graph).  Guard against pathological recursion anyway.
    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, num_left + num_right + 1000))
    try:
        while bfs():
            for u in range(num_left):
                if match_left[u] == -1:
                    dfs(u)
    finally:
        sys.setrecursionlimit(old_limit)
    return match_left, match_right


def minimum_path_cover(adjacency: Sequence[Sequence[int]]) -> list[list[int]]:
    """Minimal vertex-disjoint path cover of a DAG (paper Theorem 2).

    Args:
        adjacency: DAG children lists.  For the Dilworth guarantee ("size
            exactly B, the width of the order") the input must be
            transitively closed — which the dominance relation already is.

    Returns:
        Paths as vertex lists ordered source → sink (dominating → dominated),
        pairwise disjoint and jointly covering every vertex.
    """
    n = len(adjacency)
    match_left, match_right = hopcroft_karp(adjacency, num_right=n)
    heads = [v for v in range(n) if match_right[v] == -1]
    paths: list[list[int]] = []
    seen = 0
    for head in heads:
        path = [head]
        current = head
        while match_left[current] != -1:
            current = match_left[current]
            path.append(current)
        seen += len(path)
        paths.append(path)
    if seen != n:
        raise GraphError(
            f"path cover covered {seen} of {n} vertices; the matching is corrupt"
        )
    return paths


def restricted_adjacency(
    adjacency: Sequence[np.ndarray], active: np.ndarray
) -> tuple[list[list[int]], np.ndarray]:
    """Induce a sub-DAG on the *active* vertices, with compact relabeling.

    Returns:
        ``(sub_adjacency, original_ids)`` where ``original_ids[k]`` maps the
        compact vertex ``k`` back to the original graph.
    """
    original_ids = np.flatnonzero(active)
    relabel = -np.ones(len(adjacency), dtype=np.int64)
    relabel[original_ids] = np.arange(len(original_ids))
    sub_adjacency: list[list[int]] = []
    for original in original_ids:
        children = adjacency[int(original)]
        kept = relabel[children]
        sub_adjacency.append([int(c) for c in kept if c >= 0])
    return sub_adjacency, original_ids


def greedy_path_cover(adjacency: Sequence[Sequence[int]]) -> list[list[int]]:
    """A cheap non-optimal path cover: repeatedly peel a longest-ish chain.

    Used by the path-decomposition ablation bench to quantify what the
    maximum-matching machinery buys over a naive alternative.
    """
    n = len(adjacency)
    remaining = set(range(n))
    # Longest-path DP over the DAG (children order), computed once.
    indegree = [0] * n
    for u in range(n):
        for v in adjacency[u]:
            indegree[v] += 1
    order: list[int] = [u for u in range(n) if indegree[u] == 0]
    queue = deque(order)
    while queue:
        u = queue.popleft()
        for v in adjacency[u]:
            indegree[v] -= 1
            if indegree[v] == 0:
                order.append(v)
                queue.append(v)
    if len(order) != n:
        raise GraphError("greedy_path_cover requires a DAG")
    paths: list[list[int]] = []
    while remaining:
        # Height = longest chain downward within `remaining`.
        height = {u: 1 for u in remaining}
        for u in reversed(order):
            if u not in remaining:
                continue
            for v in adjacency[u]:
                if v in remaining and height[v] + 1 > height[u]:
                    height[u] = height[v] + 1
        start = max(remaining, key=lambda u: (height[u], -u))
        path = [start]
        current = start
        while True:
            next_vertex = None
            for v in adjacency[current]:
                if v in remaining and v != current and v not in path:
                    if height[v] == height[current] - 1:
                        next_vertex = v
                        break
            if next_vertex is None:
                break
            path.append(next_vertex)
            current = next_vertex
        for vertex in path:
            remaining.discard(vertex)
        paths.append(path)
    return paths
