"""Maximum bipartite matching and minimal disjoint path decomposition (§5.2).

The paper turns the pair graph into a bipartite graph (each vertex appears
on both sides; dominance edges cross sides), computes a maximum matching,
and reads off a *minimal* set of vertex-disjoint paths covering all vertices
— Fulkerson's proof of Dilworth's theorem (paper Theorem 2): with ``J``
matched edges the cover has ``|V| - J`` paths, so a maximum matching yields
the minimum path cover.

The matching is our own Hopcroft–Karp implementation (``O(E sqrt(V))``);
tests cross-check it against networkx.

:class:`IncrementalPathCover` is the warm-start engine behind the
incremental selection loop: it keeps the per-round decomposition
byte-identical to ``minimum_path_cover(restricted_adjacency(...))`` while
scaling the per-round work with *what changed* — colored vertices are
vertex deletions, the phase-1 greedy matching is repaired locally instead
of recomputed, and all adjacency restriction happens as packed-bitset
``AND`` ops against a :class:`~repro.graph.reachability.ReachabilityIndex`.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

import numpy as np

from ..exceptions import GraphError

_INFINITY = float("inf")


def hopcroft_karp(
    adjacency: Sequence[Sequence[int]], num_right: int | None = None
) -> tuple[list[int], list[int]]:
    """Maximum matching in a bipartite graph given left-side adjacency.

    Args:
        adjacency: ``adjacency[u]`` lists the right vertices adjacent to left
            vertex ``u``.
        num_right: number of right vertices; inferred from the edges when
            omitted.

    Returns:
        ``(match_left, match_right)`` where ``match_left[u]`` is the right
        partner of ``u`` (or -1) and vice versa.
    """
    num_left = len(adjacency)
    if num_right is None:
        num_right = 0
        for neighbors in adjacency:
            for v in neighbors:
                if v + 1 > num_right:
                    num_right = v + 1
    match_left = [-1] * num_left
    match_right = [-1] * num_right
    distance = [0.0] * num_left

    def bfs() -> bool:
        queue: deque[int] = deque()
        for u in range(num_left):
            if match_left[u] == -1:
                distance[u] = 0.0
                queue.append(u)
            else:
                distance[u] = _INFINITY
        found_free = False
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                partner = match_right[v]
                if partner == -1:
                    found_free = True
                elif distance[partner] == _INFINITY:
                    distance[partner] = distance[u] + 1
                    queue.append(partner)
        return found_free

    def dfs(root: int) -> bool:
        # Explicit-stack traversal of the layered graph, visiting neighbors
        # in exactly the order the recursive formulation would: each frame is
        # ``[left vertex, neighbor iterator, edge currently being tried]``.
        # On success the whole stack is one augmenting path; every frame's
        # pending edge becomes a matched edge.
        frames: list[list] = [[root, iter(adjacency[root]), -1]]
        while frames:
            frame = frames[-1]
            u = frame[0]
            descended = False
            for v in frame[1]:
                partner = match_right[v]
                if partner == -1:
                    frame[2] = v
                    for node, _, picked in reversed(frames):
                        match_left[node] = picked
                        match_right[picked] = node
                    return True
                if distance[partner] == distance[u] + 1:
                    frame[2] = v
                    frames.append([partner, iter(adjacency[partner]), -1])
                    descended = True
                    break
            if not descended:
                distance[u] = _INFINITY
                frames.pop()
        return False

    while bfs():
        for u in range(num_left):
            if match_left[u] == -1:
                dfs(u)
    return match_left, match_right


def minimum_path_cover(adjacency: Sequence[Sequence[int]]) -> list[list[int]]:
    """Minimal vertex-disjoint path cover of a DAG (paper Theorem 2).

    Args:
        adjacency: DAG children lists.  For the Dilworth guarantee ("size
            exactly B, the width of the order") the input must be
            transitively closed — which the dominance relation already is.

    Returns:
        Paths as vertex lists ordered source → sink (dominating → dominated),
        pairwise disjoint and jointly covering every vertex.
    """
    n = len(adjacency)
    match_left, match_right = hopcroft_karp(adjacency, num_right=n)
    heads = [v for v in range(n) if match_right[v] == -1]
    paths: list[list[int]] = []
    seen = 0
    for head in heads:
        path = [head]
        current = head
        while match_left[current] != -1:
            current = match_left[current]
            path.append(current)
        seen += len(path)
        paths.append(path)
    if seen != n:
        raise GraphError(
            f"path cover covered {seen} of {n} vertices; the matching is corrupt"
        )
    return paths


def restricted_adjacency(
    adjacency: Sequence[np.ndarray], active: np.ndarray
) -> tuple[list[list[int]], np.ndarray]:
    """Induce a sub-DAG on the *active* vertices, with compact relabeling.

    Returns:
        ``(sub_adjacency, original_ids)`` where ``original_ids[k]`` maps the
        compact vertex ``k`` back to the original graph.
    """
    original_ids = np.flatnonzero(active)
    relabel = -np.ones(len(adjacency), dtype=np.int64)
    relabel[original_ids] = np.arange(len(original_ids))
    sub_adjacency: list[list[int]] = []
    for original in original_ids:
        children = adjacency[int(original)]
        kept = relabel[children]
        sub_adjacency.append([int(c) for c in kept if c >= 0])
    return sub_adjacency, original_ids


def greedy_path_cover(adjacency: Sequence[Sequence[int]]) -> list[list[int]]:
    """A cheap non-optimal path cover: repeatedly peel a longest-ish chain.

    Used by the path-decomposition ablation bench to quantify what the
    maximum-matching machinery buys over a naive alternative.
    """
    n = len(adjacency)
    remaining = set(range(n))
    # Longest-path DP over the DAG (children order), computed once.
    indegree = [0] * n
    for u in range(n):
        for v in adjacency[u]:
            indegree[v] += 1
    order: list[int] = [u for u in range(n) if indegree[u] == 0]
    queue = deque(order)
    while queue:
        u = queue.popleft()
        for v in adjacency[u]:
            indegree[v] -= 1
            if indegree[v] == 0:
                order.append(v)
                queue.append(v)
    if len(order) != n:
        raise GraphError("greedy_path_cover requires a DAG")
    paths: list[list[int]] = []
    while remaining:
        # Height = longest chain downward within `remaining`.
        height = {u: 1 for u in remaining}
        for u in reversed(order):
            if u not in remaining:
                continue
            for v in adjacency[u]:
                if v in remaining and height[v] + 1 > height[u]:
                    height[u] = height[v] + 1
        start = max(remaining, key=lambda u: (height[u], -u))
        path = [start]
        on_path = {start}
        current = start
        while True:
            next_vertex = None
            for v in adjacency[current]:
                if v in remaining and v != current and v not in on_path:
                    if height[v] == height[current] - 1:
                        next_vertex = v
                        break
            if next_vertex is None:
                break
            path.append(next_vertex)
            on_path.add(next_vertex)
            current = next_vertex
        for vertex in path:
            remaining.discard(vertex)
        paths.append(path)
    return paths


# --------------------------------------------------------------------------- #
# Incremental (warm-start) path covers
# --------------------------------------------------------------------------- #


class IncrementalPathCover:
    """Warm-start minimum path covers over a monotonically shrinking DAG.

    The selection loop colors vertices every round and recomputes the
    Dilworth decomposition of whatever stays uncolored.  The from-scratch
    reference rebuilds compact adjacency lists and reruns Hopcroft-Karp each
    time; this engine instead treats coloring as *vertex deletion* and keeps
    two pieces of state between rounds:

    * packed active-vertex bits, so restricting adjacency to the live
      sub-DAG is one byte-wise ``AND`` per row;
    * the phase-1 matching — Hopcroft-Karp's first phase from an empty
      matching is exactly first-fit greedy in (vertex, neighbor) order — which
      deletions perturb only locally.  ``_deletion_restart`` finds the first
      left vertex whose greedy decision can change (holders of deleted
      rights, plus the earliest vertex each freed right attracts) and re-runs
      the greedy scan from there; everything before it is provably unchanged.

    From the repaired greedy matching the remaining Hopcroft-Karp phases run
    with a vectorized layered BFS and an explicit-stack DFS that visits
    neighbors in ascending vertex order — the same order the reference sees
    after compact relabeling (which is monotone), so matchings, heads, and
    paths all correspond 1:1 and the returned cover is **byte-identical** to
    ``minimum_path_cover(restricted_adjacency(adjacency, active))`` mapped
    back to original ids.  ``repro.verify``'s ``check_selection_incremental``
    and a seeded stale-matching mutant enforce exactly that.

    Args:
        index: packed reachability index of the *full* graph.
        adjacency: the full graph's descendant index lists (ascending, as
            produced by ``OrderedGraph.adjacency()``).  Used for the hot
            neighbor restrictions (one fancy-index per row beats unpacking
            ``n`` bits when rows are sparse); derived lazily from *index*
            when omitted.
    """

    def __init__(self, index, adjacency: list[np.ndarray] | None = None) -> None:
        self._index = index
        n = index.num_vertices
        self._n = n
        self._adj: list[np.ndarray | None] = (
            list(adjacency) if adjacency is not None else [None] * n
        )
        self._active: np.ndarray | None = None  # bool mask, set on first cover
        self._active_bits: np.ndarray | None = None
        self._greedy_left = np.full(n, -1, dtype=np.int64)
        self._greedy_right = np.full(n, -1, dtype=np.int64)
        self._match_left = np.full(n, -1, dtype=np.int64)
        self._match_right = np.full(n, -1, dtype=np.int64)
        self._distance = np.full(n, _INFINITY)
        self.stats = {
            "covers": 0,
            "scratch_builds": 0,
            "suffix_lefts": 0,
            "deleted_vertices": 0,
            "greedy_seconds": 0.0,
            "augment_seconds": 0.0,
        }

    @property
    def index(self):
        return self._index

    # ------------------------------------------------------------------ #
    # Greedy (phase-1) matching maintenance
    # ------------------------------------------------------------------ #

    def _children(self, u: int) -> np.ndarray:
        """Full-graph descendant ids of *u*, ascending (lazily unpacked)."""
        row = self._adj[u]
        if row is None:
            from .reachability import unpack_mask

            row = np.flatnonzero(unpack_mask(self._index._desc[u], self._n))
            self._adj[u] = row
        return row

    def _greedy_scan(self, lefts: np.ndarray, unclaimed: np.ndarray) -> None:
        """First-fit matching for *lefts* (ascending) over unclaimed rights.

        *unclaimed* is a boolean mask of active rights not yet claimed; the
        first (lowest) unclaimed child of each left is taken, which is the
        choice the reference Hopcroft-Karp phase 1 makes from an empty
        matching.
        """
        gl, gr = self._greedy_left, self._greedy_right
        for u in lefts:
            u = int(u)
            row = self._children(u)
            candidates = row[unclaimed[row]]
            if candidates.size:
                v = int(candidates[0])
                gl[u] = v
                gr[v] = u
                unclaimed[v] = False

    def _release_deleted(self, deleted: np.ndarray) -> tuple[int, list[int]]:
        """Unlink deleted vertices from the greedy matching.

        Returns ``(restart, freed_rights)``: the smallest still-active left
        whose match was severed, and the still-active rights that lost their
        holder (each may attract an earlier left than *restart*).
        """
        restart = self._n
        freed: list[int] = []
        gl, gr = self._greedy_left, self._greedy_right
        for w in deleted:
            w = int(w)
            r = int(gl[w])
            if r != -1:
                gl[w] = -1
                gr[r] = -1
                if self._active[r]:
                    freed.append(r)
            u = int(gr[w])
            if u != -1:
                gr[w] = -1
                gl[u] = -1
                if self._active[u] and u < restart:
                    restart = u
        return restart, freed

    def _deletion_restart(self, deleted: np.ndarray) -> int:
        """First left vertex whose fresh-greedy decision can differ."""
        from .reachability import unpack_mask

        restart, freed = self._release_deleted(deleted)
        gl = self._greedy_left
        anc = self._index._anc
        for r in freed:
            candidates = np.flatnonzero(
                unpack_mask(anc[r] & self._active_bits, self._n)
            )
            for u in candidates:
                u = int(u)
                if u >= restart:
                    break  # cannot lower the minimum further
                match = int(gl[u])
                if match == -1 or match > r:
                    restart = u
                    break
        return restart

    def _greedy_suffix(self, restart: int) -> None:
        """Re-run the greedy scan from *restart*; the prefix is unchanged."""
        if restart >= self._n:
            return
        gl, gr = self._greedy_left, self._greedy_right
        active_lefts = np.flatnonzero(self._active)
        suffix = active_lefts[active_lefts >= restart]
        for u in suffix:
            r = int(gl[u])
            if r != -1:
                gr[r] = -1
                gl[u] = -1
        unclaimed = self._active & (gr == -1)
        self.stats["suffix_lefts"] += int(suffix.size)
        self._greedy_scan(suffix, unclaimed)

    def _greedy_scratch(self) -> None:
        self._greedy_left.fill(-1)
        self._greedy_right.fill(-1)
        unclaimed = self._active.copy()
        self.stats["scratch_builds"] += 1
        self._greedy_scan(np.flatnonzero(self._active), unclaimed)

    # ------------------------------------------------------------------ #
    # Hopcroft-Karp phases 2+ on packed bitsets
    # ------------------------------------------------------------------ #

    def _cover_neighbors(self, u: int, cache: dict[int, list[int]]) -> list[int]:
        """Active descendants of *u* as a plain list, memoized per cover."""
        neighbors = cache.get(u)
        if neighbors is None:
            row = self._children(u)
            neighbors = row[self._active[row]].tolist()
            cache[u] = neighbors
        return neighbors

    def _bfs(self) -> bool:
        """Layered BFS: same distances and free-right discovery as the
        reference queue BFS (shortest alternating distances are unique)."""
        from .reachability import pack_mask, unpack_mask

        distance = self._distance
        distance[:] = _INFINITY
        frontier = np.flatnonzero(self._active & (self._match_left == -1))
        if frontier.size == 0:
            return False
        distance[frontier] = 0.0
        free_right_bits = pack_mask(self._active & (self._match_right == -1))
        visited = np.zeros(self._index.width, dtype=np.uint8)
        desc = self._index._desc
        found_free = False
        level = 0.0
        while frontier.size:
            reach = np.bitwise_or.reduce(desc[frontier], axis=0)
            reach &= self._active_bits
            if not found_free and np.any(reach & free_right_bits):
                found_free = True
            fresh = reach & ~visited
            visited |= fresh
            rights = np.flatnonzero(unpack_mask(fresh, self._n))
            if rights.size == 0:
                break
            partners = self._match_right[rights]
            partners = partners[partners >= 0]
            partners = partners[np.isinf(distance[partners])]
            if partners.size == 0:
                break
            level += 1.0
            distance[partners] = level
            partners.sort()
            frontier = partners
        return found_free

    def _augment(
        self,
        root: int,
        distance: list[float],
        match_left: list[int],
        match_right: list[int],
        cache: dict[int, list[int]],
    ) -> bool:
        """Explicit-stack DFS, neighbor-order-identical to the reference.

        Operates on plain Python lists — the same data layout as the
        reference ``hopcroft_karp`` — because the DFS is scalar-access-heavy
        and per-element numpy indexing would dominate the phase.
        """
        frames: list[list] = [[root, iter(self._cover_neighbors(root, cache)), -1]]
        while frames:
            frame = frames[-1]
            u = frame[0]
            descended = False
            next_level = distance[u] + 1.0
            for v in frame[1]:
                partner = match_right[v]
                if partner == -1:
                    frame[2] = v
                    for node, _, picked in reversed(frames):
                        match_left[node] = picked
                        match_right[picked] = node
                    return True
                if distance[partner] == next_level:
                    frame[2] = v
                    frames.append(
                        [partner, iter(self._cover_neighbors(partner, cache)), -1]
                    )
                    descended = True
                    break
            if not descended:
                distance[u] = _INFINITY
                frames.pop()
        return False

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def cover(self, active_mask: np.ndarray) -> list[list[int]]:
        """Minimum path cover of the sub-DAG induced by *active_mask*.

        Paths are in original vertex ids, in the reference's head order.
        The active set must shrink monotonically across calls (colored
        vertices never return); a grown set raises :class:`GraphError`.
        """
        import time as _time

        from .reachability import pack_mask

        active_mask = np.ascontiguousarray(active_mask, dtype=bool)
        if active_mask.shape != (self._n,):
            raise GraphError(
                f"active mask has shape {active_mask.shape}; expected ({self._n},)"
            )
        self.stats["covers"] += 1
        started = _time.perf_counter()
        if self._active is None:
            self._active = active_mask.copy()
            self._active_bits = pack_mask(self._active)
            self._greedy_scratch()
        else:
            if np.any(active_mask & ~self._active):
                raise GraphError(
                    "IncrementalPathCover requires a shrinking active set; "
                    "build a fresh engine for a new run"
                )
            deleted = np.flatnonzero(self._active & ~active_mask)
            if deleted.size:
                self.stats["deleted_vertices"] += int(deleted.size)
                self._active = active_mask.copy()
                self._active_bits = pack_mask(self._active)
                restart = self._deletion_restart(deleted)
                self._greedy_suffix(restart)
        np.copyto(self._match_left, self._greedy_left)
        np.copyto(self._match_right, self._greedy_right)
        greedy_done = _time.perf_counter()
        self.stats["greedy_seconds"] += greedy_done - started
        # Phases 2+ run on list mirrors of the match/distance arrays (the
        # reference's data layout); the numpy arrays are re-synced before
        # each vectorized BFS.
        match_left = self._match_left.tolist()
        match_right = self._match_right.tolist()
        cache: dict[int, list[int]] = {}
        while self._bfs():
            distance = self._distance.tolist()
            for u in np.flatnonzero(self._active & (self._match_left == -1)):
                self._augment(int(u), distance, match_left, match_right, cache)
            self._match_left[:] = match_left
            self._match_right[:] = match_right
        self.stats["augment_seconds"] += _time.perf_counter() - greedy_done
        return self._paths()

    def _paths(self) -> list[list[int]]:
        match_left, match_right = self._match_left, self._match_right
        paths: list[list[int]] = []
        seen = 0
        for head in np.flatnonzero(self._active & (match_right == -1)):
            current = int(head)
            path = [current]
            while match_left[current] != -1:
                current = int(match_left[current])
                path.append(current)
            seen += len(path)
            paths.append(path)
        active_count = int(np.count_nonzero(self._active))
        if seen != active_count:
            raise GraphError(
                f"incremental path cover covered {seen} of {active_count} "
                "active vertices; the warm-start matching is corrupt"
            )
        return paths
