"""The partial order on similarity vectors (paper Eqs. 3-4).

``p >= p'`` (weak dominance) when every component of ``p``'s similarity
vector is at least the corresponding component of ``p'``; ``p > p'`` (strict
dominance) additionally requires at least one strictly larger component.

The scalar functions are the readable reference; the ``*_masks`` helpers are
the vectorised forms the graph engine uses (one numpy pass over all vertices
per query).
"""

from __future__ import annotations

import numpy as np


def dominates(u: np.ndarray, v: np.ndarray) -> bool:
    """True when ``u >= v`` componentwise (weak dominance, Eq. 3)."""
    return bool(np.all(u >= v))


def strictly_dominates(u: np.ndarray, v: np.ndarray) -> bool:
    """True when ``u >= v`` componentwise with some strict component (Eq. 4)."""
    return bool(np.all(u >= v) and np.any(u > v))


def comparable(u: np.ndarray, v: np.ndarray) -> bool:
    """True when the two vectors are ordered either way under strict dominance."""
    return strictly_dominates(u, v) or strictly_dominates(v, u)


def descendant_mask(matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Boolean mask over rows of *matrix* strictly dominated by *vector*.

    Because strict dominance is transitive, this mask is simultaneously the
    "children in the full dominance relation" and the "descendants" of the
    vertex — the set whose answers a RED vertex determines (§3.2).
    """
    return np.logical_and((matrix <= vector).all(axis=1), (matrix < vector).any(axis=1))


def ancestor_mask(matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Boolean mask over rows of *matrix* strictly dominating *vector*.

    The set whose answers a GREEN vertex determines (§3.2).
    """
    return np.logical_and((matrix >= vector).all(axis=1), (matrix > vector).any(axis=1))


def incomparable_mask(matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Rows neither dominating nor dominated by *vector* (and not equal)."""
    equal = (matrix == vector).all(axis=1)
    related = descendant_mask(matrix, vector) | ancestor_mask(matrix, vector)
    return ~(related | equal)
