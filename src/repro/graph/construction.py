"""The three graph-construction algorithms of §4.1.

All three compute the same output — the full strict-dominance edge set
``{(u, v) : u > v}`` over the similarity vectors — differing only in how
much comparison work they avoid:

* :func:`brute_force_edges` — compare every ordered pair, O(|V|^2 m).
* :func:`quicksort_edges` — the paper's partition recursion: comparing every
  vertex against a pivot splits the rest into parents P, children C and
  incomparables U; all P x C edges follow by transitivity without any
  comparison, and the recursion continues on P+U and C+U.  Following the
  paper's footnote, pairs inside U are compared in only one branch.
* :func:`index_edges` — the paper's range-tree method: index two attributes
  in a 2-D range tree, fetch each vertex's candidate children with a
  left-bottom query, and verify the remaining attributes (the paper's own
  heuristic for m > 2, footnote 5).

:func:`vectorized_edges` is the per-vertex numpy reference used as ground
truth in tests; it is not one of the paper's algorithms.
:func:`blocked_edges` is the production kernel: the same dominance relation
computed in ``(B, n)`` tiles so Python-level iteration drops from ``n``
round-trips to ``n / B`` while the per-tile temporaries stay bounded.  The
graph classes (:mod:`repro.graph.dag`) build their adjacency through the
blocked kernel.  The Fig. 20 benchmark times the three faithful paper
implementations.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import GraphError
from .range_tree import RangeTree2D

Edge = tuple[int, int]


def _validate(vectors: np.ndarray) -> np.ndarray:
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2:
        raise GraphError(f"vectors must be 2-D, got shape {vectors.shape}")
    return vectors


def vectorized_edges(vectors: np.ndarray) -> set[Edge]:
    """Reference edge set via per-vertex numpy broadcasting.

    One Python-level iteration (and two full ``(n, m)`` comparisons) per
    vertex; kept as the scalar reference the blocked kernel is tested
    against.  Production code should call :func:`blocked_edges`.
    """
    vectors = _validate(vectors)
    edges: set[Edge] = set()
    for vertex in range(vectors.shape[0]):
        row = vectors[vertex]
        dominated = np.logical_and(
            (vectors <= row).all(axis=1), (vectors < row).any(axis=1)
        )
        for child in np.flatnonzero(dominated):
            edges.add((vertex, int(child)))
    return edges


#: Row-tile height of the blocked dominance kernel.  Chosen so one boolean
#: ``(B, n)`` accumulator stays comfortably inside L2/L3 for the pair counts
#: the paper's datasets produce (n up to a few hundred thousand).
DEFAULT_BLOCK_SIZE = 256


def blocked_dominance_lists(
    dominant: np.ndarray,
    dominated: np.ndarray,
    block_size: int = DEFAULT_BLOCK_SIZE,
    exclude_diagonal: bool = True,
    row_range: tuple[int, int] | None = None,
) -> list[np.ndarray]:
    """Children lists of the strict-dominance relation, computed in tiles.

    ``result[u]`` holds every ``v`` with ``dominant[u] >= dominated[v]`` on
    all attributes and ``>`` on at least one — the general form shared by the
    per-pair graph (*dominant* = *dominated* = the similarity matrix) and the
    grouped graph (*dominant* = group lower bounds, *dominated* = group upper
    bounds, Eqs. 5-6).

    Instead of one Python iteration per vertex, rows are processed in blocks
    of *block_size*: per attribute the ``(B, n)`` comparisons are accumulated
    into two boolean tiles (``all >=`` and ``any >``), bounding temporary
    memory at ``O(B * n)`` regardless of ``m`` while cutting the Python-loop
    overhead by ``B``.

    Args:
        dominant / dominated: ``(n, m)`` float arrays, row-aligned.
        block_size: tile height (rows of *dominant* per iteration).
        exclude_diagonal: drop ``u == v`` matches (self-dominance of a
            degenerate single-point group); pair graphs never produce them
            because strict dominance already excludes equal rows.
        row_range: optional ``(lo, hi)``: compute lists only for dominant
            rows ``lo..hi-1`` (columns stay global).  The sharded executor
            uses this to build the adjacency in parallel row blocks —
            concatenating the per-range outputs in row order reproduces the
            full-range output exactly, tile boundaries included.
    """
    dominant = _validate(dominant)
    dominated = _validate(dominated)
    if dominant.shape != dominated.shape:
        raise GraphError(
            f"dominant/dominated shapes differ: {dominant.shape} vs {dominated.shape}"
        )
    if block_size < 1:
        raise GraphError(f"block_size must be >= 1, got {block_size}")
    n, m = dominant.shape
    lo, hi = (0, n) if row_range is None else row_range
    if not 0 <= lo <= hi <= n:
        raise GraphError(
            f"row_range must satisfy 0 <= lo <= hi <= {n}, got ({lo}, {hi})"
        )
    children: list[np.ndarray] = []
    for start in range(lo, hi, block_size):
        block = dominant[start : min(start + block_size, hi)]
        height = block.shape[0]
        all_ge = np.ones((height, n), dtype=bool)
        any_gt = np.zeros((height, n), dtype=bool)
        for k in range(m):
            column = dominated[:, k]
            tile = block[:, k, None]
            np.logical_and(all_ge, tile >= column, out=all_ge)
            np.logical_or(any_gt, tile > column, out=any_gt)
        np.logical_and(all_ge, any_gt, out=all_ge)
        if exclude_diagonal:
            all_ge[np.arange(height), np.arange(start, start + height)] = False
        # One nonzero over the tile (row-major, so cols are grouped and
        # ascending per row), then a single split — no per-row scans.
        rows, cols = np.nonzero(all_ge)
        counts = np.bincount(rows, minlength=height)
        children.extend(np.split(cols, np.cumsum(counts)[:-1]))
    return children


def blocked_edges(vectors: np.ndarray, block_size: int = DEFAULT_BLOCK_SIZE) -> set[Edge]:
    """Dominance edge set via the blocked kernel (production fast path).

    Produces exactly the edge set of :func:`vectorized_edges` /
    :func:`brute_force_edges` (enforced by property tests) with ``n / B``
    Python-level iterations instead of ``n``.
    """
    vectors = _validate(vectors)
    n, m = vectors.shape
    edges: set[Edge] = set()
    for start in range(0, n, block_size):
        block = vectors[start : start + block_size]
        height = block.shape[0]
        all_ge = np.ones((height, n), dtype=bool)
        any_gt = np.zeros((height, n), dtype=bool)
        for k in range(m):
            column = vectors[:, k]
            tile = block[:, k, None]
            np.logical_and(all_ge, tile >= column, out=all_ge)
            np.logical_or(any_gt, tile > column, out=any_gt)
        np.logical_and(all_ge, any_gt, out=all_ge)
        rows, cols = np.nonzero(all_ge)
        edges.update(zip((rows + start).tolist(), cols.tolist()))
    return edges


def _compare_rows(row_i, row_j) -> int:
    """1 if row_i strictly dominates row_j, -1 for the reverse, else 0.

    Single pass with early exit once the rows are incomparable; shared by
    all three construction algorithms so their measured differences come
    from the algorithms, not the comparator.
    """
    i_geq = j_geq = True
    for a, b in zip(row_i, row_j):
        if a > b:
            j_geq = False
            if not i_geq:
                return 0
        elif b > a:
            i_geq = False
            if not j_geq:
                return 0
    if i_geq and not j_geq:
        return 1
    if j_geq and not i_geq:
        return -1
    return 0


def brute_force_edges(vectors: np.ndarray) -> set[Edge]:
    """Compare every pair of vertices directly (the §4.1 baseline)."""
    vectors = _validate(vectors)
    rows = [tuple(row) for row in vectors]
    edges: set[Edge] = set()
    n = len(rows)
    for i in range(n):
        row_i = rows[i]
        for j in range(i + 1, n):
            relation = _compare_rows(row_i, rows[j])
            if relation > 0:
                edges.add((i, j))
            elif relation < 0:
                edges.add((j, i))
    return edges


def quicksort_edges(vectors: np.ndarray, seed: int = 0, leaf_size: int = 8) -> set[Edge]:
    """The quicksort-style partition construction of §4.1.

    Comparing every vertex of a set against a pivot splits it into parents
    ``P``, children ``C`` and incomparables ``U``; every ``P x C`` edge then
    follows by transitivity with no comparison (the method's saving).  The
    remaining unknown pairs are covered by strictly smaller subproblems, each
    pair exactly once (the paper's footnote about not re-comparing pairs of
    incomparable vertices):

    * WITHIN(S)  -> WITHIN(P), WITHIN(C), WITHIN(U), CROSS(P, U), CROSS(C, U)
    * CROSS(A,B) -> partition both sides against one pivot; the unknown cells
      regroup into CROSS(P_A+U_A, P_B+U_B), CROSS(C_A, C_B+U_B), CROSS(U_A, C_B).
    """
    vectors = _validate(vectors)
    rows = [tuple(row) for row in vectors]
    rng = np.random.default_rng(seed)
    edges: set[Edge] = set()

    def compare(i: int, j: int) -> int:
        return _compare_rows(rows[i], rows[j])

    def record(i: int, j: int) -> None:
        relation = compare(i, j)
        if relation > 0:
            edges.add((i, j))
        elif relation < 0:
            edges.add((j, i))

    def partition(pivot: int, subset: list[int]) -> tuple[list[int], list[int], list[int]]:
        parents: list[int] = []
        children: list[int] = []
        incomparable: list[int] = []
        for vertex in subset:
            relation = compare(vertex, pivot)
            if relation > 0:
                parents.append(vertex)
                edges.add((vertex, pivot))
            elif relation < 0:
                children.append(vertex)
                edges.add((pivot, vertex))
            else:
                incomparable.append(vertex)
        return parents, children, incomparable

    # Work stack of ("within", S) and ("cross", A, B) frames; an explicit
    # stack avoids Python recursion limits on long chains.  The initial
    # vertex order is shuffled once so popping the last element is a random
    # pivot without per-frame list copies.
    initial = list(range(len(rows)))
    rng.shuffle(initial)
    stack: list[tuple] = [("within", initial)]
    while stack:
        frame = stack.pop()
        if frame[0] == "within":
            subset = frame[1]
            if len(subset) < 2:
                continue
            if len(subset) <= leaf_size:
                for a_index, i in enumerate(subset):
                    for j in subset[a_index + 1 :]:
                        record(i, j)
                continue
            pivot = subset.pop()
            parents, children, incomparable = partition(pivot, subset)
            for parent in parents:
                for child in children:
                    edges.add((parent, child))
            # Frames own (and may mutate) their lists, so pass copies where a
            # partition cell feeds more than one frame.
            stack.append(("within", parents))
            stack.append(("within", children))
            stack.append(("within", incomparable))
            stack.append(("cross", parents[:], incomparable[:]))
            stack.append(("cross", children[:], incomparable[:]))
        else:
            side_a, side_b = frame[1], frame[2]
            if not side_a or not side_b:
                continue
            # When a block is dominated by mutually incomparable vertices the
            # partition stops paying for itself (the paper observes exactly
            # this: "many pairs cannot be pruned"); finish such blocks with
            # direct comparisons instead of degenerate recursion.
            if len(side_a) * len(side_b) <= leaf_size * leaf_size:
                for i in side_a:
                    for j in side_b:
                        record(i, j)
                continue
            pivot_side, other_side = (
                (side_a, side_b) if len(side_a) >= len(side_b) else (side_b, side_a)
            )
            pivot = pivot_side.pop()
            p_own, c_own, u_own = partition(pivot, pivot_side)
            p_other, c_other, u_other = partition(pivot, other_side)
            # Transitivity covers P x C across sides.
            for parent in p_own:
                for child in c_other:
                    edges.add((parent, child))
            for parent in p_other:
                for child in c_own:
                    edges.add((parent, child))
            pruned = len(p_own) * len(c_other) + len(p_other) * len(c_own)
            if pruned * 4 < len(pivot_side) + len(other_side):
                # Barely any transitive pruning: finish the still-unknown
                # cells with direct scans instead of degenerate recursion.
                for i in p_own:
                    for j in p_other + u_other:
                        record(i, j)
                for i in c_own:
                    for j in c_other + u_other:
                        record(i, j)
                for i in u_own:
                    for j in other_side:
                        record(i, j)
                continue
            # Unknown cells, each covered exactly once.
            stack.append(("cross", p_own + u_own, p_other + u_other))
            stack.append(("cross", c_own, c_other + u_other))
            stack.append(("cross", u_own, c_other))
    return edges


def index_edges(
    vectors: np.ndarray,
    indexed_attributes: tuple[int, int] = (0, 1),
    cascading: bool = False,
) -> set[Edge]:
    """The range-tree construction of §4.1.

    Two attributes are indexed (the paper's heuristic for high-dimensional
    data, footnote 5: "the pairs reported by the index are a superset ...
    we only need to verify them ... based on other non-indexed attributes").

    Args:
        cascading: use the fractional-cascading tree (§4.1's complexity
            refinement: one binary search per query instead of one per
            canonical node).
    """
    vectors = _validate(vectors)
    m = vectors.shape[1]
    ax, ay = indexed_attributes
    if not (0 <= ax < m and 0 <= ay < m) or ax == ay:
        raise GraphError(
            f"indexed_attributes must be two distinct attribute indexes < {m}, "
            f"got {indexed_attributes}"
        )
    if cascading:
        from .cascading import CascadingRangeTree2D

        tree = CascadingRangeTree2D(vectors[:, [ax, ay]])
    else:
        tree = RangeTree2D(vectors[:, [ax, ay]])
    rows = [tuple(row) for row in vectors]
    edges: set[Edge] = set()
    for vertex in range(len(rows)):
        row = rows[vertex]
        candidates = tree.query_leq(row[ax], row[ay])
        for candidate in candidates:
            if candidate == vertex:
                continue
            if _compare_rows(row, rows[candidate]) > 0:
                edges.add((vertex, candidate))
    return edges


CONSTRUCTION_ALGORITHMS = {
    "brute-force": brute_force_edges,
    "quicksort": quicksort_edges,
    "index": index_edges,
    "vectorized": vectorized_edges,
    "blocked": blocked_edges,
}
