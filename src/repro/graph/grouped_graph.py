"""The grouped graph (paper Definitions 5-6 and Eq. 5-6).

Each vertex of a :class:`GroupedGraph` is a group of pairs.  The partial
order between groups is decided from the per-attribute bounds: with
``g.l / g.u`` the smallest/largest member similarity on an attribute,

* ``g_i >= g_j`` when ``g_i.l^k >= g_j.u^k`` for every attribute ``k``;
* ``g_i >  g_j`` when additionally ``g_i.l^k > g_j.u^k`` for some ``k``

— the sufficient condition the paper proves, which makes group dominance
checkable in O(m) from the bounds alone.  Asking a group asks one randomly
chosen member pair, and the group's color applies to all members (§4.2).

Group dominance is transitive: ``g_i > g_j > g_k`` gives
``l_i >= u_j >= l_j >= u_k`` per attribute (bounds satisfy ``l <= u``
within a group) with strictness carried through, so ``g_i > g_k``.  That is
exactly the property the incremental selection machinery relies on — a
vertex's adjacency row already being its full descendant set — which is why
a :class:`GroupedGraph` reuses the same packed
:class:`~repro.graph.reachability.ReachabilityIndex` and warm-start
:class:`~repro.graph.matching.IncrementalPathCover` fast paths as the
non-grouped graph, with no special casing.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..data.ground_truth import Pair
from ..exceptions import GraphError
from .dag import OrderedGraph, PairGraph
from .grouping import Grouping


class GroupedGraph(OrderedGraph):
    """A graph whose vertices are groups of base-graph pairs.

    Args:
        base: the non-grouped :class:`PairGraph`.
        grouping: a complete, disjoint partition of the base vertices (as
            produced by :func:`repro.graph.grouping.split_grouping` or
            :func:`~repro.graph.grouping.greedy_grouping`).
    """

    def __init__(self, base: PairGraph, grouping: Grouping) -> None:
        super().__init__(num_vertices=len(grouping))
        self.base = base
        self.grouping = [list(group) for group in grouping]
        seen: set[int] = set()
        for group in self.grouping:
            if not group:
                raise GraphError("grouped graph cannot contain empty groups")
            for member in group:
                if not 0 <= member < len(base):
                    raise GraphError(f"group member {member} is not a base vertex")
                if member in seen:
                    raise GraphError(f"base vertex {member} appears in two groups")
                seen.add(member)
        if len(seen) != len(base):
            raise GraphError(
                f"grouping covers {len(seen)} of {len(base)} base vertices"
            )
        if self.grouping:
            self.lower_bounds = np.vstack(
                [base.vectors[group].min(axis=0) for group in self.grouping]
            )
            self.upper_bounds = np.vstack(
                [base.vectors[group].max(axis=0) for group in self.grouping]
            )
        else:  # zero candidate pairs: keep (0, m) shapes so kernels no-op
            self.lower_bounds = base.vectors[:0].copy()
            self.upper_bounds = base.vectors[:0].copy()
        self._group_of_base = np.empty(len(base), dtype=np.int64)
        for group_id, group in enumerate(self.grouping):
            self._group_of_base[group] = group_id

    @property
    def num_attributes(self) -> int:
        return self.base.num_attributes

    def _dominance_operands(self) -> tuple[np.ndarray, np.ndarray]:
        # Group g_i > g_j iff lower(g_i) >= upper(g_j) with a strict attribute
        # (Eqs. 5-6) — exactly the blocked kernel's operand form.
        return self.lower_bounds, self.upper_bounds

    def descendant_mask(self, vertex: int) -> np.ndarray:
        self._check_vertex(vertex)
        lower = self.lower_bounds[vertex]
        mask = np.logical_and(
            (self.upper_bounds <= lower).all(axis=1),
            (self.upper_bounds < lower).any(axis=1),
        )
        mask[vertex] = False
        return mask

    def ancestor_mask(self, vertex: int) -> np.ndarray:
        self._check_vertex(vertex)
        upper = self.upper_bounds[vertex]
        mask = np.logical_and(
            (self.lower_bounds >= upper).all(axis=1),
            (self.lower_bounds > upper).any(axis=1),
        )
        mask[vertex] = False
        return mask

    def member_pairs(self, vertex: int) -> tuple[Pair, ...]:
        self._check_vertex(vertex)
        return tuple(self.base.pairs[member] for member in self.grouping[vertex])

    def representative_pair(self, vertex: int, rng: np.random.Generator) -> Pair:
        """One random member pair — the question actually sent to workers."""
        self._check_vertex(vertex)
        group = self.grouping[vertex]
        return self.base.pairs[group[int(rng.integers(0, len(group)))]]

    def group_of_pair_vertex(self, base_vertex: int) -> int:
        """The group containing a base-graph vertex."""
        if not 0 <= base_vertex < len(self.base):
            raise GraphError(f"base vertex {base_vertex} out of range")
        return int(self._group_of_base[base_vertex])

    def group_sizes(self) -> np.ndarray:
        return np.array([len(group) for group in self.grouping])


def build_graph(
    pairs: Sequence[Pair],
    vectors: np.ndarray,
    epsilon: float | None = 0.1,
    grouping_algorithm: str = "split",
) -> OrderedGraph:
    """Convenience builder: PairGraph, optionally grouped.

    Args:
        pairs / vectors: the candidate pairs and their similarity matrix.
        epsilon: grouping threshold; ``None`` (or 0 with a non-grouping
            intent) returns the raw :class:`PairGraph`.
        grouping_algorithm: ``"split"`` (default, Algorithm 2) or
            ``"greedy"`` (Appendix A).
    """
    from .grouping import GROUPING_ALGORITHMS

    base = PairGraph(pairs, vectors)
    if epsilon is None:
        return base
    try:
        algorithm = GROUPING_ALGORITHMS[grouping_algorithm]
    except KeyError:
        known = ", ".join(sorted(GROUPING_ALGORITHMS))
        raise GraphError(
            f"unknown grouping algorithm {grouping_algorithm!r}; known: {known}"
        ) from None
    grouping = algorithm(base.vectors, epsilon)
    return GroupedGraph(base, grouping)
