"""The graph-coloring engine (paper §3.2 and §5.3's conflict handling).

Asking a vertex and receiving **Yes** colors it GREEN and gives every
ancestor a GREEN inference vote; **No** colors it RED and gives every
descendant a RED vote.  Crowd-answered vertices are *pinned* — their color
never changes — while inferred vertices take the majority of the votes they
have received, which is exactly how the paper resolves the conflicts that
parallel question batches can create ("we can use majority voting to vote
g's color").  Vote ties resolve to RED: treating an ambiguous pair as a
non-match favours precision, and a RED default never merges clusters.

The BLUE color is used by the error-tolerant layer (§6) for vertices whose
crowd answer had low confidence; BLUE vertices are pinned and excluded from
inference in both directions.
"""

from __future__ import annotations

from enum import IntEnum

import numpy as np

from ..data.ground_truth import Pair
from ..exceptions import GraphError
from .dag import OrderedGraph


class Color(IntEnum):
    """Vertex colors: the paper's GREEN/RED plus the §6 BLUE."""

    UNCOLORED = 0
    GREEN = 1  # records refer to the same entity
    RED = 2  # records refer to different entities
    BLUE = 3  # low-confidence answer; decided later by the histogram step


class ColoringState:
    """Mutable coloring of an :class:`OrderedGraph` with inference voting.

    Attributes:
        graph: the graph being colored.
        colors: per-vertex :class:`Color` values (int8 array).
        asked_order: vertices in the order they were crowd-answered.
    """

    def __init__(self, graph: OrderedGraph) -> None:
        self.graph = graph
        n = len(graph)
        self.colors = np.full(n, Color.UNCOLORED, dtype=np.int8)
        self._pinned = np.zeros(n, dtype=bool)
        self._green_votes = np.zeros(n, dtype=np.int32)
        self._red_votes = np.zeros(n, dtype=np.int32)
        self.asked_order: list[int] = []

    # ------------------------------------------------------------------ #
    # Applying crowd answers
    # ------------------------------------------------------------------ #

    def apply_answer(self, vertex: int, answer: bool, propagate: bool = True) -> None:
        """Pin *vertex* to the crowd's answer and optionally propagate.

        Args:
            vertex: the asked vertex.
            answer: True = same entity (GREEN), False = different (RED).
            propagate: when True (the default coloring strategy), a GREEN
                answer votes every ancestor GREEN and a RED answer votes
                every descendant RED.  The error-tolerant algorithm passes
                False for low-confidence answers.
        """
        self.graph._check_vertex(vertex)
        self.asked_order.append(vertex)
        self.colors[vertex] = Color.GREEN if answer else Color.RED
        self._pinned[vertex] = True
        if not propagate:
            return
        # A built reachability index serves the same masks as one packed-row
        # fetch (byte-identical to the float broadcasts; verified by the
        # battery's incremental differentials).
        index = self.graph.reachability
        if answer:
            targets = (
                index.ancestor_mask(vertex)
                if index is not None
                else self.graph.ancestor_mask(vertex)
            )
            self._green_votes[targets] += 1
        else:
            targets = (
                index.descendant_mask(vertex)
                if index is not None
                else self.graph.descendant_mask(vertex)
            )
            self._red_votes[targets] += 1
        self._refresh(targets)

    def mark_blue(self, vertex: int) -> None:
        """Pin *vertex* BLUE (low-confidence answer; no inference either way)."""
        self.graph._check_vertex(vertex)
        self.asked_order.append(vertex)
        self.colors[vertex] = Color.BLUE
        self._pinned[vertex] = True

    def force_color(self, vertex: int, color: Color) -> None:
        """Pin a vertex to a color chosen outside the crowd loop.

        Used by the §6 histogram step to settle BLUE vertices.
        """
        self.graph._check_vertex(vertex)
        self.colors[vertex] = color
        self._pinned[vertex] = True

    def _refresh(self, mask: np.ndarray) -> None:
        """Recompute inferred colors where votes changed (pinned stay put)."""
        active = mask & ~self._pinned
        greens = self._green_votes[active] > self._red_votes[active]
        indexes = np.flatnonzero(active)
        self.colors[indexes] = np.where(greens, Color.GREEN, Color.RED)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def uncolored(self) -> np.ndarray:
        """Indices of vertices that are still uncolored."""
        return np.flatnonzero(self.colors == Color.UNCOLORED)

    def uncolored_mask(self) -> np.ndarray:
        return self.colors == Color.UNCOLORED

    def is_complete(self) -> bool:
        """True when no vertex is left uncolored (BLUE counts as colored)."""
        return not bool(np.any(self.colors == Color.UNCOLORED))

    def color_of(self, vertex: int) -> Color:
        return Color(int(self.colors[vertex]))

    @property
    def num_asked(self) -> int:
        return len(self.asked_order)

    @property
    def num_deduced(self) -> int:
        """Vertices colored GREEN/RED without being asked."""
        colored = np.isin(self.colors, (Color.GREEN, Color.RED))
        return int(np.count_nonzero(colored & ~self._pinned))

    def blue_vertices(self) -> np.ndarray:
        return np.flatnonzero(self.colors == Color.BLUE)

    def vertices_with(self, color: Color) -> np.ndarray:
        return np.flatnonzero(self.colors == color)

    def pair_labels(self) -> dict[Pair, bool]:
        """Match decision per record pair: GREEN members True, RED False.

        BLUE or uncolored vertices contribute nothing; callers decide those
        separately (the §6 histogram step) or treat them as non-matches.
        """
        labels: dict[Pair, bool] = {}
        for vertex in range(len(self.graph)):
            color = self.colors[vertex]
            if color == Color.GREEN or color == Color.RED:
                decision = color == Color.GREEN
                for pair in self.graph.member_pairs(vertex):
                    labels[pair] = bool(decision)
        return labels

    def validate_against(self, truth: dict[Pair, bool]) -> float:
        """Fraction of colored pairs whose color matches the ground truth."""
        labels = self.pair_labels()
        if not labels:
            raise GraphError("no pairs are colored yet")
        correct = sum(
            1 for pair, decision in labels.items() if truth.get(pair) == decision
        )
        return correct / len(labels)
