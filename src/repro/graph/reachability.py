"""Packed-bitset reachability index over the dominance relation.

Because strict dominance is transitive, a vertex's adjacency row *is* its
full descendant set — so the whole reachability structure of the DAG fits
in two bit-matrices of ``n x ceil(n/8)`` bytes (descendants row-wise, and
their transpose for ancestors).  A :class:`ReachabilityIndex` packs both
with :func:`numpy.packbits` (``bitorder="little"``: bit ``j`` of byte ``i``
is vertex ``8 i + j``), which turns the hot per-answer / per-round
operations of the selection loop into word-parallel byte ops:

* color propagation (``ColoringState.apply_answer``) fetches one row and
  unpacks it instead of re-broadcasting an ``O(n m)`` float comparison;
* the incremental path-cover engine
  (:class:`repro.graph.matching.IncrementalPathCover`) restricts adjacency
  to the active sub-DAG with a single ``AND`` against the packed active
  mask instead of rebuilding Python adjacency lists every round.

The index is built once per graph, from the cached blocked-kernel
adjacency, and only for graphs that expose their dominance operands
(``_dominance_operands() is not None``) — the naive oracle twins in
:mod:`repro.verify.oracles` never get one, so differential checks keep
exercising the pure reference paths.  A byte-size gate
(:data:`DEFAULT_REACHABILITY_BYTES`, overridable through the
``reachability_index`` config knob) keeps huge graphs on the mask-broadcast
path instead of materialising a quadratic index.

Unpacked rows are byte-identical to the float-broadcast masks
(``graph.ancestor_mask`` / ``graph.descendant_mask``); the verify battery
and ``tests/test_graph_reachability.py`` enforce this.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import GraphError

#: Default byte budget for one index (both matrices together).  256 MiB
#: admits graphs of roughly 30k vertices; beyond that the selection loop
#: falls back to the reference mask-broadcast path.
DEFAULT_REACHABILITY_BYTES = 256 * 1024 * 1024

#: Row-block size used while packing (bounds the dense boolean temp).
_BUILD_BLOCK = 1024


def pack_mask(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean vector into little-endian bit-order bytes."""
    return np.packbits(np.ascontiguousarray(mask, dtype=bool), bitorder="little")


def unpack_mask(bits: np.ndarray, num_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_mask`: the first *num_bits* as a bool array."""
    return np.unpackbits(bits, count=num_bits, bitorder="little").view(bool)


def lowest_set_bit(bits: np.ndarray) -> int:
    """Index of the lowest set bit of a packed vector, or -1 when empty."""
    if not bits.any():
        return -1
    byte_index = int(np.argmax(bits != 0))
    byte = int(bits[byte_index])
    return byte_index * 8 + ((byte & -byte).bit_length() - 1)


def _pack_rows(row_targets: list[np.ndarray], n: int) -> np.ndarray:
    """Pack per-vertex target index lists into an (n, ceil(n/8)) bit-matrix."""
    width = (n + 7) // 8
    packed = np.empty((n, width), dtype=np.uint8)
    block = np.zeros((min(_BUILD_BLOCK, max(n, 1)), n), dtype=bool)
    for start in range(0, n, _BUILD_BLOCK):
        stop = min(start + _BUILD_BLOCK, n)
        rows = block[: stop - start]
        rows[:] = False
        lengths = np.fromiter(
            (len(row_targets[vertex]) for vertex in range(start, stop)),
            count=stop - start,
            dtype=np.int64,
        )
        total = int(lengths.sum())
        if total:
            columns = np.concatenate(
                [np.asarray(row_targets[v], dtype=np.int64) for v in range(start, stop)]
            )
            rows[np.repeat(np.arange(stop - start), lengths), columns] = True
        packed[start:stop] = np.packbits(rows, axis=1, bitorder="little")
    return packed


def _transpose_bits(bits: np.ndarray, n: int) -> np.ndarray:
    """Transpose an (n, ceil(n/8)) packed bit-matrix, block of rows at a time.

    ``_BUILD_BLOCK`` is a multiple of 8, so each output row-block maps to a
    byte-aligned column slice of the input — unpack, transpose, repack, all
    in C.
    """
    width = (n + 7) // 8
    out = np.empty((n, width), dtype=np.uint8)
    for start in range(0, n, _BUILD_BLOCK):
        stop = min(start + _BUILD_BLOCK, n)
        sub = np.unpackbits(
            bits[:, start >> 3 : (stop + 7) >> 3], axis=1, bitorder="little"
        )[:, : stop - start]
        out[start:stop] = np.packbits(
            np.ascontiguousarray(sub.T), axis=1, bitorder="little"
        )
    return out


class ReachabilityIndex:
    """Packed ancestor/descendant bit-matrices of an ordered graph.

    Attributes:
        num_vertices: vertex count ``n``.
        width: bytes per packed row, ``ceil(n / 8)``.
    """

    def __init__(
        self,
        descendant_bits: np.ndarray,
        ancestor_bits: np.ndarray,
        num_vertices: int,
    ) -> None:
        self._desc = descendant_bits
        self._anc = ancestor_bits
        self.num_vertices = num_vertices
        self.width = (num_vertices + 7) // 8

    @staticmethod
    def estimated_bytes(num_vertices: int) -> int:
        """Bytes the two packed matrices would occupy for *num_vertices*."""
        return 2 * num_vertices * ((num_vertices + 7) // 8)

    @classmethod
    def build(cls, graph) -> "ReachabilityIndex":
        """Build the index from a graph's (cached) adjacency lists.

        The ancestor matrix is the bit-transpose of the descendant matrix
        (``u`` dominates ``v`` iff ``v`` is dominated by ``u``), computed
        block-wise in packed form.
        """
        adjacency = graph.adjacency()
        n = len(graph)
        desc = _pack_rows(adjacency, n)
        anc = _transpose_bits(desc, n)
        return cls(desc, anc, n)

    # ------------------------------------------------------------------ #
    # Row access
    # ------------------------------------------------------------------ #

    def _check(self, vertex: int) -> None:
        if not 0 <= vertex < self.num_vertices:
            raise GraphError(
                f"vertex {vertex} out of range [0, {self.num_vertices})"
            )

    def descendant_row(self, vertex: int) -> np.ndarray:
        """Packed row of vertices strictly dominated by *vertex*."""
        self._check(vertex)
        return self._desc[vertex]

    def ancestor_row(self, vertex: int) -> np.ndarray:
        """Packed row of vertices strictly dominating *vertex*."""
        self._check(vertex)
        return self._anc[vertex]

    def descendant_mask(self, vertex: int) -> np.ndarray:
        """Boolean descendant mask, byte-identical to the graph's own."""
        return unpack_mask(self.descendant_row(vertex), self.num_vertices)

    def ancestor_mask(self, vertex: int) -> np.ndarray:
        """Boolean ancestor mask, byte-identical to the graph's own."""
        return unpack_mask(self.ancestor_row(vertex), self.num_vertices)

    def nbytes(self) -> int:
        return int(self._desc.nbytes + self._anc.nbytes)


__all__ = [
    "DEFAULT_REACHABILITY_BYTES",
    "ReachabilityIndex",
    "lowest_set_bit",
    "pack_mask",
    "unpack_mask",
]
