"""Fractional cascading for the 2-D range tree (paper §4.1).

The paper notes that fractional cascading reduces the query complexity of
the 2-D range tree from ``O(log^2 |V| + k)`` to ``O(log |V| + k)``: instead
of binary-searching the y-array of *every* canonical node, search once at
the root and *cascade* the position downward through precomputed bridge
pointers.

Implementation: the tree is built bottom-up exactly like
:class:`~repro.graph.range_tree.RangeTree2D` (each node's y-sorted payload
is the merge of its children's), plus, for every node, two bridge arrays —
``bridge_left[i]`` / ``bridge_right[i]`` give, for the i-th position in the
node's y-array, the corresponding insertion position in the left / right
child's y-array.  Following a bridge is O(1), so after the single root
search every canonical node's cutoff is found without further searching.

The public behaviour is identical to ``RangeTree2D``; tests assert equality
and count the binary searches to verify the cascading actually cascades.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import GraphError


@dataclass
class _CascadeNode:
    lo: int
    hi: int
    max_x: float
    min_x: float
    ys: list[float] = field(default_factory=list)
    payload: list[int] = field(default_factory=list)
    bridge_left: list[int] = field(default_factory=list)
    bridge_right: list[int] = field(default_factory=list)
    left: "_CascadeNode | None" = None
    right: "_CascadeNode | None" = None


class CascadingRangeTree2D:
    """2-D range tree with fractional cascading on the y dimension.

    Args:
        points: ``(n, 2)`` array of (x, y); point ``i`` reported by index.
    """

    def __init__(self, points: np.ndarray) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 2:
            raise GraphError(f"points must have shape (n, 2), got {points.shape}")
        self._n = points.shape[0]
        #: Binary searches performed by queries (diagnostic for tests).
        self.searches = 0
        if self._n == 0:
            self._root = None
            return
        xs = sorted(set(float(x) for x in points[:, 0]))
        rank = {x: i for i, x in enumerate(xs)}
        buckets: list[list[int]] = [[] for _ in xs]
        for index in range(self._n):
            buckets[rank[float(points[index, 0])]].append(index)
        for bucket in buckets:
            bucket.sort(key=lambda i: float(points[i, 1]))
        self._xs = xs
        self._root = self._build(0, len(xs) - 1, buckets, points)

    def _build(
        self, lo: int, hi: int, buckets: list[list[int]], points: np.ndarray
    ) -> _CascadeNode:
        node = _CascadeNode(lo=lo, hi=hi, max_x=self._xs[hi], min_x=self._xs[lo])
        if lo == hi:
            node.payload = list(buckets[lo])
            node.ys = [float(points[i, 1]) for i in node.payload]
            return node
        mid = (lo + hi) // 2
        node.left = self._build(lo, mid, buckets, points)
        node.right = self._build(mid + 1, hi, buckets, points)
        # Merge children and record, per merged position, how many elements
        # of each child are <= it — the bridge pointers.
        left, right = node.left, node.right
        i = j = 0
        while i < len(left.ys) or j < len(right.ys):
            take_left = j >= len(right.ys) or (
                i < len(left.ys) and left.ys[i] <= right.ys[j]
            )
            if take_left:
                node.ys.append(left.ys[i])
                node.payload.append(left.payload[i])
                i += 1
            else:
                node.ys.append(right.ys[j])
                node.payload.append(right.payload[j])
                j += 1
            node.bridge_left.append(i)
            node.bridge_right.append(j)
        return node

    def query_leq(self, qx: float, qy: float) -> list[int]:
        """Indices of points with ``x <= qx`` and ``y <= qy``.

        One binary search at the root; every descent step converts the
        current y-cutoff to the child's cutoff through the bridges in O(1).
        """
        if self._root is None:
            return []
        result: list[int] = []
        # Root cutoff: number of root ys <= qy.
        self.searches += 1
        cutoff = bisect_right(self._root.ys, qy)

        def cutoffs(node: _CascadeNode, cut: int) -> tuple[int, int]:
            if cut == 0:
                return 0, 0
            return node.bridge_left[cut - 1], node.bridge_right[cut - 1]

        stack: list[tuple[_CascadeNode, int]] = [(self._root, cutoff)]
        while stack:
            node, cut = stack.pop()
            if node.min_x > qx or cut == 0:
                continue
            if node.max_x <= qx:
                result.extend(node.payload[:cut])
                continue
            left_cut, right_cut = cutoffs(node, cut)
            if node.left is not None:
                stack.append((node.left, left_cut))
            if node.right is not None:
                stack.append((node.right, right_cut))
        return result

    def __len__(self) -> int:
        return self._n
