"""An m-dimensional range tree for dominance queries.

The paper indexes two attributes and verifies the rest (footnote 5: "it is
too complicated to construct a high dimensional range tree" for their C++
implementation); the generalisation it calls "straightforward" (§4.1) is
implemented here.  Each node of the level-k tree covers a contiguous run of
sorted distinct coordinate-k values and carries a level-(k+1) tree over the
points below it; the last level is a sorted array, exactly as in
:class:`repro.graph.range_tree.RangeTree2D`.

Build cost is ``O(n log^{m-1} n)``; a query decomposes each of the first
``m-1`` coordinates into ``O(log n)`` canonical nodes and binary-searches
the last, for ``O(log^m n + k)`` reporting — matching the complexities the
paper states (without fractional cascading).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from ..exceptions import GraphError


@dataclass
class _LeafLevel:
    """Final dimension: point ids sorted by their last coordinate."""

    values: list[float]
    payload: list[int]

    def query(self, bound: float) -> list[int]:
        return self.payload[: bisect_right(self.values, bound)]


@dataclass
class _Node:
    max_key: float
    min_key: float
    inner: "_LevelTree | _LeafLevel"
    left: "_Node | None" = None
    right: "_Node | None" = None


@dataclass
class _LevelTree:
    """A balanced tree over one coordinate with nested next-level trees."""

    root: _Node | None

    def query(self, bounds: tuple[float, ...]) -> list[int]:
        """Report points whose coordinates are all <= the bounds."""
        if self.root is None:
            return []
        key_bound, rest = bounds[0], bounds[1:]
        result: list[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.min_key > key_bound:
                continue
            if node.max_key <= key_bound:
                if isinstance(node.inner, _LeafLevel):
                    result.extend(node.inner.query(rest[0]))
                else:
                    result.extend(node.inner.query(rest))
                continue
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return result


def _build_level(points: np.ndarray, ids: list[int], dimension: int) -> _LevelTree:
    """Build the level tree over coordinate *dimension* for the given ids."""
    m = points.shape[1]
    if not ids:
        return _LevelTree(root=None)
    keys = sorted({float(points[i, dimension]) for i in ids})
    buckets: dict[float, list[int]] = {key: [] for key in keys}
    for i in ids:
        buckets[float(points[i, dimension])].append(i)

    def build(lo: int, hi: int) -> _Node:
        covered = [i for key in keys[lo : hi + 1] for i in buckets[key]]
        if dimension == m - 2:
            order = sorted(covered, key=lambda i: float(points[i, m - 1]))
            inner: _LevelTree | _LeafLevel = _LeafLevel(
                values=[float(points[i, m - 1]) for i in order], payload=order
            )
        else:
            inner = _build_level(points, covered, dimension + 1)
        node = _Node(max_key=keys[hi], min_key=keys[lo], inner=inner)
        if lo != hi:
            mid = (lo + hi) // 2
            node.left = build(lo, mid)
            node.right = build(mid + 1, hi)
        return node

    return _LevelTree(root=build(0, len(keys) - 1))


class RangeTreeND:
    """Static m-dimensional range tree answering all-coordinates-<= queries.

    Args:
        points: ``(n, m)`` array with ``m >= 2``; point ``i`` is reported by
            index.  (For ``m == 1`` a sorted array suffices; use numpy.)
    """

    def __init__(self, points: np.ndarray) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] < 2:
            raise GraphError(
                f"points must have shape (n, m >= 2), got {points.shape}"
            )
        self._n, self._m = points.shape
        self._tree = _build_level(points, list(range(self._n)), 0)

    def __len__(self) -> int:
        return self._n

    @property
    def num_dimensions(self) -> int:
        return self._m

    def query_leq(self, bounds) -> list[int]:
        """Indices of points with ``point[k] <= bounds[k]`` for every k."""
        bounds = tuple(float(b) for b in bounds)
        if len(bounds) != self._m:
            raise GraphError(
                f"query needs {self._m} bounds, got {len(bounds)}"
            )
        return self._tree.query(bounds)


def index_edges_nd(vectors: np.ndarray) -> set[tuple[int, int]]:
    """Full-dimensional index-based graph construction.

    Indexes every attribute, so the range query returns exactly the weakly
    dominated set; only the equal-vector / strictness check remains.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2:
        raise GraphError(f"vectors must be 2-D, got shape {vectors.shape}")
    if vectors.shape[1] < 2:
        # Degenerate single-attribute case: sort order is the dominance order.
        order = np.argsort(vectors[:, 0], kind="stable")
        edges: set[tuple[int, int]] = set()
        values = vectors[:, 0]
        for a_pos in range(len(order)):
            for b_pos in range(a_pos + 1, len(order)):
                lower, upper = int(order[a_pos]), int(order[b_pos])
                if values[upper] > values[lower]:
                    edges.add((upper, lower))
        return edges
    tree = RangeTreeND(vectors)
    rows = [tuple(row) for row in vectors]
    edges = set()
    for vertex in range(len(rows)):
        for candidate in tree.query_leq(rows[vertex]):
            if candidate == vertex:
                continue
            other = rows[candidate]
            # Weak dominance is guaranteed by the query; require strictness.
            if any(a > b for a, b in zip(rows[vertex], other)):
                edges.add((vertex, candidate))
    return edges
