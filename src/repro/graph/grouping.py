"""Vertex grouping (paper §4.2 and Appendix A).

A *group* is a set of vertices whose similarities differ by at most
``epsilon`` on every attribute (Definition 3); a *grouping strategy*
partitions the vertex set into groups (Definition 4).  Generating the
minimum number of groups is NP-hard (Theorem 1, by reduction from unit
square cover), so the paper gives two algorithms, both implemented here:

* :func:`split_grouping` — Algorithm 2: recursively halve every attribute
  range wider than epsilon (a k-d-tree-style subdivision).  Fast
  (``O(|V| log 1/eps)``) but heuristic.
* :func:`greedy_grouping` — Appendix A: enumerate maximal groups per
  attribute with a sliding window, join them across attributes (Theorem 3:
  the join contains every maximal group), then greedily set-cover.  A
  ``ln |V|`` approximation but exponential in the attribute count, exactly
  as the paper reports (it never finishes on ACMPub).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..exceptions import ConfigurationError, GraphError

Grouping = list[list[int]]


def _validate_inputs(vectors: np.ndarray, epsilon: float) -> np.ndarray:
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2:
        raise GraphError(f"vectors must be 2-D, got shape {vectors.shape}")
    if epsilon < 0:
        raise ConfigurationError(f"epsilon must be >= 0, got {epsilon}")
    return vectors


def is_group(vectors: np.ndarray, members: list[int], epsilon: float) -> bool:
    """Check Definition 3: spans of at most epsilon on every attribute."""
    if not members:
        return False
    block = vectors[members]
    spans = block.max(axis=0) - block.min(axis=0)
    return bool(np.all(spans <= epsilon + 1e-12))


def validate_grouping(vectors: np.ndarray, groups: Grouping, epsilon: float) -> None:
    """Raise unless *groups* is a complete, disjoint, epsilon-valid partition."""
    seen: set[int] = set()
    for group in groups:
        if not group:
            raise GraphError("grouping contains an empty group")
        if not is_group(vectors, group, epsilon):
            raise GraphError(f"group {group} violates the epsilon constraint")
        for member in group:
            if member in seen:
                raise GraphError(f"vertex {member} appears in two groups")
            seen.add(member)
    if seen != set(range(vectors.shape[0])):
        missing = set(range(vectors.shape[0])) - seen
        raise GraphError(f"grouping misses vertices {sorted(missing)[:10]}")


def split_grouping(vectors: np.ndarray, epsilon: float) -> Grouping:
    """Algorithm 2: split any attribute whose range exceeds epsilon.

    Each tree node is a vertex subset; an attribute with span > epsilon is
    halved at the midpoint of its current range, children are the non-empty
    cells of the cross product of the halved attributes, and leaves (all
    spans <= epsilon) are the output groups.
    """
    vectors = _validate_inputs(vectors, epsilon)
    n = vectors.shape[0]
    if n == 0:
        return []
    if epsilon == 0:
        # Degenerate but well-defined: group identical vectors together.
        buckets: dict[tuple[float, ...], list[int]] = {}
        for vertex in range(n):
            buckets.setdefault(tuple(vectors[vertex]), []).append(vertex)
        return sorted(buckets.values())
    groups: Grouping = []
    queue: deque[np.ndarray] = deque([np.arange(n)])
    while queue:
        members = queue.popleft()
        block = vectors[members]
        lower = block.min(axis=0)
        upper = block.max(axis=0)
        wide = np.flatnonzero(upper - lower > epsilon)
        if wide.size == 0:
            groups.append([int(v) for v in members])
            continue
        # Bit k of a member's cell key says whether it falls in the upper
        # half of the k-th wide attribute.
        midpoints = (lower[wide] + upper[wide]) / 2.0
        keys = (block[:, wide] > midpoints).astype(np.int64)
        cell_ids = keys @ (1 << np.arange(wide.size, dtype=np.int64))
        for cell in np.unique(cell_ids):
            queue.append(members[cell_ids == cell])
    return sorted(groups)


def _maximal_windows_1d(values: np.ndarray, epsilon: float) -> list[frozenset[int]]:
    """Maximal epsilon-windows over one attribute (Appendix A, m=1 case)."""
    order = np.argsort(-values, kind="stable")
    sorted_values = values[order]
    n = values.shape[0]
    windows: list[frozenset[int]] = []
    end = 0
    previous_end = -1
    for start in range(n):
        if end < start:
            end = start
        while end + 1 < n and sorted_values[start] - sorted_values[end + 1] <= epsilon + 1e-12:
            end += 1
        if end > previous_end:
            windows.append(frozenset(int(order[i]) for i in range(start, end + 1)))
            previous_end = end
        if end == n - 1:
            break
    return windows


def maximal_groups(vectors: np.ndarray, epsilon: float) -> list[frozenset[int]]:
    """All candidate maximal groups: the m-way join of Appendix A.

    Theorem 3 guarantees the join of the per-attribute maximal windows
    contains every maximal group; it may also contain non-maximal
    intersections, which the greedy cover tolerates (they simply lose to
    their supersets).
    """
    vectors = _validate_inputs(vectors, epsilon)
    n, m = vectors.shape
    if n == 0:
        return []
    candidates = _maximal_windows_1d(vectors[:, 0], epsilon)
    for attribute in range(1, m):
        windows = _maximal_windows_1d(vectors[:, attribute], epsilon)
        joined: set[frozenset[int]] = set()
        for candidate in candidates:
            for window in windows:
                intersection = candidate & window
                if intersection:
                    joined.add(intersection)
        candidates = list(joined)
    return candidates


def greedy_grouping(
    vectors: np.ndarray, epsilon: float, max_candidates: int = 2_000_000
) -> Grouping:
    """Appendix A's greedy set cover over the maximal groups.

    Args:
        max_candidates: safety valve — the join can blow up exponentially in
            the attribute count (the paper could not run Greedy on ACMPub
            within 10 hours); exceeding the cap raises
            :class:`ConfigurationError` instead of hanging.
    """
    vectors = _validate_inputs(vectors, epsilon)
    n = vectors.shape[0]
    if n == 0:
        return []
    candidates = [set(group) for group in maximal_groups(vectors, epsilon)]
    if len(candidates) > max_candidates:
        raise ConfigurationError(
            f"greedy grouping produced {len(candidates)} candidate groups "
            f"(cap {max_candidates}); use split_grouping for this input"
        )
    groups: Grouping = []
    covered: set[int] = set()
    while covered != set(range(n)):
        best = max(candidates, key=lambda group: (len(group), sorted(group)))
        if not best:
            raise GraphError("greedy grouping stalled; candidates lost coverage")
        chosen = sorted(best)
        groups.append(chosen)
        covered.update(best)
        candidates = [group - best for group in candidates]
        candidates = [group for group in candidates if group]
        if not candidates and covered != set(range(n)):
            raise GraphError("maximal-group join failed to cover all vertices")
    return sorted(groups)


GROUPING_ALGORITHMS = {
    "split": split_grouping,
    "greedy": greedy_grouping,
}
