"""Partial-order graph machinery: construction, grouping, coloring, paths."""

from .analysis import (
    OrderStatistics,
    count_order_violations,
    order_statistics,
    transitive_reduction,
)

from .cascading import CascadingRangeTree2D
from .coloring import Color, ColoringState
from .construction import (
    CONSTRUCTION_ALGORITHMS,
    blocked_dominance_lists,
    blocked_edges,
    brute_force_edges,
    index_edges,
    quicksort_edges,
    vectorized_edges,
)
from .dag import OrderedGraph, PairGraph
from .grouped_graph import GroupedGraph, build_graph
from .grouping import (
    GROUPING_ALGORITHMS,
    greedy_grouping,
    is_group,
    maximal_groups,
    split_grouping,
    validate_grouping,
)
from .matching import (
    IncrementalPathCover,
    greedy_path_cover,
    hopcroft_karp,
    minimum_path_cover,
    restricted_adjacency,
)
from .partial_order import (
    ancestor_mask,
    comparable,
    descendant_mask,
    dominates,
    incomparable_mask,
    strictly_dominates,
)
from .range_tree import RangeTree2D
from .range_tree_nd import RangeTreeND, index_edges_nd
from .reachability import (
    DEFAULT_REACHABILITY_BYTES,
    ReachabilityIndex,
    lowest_set_bit,
    pack_mask,
    unpack_mask,
)
from .topo import middle_layer, topological_layers

__all__ = [
    "CONSTRUCTION_ALGORITHMS",
    "CascadingRangeTree2D",
    "DEFAULT_REACHABILITY_BYTES",
    "IncrementalPathCover",
    "OrderStatistics",
    "RangeTreeND",
    "ReachabilityIndex",
    "count_order_violations",
    "index_edges_nd",
    "order_statistics",
    "transitive_reduction",
    "Color",
    "ColoringState",
    "GROUPING_ALGORITHMS",
    "GroupedGraph",
    "OrderedGraph",
    "PairGraph",
    "RangeTree2D",
    "ancestor_mask",
    "blocked_dominance_lists",
    "blocked_edges",
    "brute_force_edges",
    "build_graph",
    "comparable",
    "descendant_mask",
    "dominates",
    "greedy_grouping",
    "greedy_path_cover",
    "hopcroft_karp",
    "incomparable_mask",
    "index_edges",
    "is_group",
    "lowest_set_bit",
    "maximal_groups",
    "middle_layer",
    "minimum_path_cover",
    "pack_mask",
    "quicksort_edges",
    "restricted_adjacency",
    "split_grouping",
    "strictly_dominates",
    "topological_layers",
    "unpack_mask",
    "validate_grouping",
    "vectorized_edges",
]
