"""Structural analysis of partial-order graphs.

Diagnostics the paper reports or relies on implicitly:

* :func:`order_statistics` — size, edge count, comparability fraction
  (Appendix E.1.1 reports 70-84 % incomparability), depth (longest chain),
  and width (the Dilworth number ``B`` that bounds SinglePath's cost).
* :func:`transitive_reduction` — the Hasse diagram, i.e. the minimal edge
  set drawn in the paper's Fig. 1 ("if there is already a path between
  them, we do not show the direct edge").
* :func:`count_order_violations` — pairs whose ground truth contradicts the
  §5.1 monotonicity assumption; the paper argues "few pairs invalidate the
  partial order", and this makes the claim checkable on any dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.ground_truth import Pair
from ..exceptions import GraphError
from .dag import OrderedGraph, PairGraph
from .matching import minimum_path_cover, restricted_adjacency
from .topo import topological_layers


@dataclass(frozen=True)
class OrderStatistics:
    """Summary statistics of a dominance DAG."""

    num_vertices: int
    num_edges: int
    comparability: float  # fraction of vertex pairs that are comparable
    depth: int  # longest chain length (number of topological layers)
    width: int  # Dilworth number B = minimal path-cover size

    def __str__(self) -> str:
        return (
            f"|V|={self.num_vertices} |E|={self.num_edges} "
            f"comparable={self.comparability:.1%} depth={self.depth} "
            f"width={self.width}"
        )


def order_statistics(graph: OrderedGraph, compute_width: bool = True) -> OrderStatistics:
    """Compute the summary statistics of *graph*.

    Args:
        compute_width: the Dilworth number needs a maximum matching, which
            is the expensive part; pass False to skip it (reported as 0).
    """
    layers = topological_layers(graph)
    width = 0
    if compute_width and len(graph) > 0:
        active = np.ones(len(graph), dtype=bool)
        sub_adjacency, _ = restricted_adjacency(graph.adjacency(), active)
        width = len(minimum_path_cover(sub_adjacency))
    return OrderStatistics(
        num_vertices=len(graph),
        num_edges=graph.num_edges,
        comparability=graph.comparability_fraction(),
        depth=len(layers),
        width=width,
    )


def transitive_reduction(graph: OrderedGraph) -> list[tuple[int, int]]:
    """The Hasse diagram: edges (u, v) with no intermediate w, u > w > v.

    Because the dominance relation is transitively closed, an edge is
    *redundant* exactly when some child of ``u`` is an ancestor of ``v``;
    equivalently, ``v`` is kept iff no other child of ``u`` dominates it.
    """
    reduced: list[tuple[int, int]] = []
    adjacency = graph.adjacency()
    for u in range(len(graph)):
        children = adjacency[u]
        if len(children) == 0:
            continue
        child_set = set(int(c) for c in children)
        for v in children:
            v = int(v)
            # v is immediate unless some other child strictly dominates it.
            intermediates = graph.ancestor_mask(v)
            has_between = any(
                intermediates[c] for c in child_set if c != v
            )
            if not has_between:
                reduced.append((u, v))
    return reduced


def count_order_violations(
    graph: PairGraph, truth: dict[Pair, bool]
) -> tuple[int, int]:
    """Count monotonicity violations of the §5.1 assumption.

    A violation is an ordered vertex pair ``u > v`` where ``v`` is a true
    match but ``u`` is not: a GREEN answer on ``v`` would wrongly color
    ``u`` GREEN (and a RED ``u`` would wrongly color ``v``).

    Returns:
        ``(violations, comparable_pairs)`` so callers can report a rate.
    """
    if not isinstance(graph, PairGraph):
        raise GraphError("violation counting needs a pair-level graph")
    labels = np.array([truth[pair] for pair in graph.pairs])
    violations = 0
    comparable = 0
    adjacency = graph.adjacency()
    for u in range(len(graph)):
        children = adjacency[u]
        comparable += len(children)
        if not labels[u] and len(children):
            violations += int(np.count_nonzero(labels[children]))
    return violations, comparable
