"""Topological layering of the dominance DAG (paper §5.3.2).

The paper's Power selector repeatedly topologically sorts the *uncolored*
vertices into level sets ``L_1 .. L_|L|`` (Kahn peeling) and asks the middle
level.  Because the dominance relation is transitively closed, the Kahn
level of a vertex equals the length of its longest chain of strict
dominators, so we compute levels with a single longest-chain DP over any
linear extension — descending vector-sum order is one, since ``u > v``
implies ``sum(u) > sum(v)``.
"""

from __future__ import annotations

import numpy as np

from .dag import OrderedGraph, PairGraph
from ..exceptions import GraphError


def _linear_extension(graph: OrderedGraph) -> np.ndarray:
    """Vertex order compatible with dominance (dominators first)."""
    if isinstance(graph, PairGraph):
        keys = graph.vectors.sum(axis=1)
    else:
        # Grouped graphs expose lower bounds; their sums also decrease along
        # edges (g_i > g_j implies l_i >= u_j >= l_j with a strict component).
        keys = graph.lower_bounds.sum(axis=1)  # type: ignore[attr-defined]
    return np.argsort(-keys, kind="stable")


def topological_layers(
    graph: OrderedGraph, active: np.ndarray | None = None
) -> list[np.ndarray]:
    """Kahn level sets of the sub-DAG induced on *active* vertices.

    Args:
        graph: the ordered graph.
        active: boolean mask of vertices to layer; defaults to all.

    Returns:
        ``layers[0]`` holds the active vertices with no active ancestors
        (the paper's L_1), and so on.  Empty input yields an empty list.
    """
    n = len(graph)
    if active is None:
        active = np.ones(n, dtype=bool)
    if active.shape != (n,):
        raise GraphError(f"active mask has shape {active.shape}, expected ({n},)")
    order = _linear_extension(graph)
    depth = np.zeros(n, dtype=np.int64)
    adjacency = graph.adjacency()
    for vertex in order:
        vertex = int(vertex)
        if not active[vertex]:
            continue
        if depth[vertex] == 0:
            depth[vertex] = 1
        children = adjacency[vertex]
        if len(children) == 0:
            continue
        active_children = children[active[children]]
        candidate = depth[vertex] + 1
        np.maximum.at(depth, active_children, candidate)
    max_depth = int(depth.max()) if np.any(active) else 0
    return [
        np.flatnonzero(active & (depth == level)) for level in range(1, max_depth + 1)
    ]


def middle_layer(layers: list[np.ndarray]) -> np.ndarray:
    """The paper's question layer: ``L_{ceil(|L| / 2)}`` (1-based).

    Middle layers are where boundary vertices concentrate — top layers tend
    GREEN, bottom layers tend RED (§5.3.2).  The index matches the paper's
    walkthrough: with ``|L| = 5`` it asks L_3, and with the two remaining
    layers {g2}, {g8} it asks g2.
    """
    if not layers:
        raise GraphError("cannot pick the middle of zero layers")
    return layers[(len(layers) - 1) // 2]
