"""Graph model of the partial order (paper Definition 2).

:class:`OrderedGraph` is the abstract vertex-set-with-dominance interface
shared by the per-pair graph (:class:`PairGraph`) and the grouped graph
(:mod:`repro.graph.grouped_graph`).  Question-selection algorithms and the
coloring engine are written against this interface, so they run unchanged on
grouped and non-grouped graphs — exactly how the paper uses them.

Dominance queries are vectorised: instead of materialising the O(|V|^2) edge
set, ``descendants(v)`` broadcasts one comparison over the similarity matrix.
Because strict dominance is transitive, the resulting edge relation is its
own transitive closure; explicit adjacency lists (needed by the matching and
layering algorithms) are built lazily and cached — through the blocked
dominance kernel (:func:`repro.graph.construction.blocked_dominance_lists`)
when a subclass exposes its dominance operands, falling back to the
per-vertex reference loop otherwise.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

from ..data.ground_truth import Pair
from ..exceptions import GraphError
from .partial_order import ancestor_mask, descendant_mask


class OrderedGraph(ABC):
    """A DAG of vertices ordered by strict dominance.

    Subclasses provide the dominance masks and the mapping from vertices to
    record pairs; everything else (adjacency, edge counts) is shared.
    """

    def __init__(self, num_vertices: int) -> None:
        self._num_vertices = num_vertices
        self._adjacency: list[np.ndarray] | None = None
        self._reachability = None

    def __len__(self) -> int:
        return self._num_vertices

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self._num_vertices:
            raise GraphError(
                f"vertex {vertex} out of range [0, {self._num_vertices})"
            )

    @abstractmethod
    def descendant_mask(self, vertex: int) -> np.ndarray:
        """Boolean mask of vertices strictly dominated by *vertex*."""

    @abstractmethod
    def ancestor_mask(self, vertex: int) -> np.ndarray:
        """Boolean mask of vertices strictly dominating *vertex*."""

    @abstractmethod
    def member_pairs(self, vertex: int) -> tuple[Pair, ...]:
        """The record pairs represented by *vertex*."""

    @abstractmethod
    def representative_pair(self, vertex: int, rng: np.random.Generator) -> Pair:
        """The pair actually sent to the crowd when *vertex* is asked."""

    def _dominance_operands(self) -> tuple[np.ndarray, np.ndarray] | None:
        """``(dominant_rows, dominated_rows)`` for the blocked kernel.

        Vertex ``u`` dominates ``v`` iff ``dominant_rows[u] >=
        dominated_rows[v]`` component-wise with at least one strict ``>``.
        Subclasses that can express their order this way get blocked (tiled)
        adjacency construction for free; returning ``None`` keeps the
        per-vertex reference loop.
        """
        return None

    def descendants(self, vertex: int) -> np.ndarray:
        """Indices of vertices strictly dominated by *vertex*."""
        return np.flatnonzero(self.descendant_mask(vertex))

    def ancestors(self, vertex: int) -> np.ndarray:
        """Indices of vertices strictly dominating *vertex*."""
        return np.flatnonzero(self.ancestor_mask(vertex))

    def adjacency(self) -> list[np.ndarray]:
        """Children lists of the full dominance relation (cached).

        ``adjacency()[v]`` holds every vertex strictly dominated by ``v``.
        Since dominance is transitive this is both the edge set of Definition
        2 and its transitive closure.
        """
        if self._adjacency is None:
            operands = self._dominance_operands()
            if operands is not None:
                from .construction import blocked_dominance_lists

                self._adjacency = blocked_dominance_lists(*operands)
            else:
                self._adjacency = [
                    self.descendants(vertex) for vertex in range(self._num_vertices)
                ]
        return self._adjacency

    @property
    def reachability(self):
        """The cached :class:`~repro.graph.reachability.ReachabilityIndex`.

        ``None`` until :meth:`build_reachability` has run (and succeeded);
        consumers treat ``None`` as "use the reference mask broadcasts".
        """
        return self._reachability

    def build_reachability(self, max_bytes: int | None = None):
        """Build (once) and cache the packed-bitset reachability index.

        Args:
            max_bytes: byte budget for the index; ``None`` uses
                :data:`~repro.graph.reachability.DEFAULT_REACHABILITY_BYTES`.

        Returns:
            The index, or ``None`` when this graph does not expose dominance
            operands (the naive oracle twins stay on their pure reference
            paths) or the index would exceed the budget.
        """
        if self._reachability is not None:
            return self._reachability
        if self._dominance_operands() is None:
            return None
        from .reachability import DEFAULT_REACHABILITY_BYTES, ReachabilityIndex

        limit = DEFAULT_REACHABILITY_BYTES if max_bytes is None else max_bytes
        if ReachabilityIndex.estimated_bytes(self._num_vertices) > limit:
            return None
        self._reachability = ReachabilityIndex.build(self)
        return self._reachability

    @property
    def num_edges(self) -> int:
        """Number of dominance edges (full relation)."""
        return sum(len(children) for children in self.adjacency())

    def comparability_fraction(self) -> float:
        """Fraction of vertex pairs that are comparable under the order.

        The paper reports 70-84 % of pairs being *incomparable* on its
        datasets (Appendix E.1.1); this helper lets tests and benches check
        our synthetic data lands in the same regime.
        """
        n = self._num_vertices
        if n < 2:
            return 0.0
        return self.num_edges / (n * (n - 1) / 2)


class PairGraph(OrderedGraph):
    """The non-grouped graph: one vertex per similar record pair.

    Args:
        pairs: the candidate record pairs (vertex ``v`` is ``pairs[v]``).
        vectors: ``(len(pairs), m)`` similarity matrix, row-aligned.
    """

    def __init__(self, pairs: Sequence[Pair], vectors: np.ndarray) -> None:
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2:
            raise GraphError(f"vectors must be 2-D, got shape {vectors.shape}")
        if len(pairs) != vectors.shape[0]:
            raise GraphError(
                f"{len(pairs)} pairs but {vectors.shape[0]} similarity vectors"
            )
        super().__init__(num_vertices=len(pairs))
        self.pairs = list(pairs)
        self.vectors = vectors
        self._pair_index: dict[Pair, int] | None = None

    @property
    def num_attributes(self) -> int:
        return self.vectors.shape[1]

    def _dominance_operands(self) -> tuple[np.ndarray, np.ndarray]:
        return self.vectors, self.vectors

    def descendant_mask(self, vertex: int) -> np.ndarray:
        self._check_vertex(vertex)
        mask = descendant_mask(self.vectors, self.vectors[vertex])
        mask[vertex] = False
        return mask

    def ancestor_mask(self, vertex: int) -> np.ndarray:
        self._check_vertex(vertex)
        mask = ancestor_mask(self.vectors, self.vectors[vertex])
        mask[vertex] = False
        return mask

    def member_pairs(self, vertex: int) -> tuple[Pair, ...]:
        self._check_vertex(vertex)
        return (self.pairs[vertex],)

    def representative_pair(self, vertex: int, rng: np.random.Generator) -> Pair:
        self._check_vertex(vertex)
        return self.pairs[vertex]

    def vertex_of_pair(self, pair: Pair) -> int:
        """Index of the vertex holding *pair* (lazily-built dict lookup).

        Keeps the first occurrence on duplicate pairs, matching the linear
        ``list.index`` scan it replaces.
        """
        if self._pair_index is None:
            index: dict[Pair, int] = {}
            for vertex, known in enumerate(self.pairs):
                index.setdefault(known, vertex)
            self._pair_index = index
        try:
            return self._pair_index[pair]
        except KeyError:
            raise GraphError(f"pair {pair} is not a vertex of this graph") from None
