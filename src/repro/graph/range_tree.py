"""A two-dimensional range tree for dominance queries (paper §4.1).

The paper indexes the first two similarity attributes in a 2-D range search
tree: a first-level balanced tree over ``s^1`` whose nodes each carry a
second-level structure over ``s^2``.  Reporting the child set ``C(p)`` is a
"left-bottom" query: all points with ``x <= s^1_p`` and ``y <= s^2_p``.

This implementation keeps the textbook first level (a balanced binary tree
over the distinct x values, built bottom-up) and uses a sorted y-array as
each node's second-level structure — query-equivalent to a second-level tree
(binary search replaces tree descent) and simpler.  Queries decompose the x
constraint into O(log n) canonical nodes and binary-search each node's
y-array, giving ``O(log^2 n + k)`` per query; the paper's fractional
cascading would shave one log factor and is noted in DESIGN.md as an
optimisation we skip.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import GraphError


@dataclass
class _Node:
    """A first-level node covering a contiguous run of sorted x values."""

    lo: int  # inclusive index into the sorted distinct-x array
    hi: int  # inclusive
    max_x: float  # largest x under this node
    ys: list[float] = field(default_factory=list)  # sorted y values under node
    payload: list[int] = field(default_factory=list)  # point ids, y-sorted
    left: "_Node | None" = None
    right: "_Node | None" = None


class RangeTree2D:
    """Static 2-D range tree answering "all points with x <= qx and y <= qy".

    Args:
        points: ``(n, 2)`` array of (x, y) coordinates; point ``i`` is
            reported by its index.
    """

    def __init__(self, points: np.ndarray) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 2:
            raise GraphError(f"points must have shape (n, 2), got {points.shape}")
        self._n = points.shape[0]
        if self._n == 0:
            self._root = None
            self._xs: list[float] = []
            return
        xs = points[:, 0]
        self._xs = sorted(set(float(x) for x in xs))
        x_rank = {x: rank for rank, x in enumerate(self._xs)}
        # Bucket point ids by x rank, each bucket sorted by y.
        buckets: list[list[int]] = [[] for _ in self._xs]
        for index in range(self._n):
            buckets[x_rank[float(points[index, 0])]].append(index)
        for bucket in buckets:
            bucket.sort(key=lambda i: float(points[i, 1]))
        self._root = self._build(0, len(self._xs) - 1, buckets, points)

    def _build(
        self, lo: int, hi: int, buckets: list[list[int]], points: np.ndarray
    ) -> _Node:
        node = _Node(lo=lo, hi=hi, max_x=self._xs[hi])
        if lo == hi:
            node.payload = list(buckets[lo])
            node.ys = [float(points[i, 1]) for i in node.payload]
            return node
        mid = (lo + hi) // 2
        node.left = self._build(lo, mid, buckets, points)
        node.right = self._build(mid + 1, hi, buckets, points)
        # Merge the children's y-sorted payloads (classic bottom-up build).
        node.payload = self._merge(node.left, node.right)
        node.ys = [float(points[i, 1]) for i in node.payload]
        return node

    @staticmethod
    def _merge(left: _Node, right: _Node) -> list[int]:
        merged: list[int] = []
        i = j = 0
        lys, rys = left.ys, right.ys
        while i < len(lys) and j < len(rys):
            if lys[i] <= rys[j]:
                merged.append(left.payload[i])
                i += 1
            else:
                merged.append(right.payload[j])
                j += 1
        merged.extend(left.payload[i:])
        merged.extend(right.payload[j:])
        return merged

    def query_leq(self, qx: float, qy: float) -> list[int]:
        """Indices of all points with ``x <= qx`` and ``y <= qy``."""
        if self._root is None:
            return []
        # Canonical decomposition of the x constraint.
        result: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if self._xs[node.lo] > qx:
                continue  # entire subtree exceeds qx
            if node.max_x <= qx:
                # Whole subtree qualifies on x; filter on y by binary search.
                cutoff = bisect_right(node.ys, qy)
                result.extend(node.payload[:cutoff])
                continue
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return result

    def __len__(self) -> int:
        return self._n
