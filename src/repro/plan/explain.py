"""Plan rendering and predicted-vs-observed cost reporting.

:func:`render_plan` draws the plan tree — one line per knob with the
predicted cost of the winner and every rejected alternative, so a reader
can audit each decision.  After a traced run, :func:`prediction_report`
joins the plan's per-stage predictions against the observed wall seconds
in the obs span tree (:meth:`repro.obs.trace.Tracer.export`) and reports
per-stage prediction error — the feedback loop's raw material
(:mod:`repro.plan.feedback`).
"""

from __future__ import annotations

from typing import Any

from ..obs.trace import walk
from .planner import Plan

#: Cost-model stage -> the obs span whose wall seconds observe it.
STAGE_SPANS = {
    "join_naive": "resolve.join",
    "join_prefix": "resolve.join",
    "join_sparse": "resolve.join",
    "vectorize_batch": "resolve.vectorize",
    "vectorize_scalar": "resolve.vectorize",
    "construct": "resolve.construct",
    "selection_scratch": "selection.run",
    "selection_incremental": "selection.run",
}


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def render_plan(plan: Plan) -> str:
    """The plan as an auditable text tree."""
    stats = plan.stats
    profile_kind = "calibrated" if plan.calibrated else "defaults"
    lines = [
        f"plan for {stats.rows} rows x {stats.attrs} attrs "
        f"(~{stats.est_pairs} est. pairs, ~{stats.avg_tokens:.1f} tokens/record)"
        f"  [profile: {profile_kind}]"
    ]
    for index, decision in enumerate(plan.decisions):
        last = index == len(plan.decisions) - 1
        branch = "└─" if last else "├─"
        stem = "   " if last else "│  "
        cost = (
            f"  predicted {_fmt_seconds(decision.prediction.seconds)}"
            if decision.prediction is not None
            else ""
        )
        lines.append(f"{branch} {decision.knob} = {decision.chosen}{cost}")
        if decision.alternatives:
            rejected = ", ".join(
                f"{value} {_fmt_seconds(seconds)}"
                for value, seconds in decision.alternatives
            )
            lines.append(f"{stem}   rejected: {rejected}")
        if decision.reason:
            lines.append(f"{stem}   why: {decision.reason}")
    lines.append(
        f"predicted planner-visible total: "
        f"{_fmt_seconds(plan.predicted_total_seconds())}"
    )
    return "\n".join(lines)


def observed_stage_seconds(spans: list[dict]) -> dict[str, float]:
    """Observed wall seconds per span name, summed over occurrences."""
    observed: dict[str, float] = {}
    for _, span in walk(spans):
        name = span.get("name")
        seconds = float(span.get("wall_seconds", 0.0))
        observed[name] = observed.get(name, 0.0) + seconds
    return observed


def prediction_report(plan: Plan, spans: list[dict]) -> list[dict[str, Any]]:
    """Per-stage predicted vs observed costs for a traced run.

    Returns one row per plan decision whose stage has an observing span
    in *spans*: stage, span name, predicted and observed seconds, and
    the signed relative error ``(predicted - observed) / observed``
    (``None`` when the observation is ~0).
    """
    observed = observed_stage_seconds(spans)
    rows: list[dict[str, Any]] = []
    for decision in plan.decisions:
        prediction = decision.prediction
        if prediction is None:
            continue
        span_name = STAGE_SPANS.get(prediction.stage)
        if span_name is None or span_name not in observed:
            continue
        actual = observed[span_name]
        error = (
            (prediction.seconds - actual) / actual if actual > 1e-9 else None
        )
        rows.append(
            {
                "knob": decision.knob,
                "stage": prediction.stage,
                "span": span_name,
                "predicted_seconds": prediction.seconds,
                "observed_seconds": actual,
                "relative_error": error,
            }
        )
    return rows


def render_prediction_report(plan: Plan, spans: list[dict]) -> str:
    """The prediction report as an aligned text table."""
    rows = prediction_report(plan, spans)
    if not rows:
        return "no observed spans matched the plan's stages (was tracing on?)"
    header = f"{'stage':<24} {'span':<18} {'predicted':>10} {'observed':>10} {'error':>8}"
    lines = [header, "-" * len(header)]
    for row in rows:
        error = row["relative_error"]
        error_text = f"{error * 100:+.0f}%" if error is not None else "n/a"
        lines.append(
            f"{row['stage']:<24} {row['span']:<18} "
            f"{_fmt_seconds(row['predicted_seconds']):>10} "
            f"{_fmt_seconds(row['observed_seconds']):>10} "
            f"{error_text:>8}"
        )
    return "\n".join(lines)


__all__ = [
    "STAGE_SPANS",
    "observed_stage_seconds",
    "prediction_report",
    "render_plan",
    "render_prediction_report",
]
