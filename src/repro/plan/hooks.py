"""Best-effort planner hooks for call sites that cannot fail.

Two spots in the pipeline want calibrated advice but must keep working
(with their documented static heuristics) when no profile exists:

* ``method="auto"`` in :func:`repro.similarity.join.similar_pairs` —
  :func:`planned_join_method` replaces the static
  ``AUTO_PREFIX_CROSSOVER`` crossover when a **calibrated** profile is
  on disk;
* the serve layer's admission pricing —
  :func:`predicted_batch_seconds` seeds the EWMA with the profile's
  prediction instead of the blind default.

Both return ``None`` — never raise — when the default-path profile is
missing, uncalibrated, or unreadable: a stale cache file must not be
able to break resolution.  (Explicit profile paths go through
``PowerConfig(plan=...)`` instead, which *does* fail loudly.)

The profile is cached per ``(path, mtime)`` so hot paths pay one
``stat`` per call, not a JSON parse.
"""

from __future__ import annotations

from ..exceptions import DataError
from .calibrate import CalibrationProfile, default_profile_path, load_profile
from .model import UNIT_FORMULAS

_cache: tuple[str, float, CalibrationProfile] | None = None


def calibrated_profile() -> CalibrationProfile | None:
    """The default-path profile if present, calibrated, and readable."""
    global _cache
    path = default_profile_path()
    try:
        mtime = path.stat().st_mtime
    except OSError:
        return None
    key = str(path)
    if _cache is not None and _cache[0] == key and _cache[1] == mtime:
        profile = _cache[2]
    else:
        try:
            profile = load_profile(path)
        except DataError:
            return None
        _cache = (key, mtime, profile)
    return profile if profile.calibrated else None


def clear_cache() -> None:
    """Drop the cached profile (tests that rewrite the file mid-process)."""
    global _cache
    _cache = None


def planned_join_method(rows: int, avg_tokens: float) -> str | None:
    """Calibrated naive-vs-prefix choice for ``method="auto"``.

    Only the two range-capable joins are candidates — ``"auto"`` must
    resolve identically for the serial and sharded paths, and the sparse
    join has no range form.  Returns ``None`` (use the static crossover)
    without a calibrated profile.
    """
    profile = calibrated_profile()
    if profile is None:
        return None
    naive = profile.predict(
        "join_naive", UNIT_FORMULAS["join_naive"](rows, avg_tokens)
    )
    prefix = profile.predict(
        "join_prefix", UNIT_FORMULAS["join_prefix"](rows, avg_tokens)
    )
    return "naive" if naive <= prefix else "prefix"


def predicted_batch_seconds(
    batch_size: int, avg_tokens: float = 8.0
) -> float | None:
    """Predicted seconds to ingest one *batch_size*-row streaming batch.

    Prices the token-index extend — the per-batch cost the serve layer's
    admission EWMA tracks.  Returns ``None`` without a calibrated
    profile (the EWMA then starts from its documented static default).
    """
    profile = calibrated_profile()
    if profile is None:
        return None
    units = UNIT_FORMULAS["stream_extend"](batch_size, avg_tokens)
    return profile.predict("stream_extend", units)


def planned_stream_batch(avg_tokens: float = 8.0) -> int:
    """Planner-recommended streaming batch size (always returns a value).

    Uses the calibrated host profile when one exists, the documented
    default coefficients otherwise — batch sizing only shifts checkpoint
    cadence, so the defaults are an acceptable fallback (unlike the join
    hook, which defers to the static crossover instead).
    """
    from .calibrate import default_profile
    from .planner import TableStats, choose_stream_batch

    profile = calibrated_profile() or default_profile()
    stats = TableStats(rows=0, attrs=0, avg_tokens=avg_tokens, est_pairs=0)
    return int(choose_stream_batch(stats, profile).chosen)


__all__ = [
    "calibrated_profile",
    "clear_cache",
    "planned_join_method",
    "planned_stream_batch",
    "predicted_batch_seconds",
]
