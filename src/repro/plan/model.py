"""Per-stage analytic cost models for the pipeline planner.

Every pure-performance decision the planner makes reduces to "which of
these interchangeable implementations finishes first on *this* host for
*this* input?"  The models here answer that with two-coefficient affine
predictors over closed-form work units:

    seconds(stage, units) = c0 + c1 * units

``c0`` is the fixed setup cost of one invocation (index allocation, numpy
dispatch, process-pool bookkeeping) and ``c1`` the marginal cost per work
unit (a token comparison, a pair-attribute similarity, a vertex-pair
dominance test).  The *shape* of each stage's work-unit formula is fixed
analytically below; only the coefficients vary by host and come from
:mod:`repro.plan.calibrate` (measured) or the documented uncalibrated
defaults.

Two laws are load-bearing and enforced by construction (the hypothesis
suite in ``tests/test_plan_model.py`` pins them):

* **non-negativity** — a predicted cost is never negative, so a planner
  comparison can never be won by an impossible negative runtime;
* **monotonicity** — every work-unit formula is non-decreasing in rows,
  tokens, pairs, and shards, and ``predict`` is non-decreasing in units,
  so "more data can only cost more" holds for every stage.

Coefficients are clamped to ``>= 0`` when a model is built, which is what
makes both laws theorems instead of hopes (least-squares fits on noisy
micro-benchmarks can produce slightly negative intercepts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import ConfigurationError

#: Every stage the planner can price.  The ``join_*`` stages are the three
#: interchangeable candidate joins; ``vectorize_*`` the two similarity
#: substrates; ``selection_*`` the two selection-loop engines;
#: ``construct`` the dominance-graph build; ``shard_dispatch`` the
#: per-task overhead of the shard executor; ``stream_extend`` the token
#: index's incremental extension.
STAGES = (
    "join_naive",
    "join_prefix",
    "join_sparse",
    "vectorize_batch",
    "vectorize_scalar",
    "construct",
    "selection_scratch",
    "selection_incremental",
    "shard_dispatch",
    "stream_extend",
)


@dataclass(frozen=True)
class CostModel:
    """One stage's affine cost predictor: ``c0 + c1 * units`` seconds.

    Coefficients are clamped non-negative at construction, which makes
    :meth:`predict` non-negative and monotone non-decreasing in *units*
    by construction.
    """

    stage: str
    c0: float
    c1: float

    def __post_init__(self) -> None:
        if self.stage not in STAGES:
            raise ConfigurationError(
                f"unknown cost-model stage {self.stage!r}; known: {STAGES}"
            )
        object.__setattr__(self, "c0", max(0.0, float(self.c0)))
        object.__setattr__(self, "c1", max(0.0, float(self.c1)))

    def predict(self, units: float) -> float:
        """Predicted wall seconds for *units* work units (>= 0, monotone)."""
        return self.c0 + self.c1 * max(0.0, float(units))


@dataclass(frozen=True)
class StagePrediction:
    """One priced stage: the work units and the predicted seconds."""

    stage: str
    units: float
    seconds: float


# --------------------------------------------------------------------------- #
# Work-unit formulas (the analytic shapes; monotone by inspection)
# --------------------------------------------------------------------------- #


def join_naive_units(rows: int, avg_tokens: float) -> float:
    """Quadratic scan: every pair pays one token-set Jaccard."""
    rows = max(0, int(rows))
    return rows * (rows - 1) / 2.0 * max(1.0, avg_tokens)


def join_prefix_units(rows: int, avg_tokens: float) -> float:
    """Prefix-filtered join: index build + probes are ~linear in tokens.

    The verification work on colliding candidates is absorbed into the
    calibrated ``c1`` (the micro-benchmark runs on realistic collision
    rates); the model intentionally stays linear so the naive/prefix
    crossover exists and is a single root.
    """
    rows = max(0, int(rows))
    tokens = rows * max(1.0, avg_tokens)
    return tokens * max(1.0, math.log2(rows + 2))


def join_sparse_units(rows: int, avg_tokens: float) -> float:
    """Inverted-list numpy join: matrix assembly is linear in tokens."""
    return max(0, int(rows)) * max(1.0, avg_tokens)


def vectorize_units(pairs: int, attrs: int) -> float:
    """Similarity vectors: one unit per (pair, attribute) cell."""
    return max(0, int(pairs)) * max(1, int(attrs))


def construct_units(vertices: int) -> float:
    """Dominance construction: all-pairs vector comparison over vertices."""
    vertices = max(0, int(vertices))
    return float(vertices) * vertices


def selection_scratch_units(vertices: int) -> float:
    """Per-round scratch rebuilds: ~rounds x per-round cover, ~O(v^2)."""
    vertices = max(0, int(vertices))
    return float(vertices) * vertices


def selection_incremental_units(vertices: int) -> float:
    """Warm-started covers: measured to grow ~v^1.5 on the bench grid."""
    vertices = max(0, int(vertices))
    return float(vertices) * math.sqrt(vertices)


def shard_dispatch_units(shards: int) -> float:
    """Executor overhead: one unit per dispatched task."""
    return float(max(0, int(shards)))


def stream_extend_units(new_rows: int, avg_tokens: float) -> float:
    """Token-index extension: linear in the new rows' tokens."""
    return max(0, int(new_rows)) * max(1.0, avg_tokens)


#: Stage name -> the exact work-unit formula the planner must use, so the
#: calibration fit and the plan-time prediction can never disagree on
#: shape.  (Signatures differ; the planner passes the right operands.)
UNIT_FORMULAS = {
    "join_naive": join_naive_units,
    "join_prefix": join_prefix_units,
    "join_sparse": join_sparse_units,
    "vectorize_batch": vectorize_units,
    "vectorize_scalar": vectorize_units,
    "construct": construct_units,
    "selection_scratch": selection_scratch_units,
    "selection_incremental": selection_incremental_units,
    "shard_dispatch": shard_dispatch_units,
    "stream_extend": stream_extend_units,
}


def fit_affine(samples: list[tuple[float, float]]) -> tuple[float, float]:
    """Least-squares ``(c0, c1)`` for ``seconds ~ c0 + c1 * units``.

    Coefficients are clamped to ``>= 0`` (see module docstring).  With a
    single sample the intercept is attributed to zero and the slope to
    the whole measurement — the conservative reading for a planner that
    must stay monotone.
    """
    if not samples:
        raise ConfigurationError("fit_affine needs at least one sample")
    if len(samples) == 1:
        units, seconds = samples[0]
        return 0.0, max(0.0, seconds / units if units > 0 else 0.0)
    import numpy as np

    units = np.array([u for u, _ in samples], dtype=np.float64)
    seconds = np.array([s for _, s in samples], dtype=np.float64)
    design = np.stack([np.ones_like(units), units], axis=1)
    (c0, c1), *_ = np.linalg.lstsq(design, seconds, rcond=None)
    return max(0.0, float(c0)), max(0.0, float(c1))


__all__ = [
    "STAGES",
    "UNIT_FORMULAS",
    "CostModel",
    "StagePrediction",
    "construct_units",
    "fit_affine",
    "join_naive_units",
    "join_prefix_units",
    "join_sparse_units",
    "selection_incremental_units",
    "selection_scratch_units",
    "shard_dispatch_units",
    "stream_extend_units",
    "vectorize_units",
]
