"""Fold observed run costs back into the calibration profile.

Micro-benchmarks are synthetic; production tables have their own token
distributions and collision rates.  :func:`fold_observations` closes the
loop: after a traced run, each stage's observed wall seconds nudge that
stage's coefficients toward reality.  Updates are **bounded** — one fold
can scale a coefficient by at most :data:`MAX_FOLD_FACTOR` and moves
only *learning_rate* of the way there — so a single anomalous run
(page cache cold, noisy neighbor) cannot wreck a good profile, and
repeated folds converge geometrically instead of oscillating.
"""

from __future__ import annotations

from .calibrate import CalibrationProfile
from .explain import prediction_report
from .planner import Plan

#: The most a single fold may scale any coefficient (up or down).
MAX_FOLD_FACTOR = 4.0

#: Fraction of the (bounded) correction applied per fold.
DEFAULT_LEARNING_RATE = 0.5


def fold_observations(
    profile: CalibrationProfile,
    plan: Plan,
    spans: list[dict],
    learning_rate: float = DEFAULT_LEARNING_RATE,
) -> CalibrationProfile:
    """A new profile nudged toward the run's observed stage costs.

    For every plan decision whose stage was observed in *spans*, the
    stage's ``c0``/``c1`` are scaled by
    ``1 + learning_rate * (clamp(observed/predicted) - 1)`` where the
    ratio is clamped to ``[1/MAX_FOLD_FACTOR, MAX_FOLD_FACTOR]``.
    Stages without observations keep their coefficients.  The input
    profile is never mutated.
    """
    if not 0.0 < learning_rate <= 1.0:
        from ..exceptions import ConfigurationError

        raise ConfigurationError(
            f"learning_rate must be in (0, 1], got {learning_rate}"
        )
    coefficients = {
        stage: dict(coeffs) for stage, coeffs in profile.coefficients.items()
    }
    folded_stages: list[str] = []
    for row in prediction_report(plan, spans):
        predicted = row["predicted_seconds"]
        observed = row["observed_seconds"]
        if predicted <= 1e-12 or observed <= 1e-12:
            continue
        ratio = observed / predicted
        ratio = max(1.0 / MAX_FOLD_FACTOR, min(MAX_FOLD_FACTOR, ratio))
        factor = 1.0 + learning_rate * (ratio - 1.0)
        stage = row["stage"]
        coefficients[stage]["c0"] *= factor
        coefficients[stage]["c1"] *= factor
        folded_stages.append(stage)
    meta = dict(profile.meta)
    meta["feedback_folds"] = int(meta.get("feedback_folds", 0)) + 1
    meta["last_fold_stages"] = sorted(set(folded_stages))
    return CalibrationProfile(
        coefficients=coefficients,
        host=profile.host,
        calibrated=profile.calibrated,
        meta=meta,
    )


__all__ = ["DEFAULT_LEARNING_RATE", "MAX_FOLD_FACTOR", "fold_observations"]
