"""Host calibration: seeded micro-benchmarks -> a versioned cost profile.

A cost model is only as good as its coefficients, and coefficients are a
property of the *host* (interpreter, numpy build, cache sizes, core
count).  :func:`calibrate` measures each stage of
:data:`repro.plan.model.STAGES` on small seeded synthetic workloads at
two sizes, fits the affine model with
:func:`repro.plan.model.fit_affine`, and returns a
:class:`CalibrationProfile` — which :meth:`CalibrationProfile.save`
writes as canonical (sorted-key) JSON with an explicit schema
``version: 1``.  Unknown versions and structurally corrupt files are
rejected with :class:`~repro.exceptions.DataError`, mirroring the
snapshot discipline of :mod:`repro.stream.snapshot`.

When no calibrated profile exists the planner falls back to
:func:`default_profile` — documented order-of-magnitude CPython/numpy
coefficients that keep every decision sane (batch vectorization wins,
the naive/prefix join crossover exists) without claiming host fidelity;
``profile.calibrated`` records which kind a plan was built from.

The default on-disk location is ``~/.cache/repro/plan_profile.json``,
overridable with the ``REPRO_PLAN_PROFILE`` environment variable (read
at call time, so tests can point it at a temporary file).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..exceptions import ConfigurationError, DataError
from .model import STAGES, CostModel, fit_affine

#: Schema version of the profile file; bump on incompatible change.
PROFILE_VERSION = 1

#: Environment variable overriding the default profile path.
PROFILE_ENV = "REPRO_PLAN_PROFILE"

#: Documented uncalibrated fallback coefficients (seconds).  Order of
#: magnitude for CPython 3.10+ with numpy on one commodity core; they are
#: deliberately conservative and only need to rank alternatives sanely —
#: run ``repro plan --calibrate`` for host-faithful numbers.
DEFAULT_COEFFICIENTS: dict[str, dict[str, float]] = {
    "join_naive": {"c0": 0.0, "c1": 1.0e-7},
    "join_prefix": {"c0": 5.0e-4, "c1": 4.0e-7},
    "join_sparse": {"c0": 2.0e-3, "c1": 3.0e-7},
    "vectorize_batch": {"c0": 1.0e-3, "c1": 3.0e-8},
    "vectorize_scalar": {"c0": 0.0, "c1": 4.0e-6},
    "construct": {"c0": 1.0e-4, "c1": 2.0e-9},
    "selection_scratch": {"c0": 0.0, "c1": 2.0e-7},
    "selection_incremental": {"c0": 0.0, "c1": 1.0e-6},
    "shard_dispatch": {"c0": 5.0e-4, "c1": 2.0e-4},
    "stream_extend": {"c0": 1.0e-4, "c1": 3.0e-7},
}


def default_profile_path() -> Path:
    """Where the calibrated profile lives (env override wins)."""
    override = os.environ.get(PROFILE_ENV)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro" / "plan_profile.json"


def host_fingerprint() -> dict[str, Any]:
    """Enough host identity to notice a profile moved machines."""
    import platform

    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


@dataclass(frozen=True)
class CalibrationProfile:
    """A versioned set of per-stage cost coefficients for one host.

    Attributes:
        coefficients: ``stage -> {"c0": float, "c1": float}`` for every
            stage in :data:`~repro.plan.model.STAGES`.
        host: the fingerprint of the machine that produced the numbers
            (``None`` for the uncalibrated defaults).
        calibrated: whether the coefficients were measured (vs defaults).
        meta: free-form provenance (seed, repeats, feedback fold count).
    """

    coefficients: dict[str, dict[str, float]]
    host: dict[str, Any] | None = None
    calibrated: bool = False
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        missing = [stage for stage in STAGES if stage not in self.coefficients]
        if missing:
            raise DataError(f"profile is missing stages: {missing}")
        for stage, coeffs in self.coefficients.items():
            if stage not in STAGES:
                raise DataError(f"profile names unknown stage {stage!r}")
            if not isinstance(coeffs, dict) or not {"c0", "c1"} <= set(coeffs):
                raise DataError(
                    f"stage {stage!r} coefficients must be a dict with "
                    f"'c0' and 'c1', got {coeffs!r}"
                )

    def model(self, stage: str) -> CostModel:
        coeffs = self.coefficients[stage]
        return CostModel(stage, coeffs["c0"], coeffs["c1"])

    def predict(self, stage: str, units: float) -> float:
        """Predicted seconds for *units* work units of *stage*."""
        return self.model(stage).predict(units)

    # -------------------------------------------------------------- #
    # Codec
    # -------------------------------------------------------------- #

    def to_payload(self) -> dict[str, Any]:
        return {
            "version": PROFILE_VERSION,
            "calibrated": bool(self.calibrated),
            "host": self.host,
            "coefficients": {
                stage: {
                    "c0": float(coeffs["c0"]),
                    "c1": float(coeffs["c1"]),
                }
                for stage, coeffs in sorted(self.coefficients.items())
            },
            "meta": dict(self.meta),
        }

    @classmethod
    def from_payload(cls, payload: Any) -> "CalibrationProfile":
        if not isinstance(payload, dict):
            raise DataError(
                f"profile payload must be an object, got {type(payload).__name__}"
            )
        version = payload.get("version")
        if version != PROFILE_VERSION:
            raise DataError(
                f"unknown plan-profile version {version!r} "
                f"(this build reads version {PROFILE_VERSION})"
            )
        coefficients = payload.get("coefficients")
        if not isinstance(coefficients, dict):
            raise DataError("profile 'coefficients' must be an object")
        return cls(
            coefficients=coefficients,
            host=payload.get("host"),
            calibrated=bool(payload.get("calibrated", False)),
            meta=dict(payload.get("meta", {})),
        )

    def save(self, path: str | Path) -> Path:
        """Write the profile as canonical (sorted-key) JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_payload(), sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
        return path


def load_profile(path: str | Path) -> CalibrationProfile:
    """Read a profile file; corrupt JSON or bad schema raise DataError."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise DataError(f"cannot read plan profile {path}: {error}") from None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise DataError(
            f"plan profile {path} is not valid JSON: {error}"
        ) from None
    return CalibrationProfile.from_payload(payload)


def default_profile() -> CalibrationProfile:
    """The documented uncalibrated fallback profile."""
    return CalibrationProfile(
        coefficients={
            stage: dict(coeffs) for stage, coeffs in DEFAULT_COEFFICIENTS.items()
        },
        host=None,
        calibrated=False,
        meta={"source": "defaults"},
    )


def resolve_profile(spec: str) -> CalibrationProfile:
    """The profile for a ``PowerConfig.plan`` spec.

    ``"auto"`` loads the default-path profile when one exists and falls
    back to :func:`default_profile`; any other string is a path and must
    load (so a typo'd path fails loudly instead of silently planning from
    defaults).
    """
    if spec == "off":
        raise ConfigurationError("plan='off' has no profile to resolve")
    if spec == "auto":
        path = default_profile_path()
        if path.is_file():
            return load_profile(path)
        return default_profile()
    return load_profile(spec)


# --------------------------------------------------------------------------- #
# Micro-benchmarks
# --------------------------------------------------------------------------- #


def _synthetic_texts(rng, rows: int, low: int = 4, high: int = 12) -> list[str]:
    """Deterministic record texts over a 400-word synthetic vocabulary."""
    vocabulary = [f"tok{index:03d}" for index in range(400)]
    texts = []
    for _ in range(rows):
        count = int(rng.integers(low, high + 1))
        words = rng.choice(len(vocabulary), size=count, replace=False)
        texts.append(" ".join(vocabulary[w] for w in sorted(words)))
    return texts


def _time_best(fn, repeats: int) -> float:
    fn()  # untimed warmup: first-call numpy/import costs are not marginal costs
    best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _noop_units(task: int) -> int:
    """Module-level no-op task fn (picklable for the shard executor)."""
    return task


def calibrate(
    seed: int = 0, repeats: int = 3, fast: bool = False
) -> CalibrationProfile:
    """Measure every stage on this host and fit the affine models.

    Args:
        seed: drives every synthetic workload (results are deterministic
            up to timer noise).
        repeats: best-of-N timing per (stage, size) point.
        fast: shrink workloads for a <10s smoke calibration; the fitted
            coefficients are noisier but structurally valid.
    """
    import numpy as np

    from ..crowd.platform import PerfectCrowd
    from ..data.table import Table
    from ..graph.construction import blocked_dominance_lists
    from ..graph.dag import PairGraph
    from ..selection import SELECTORS
    from ..shard.executor import ShardExecutor
    from ..similarity.batch import (
        TokenIndex,
        batch_similarity_matrix,
        sparse_jaccard_join,
    )
    from ..similarity.join import _naive_join, _prefix_join
    from ..similarity.tokenize import word_tokens
    from ..similarity.vectors import SimilarityConfig, similarity_matrix
    from ..verify.oracles import monotone_truth
    from .model import UNIT_FORMULAS

    rng = np.random.default_rng(seed)
    samples: dict[str, list[tuple[float, float]]] = {stage: [] for stage in STAGES}

    def add(stage: str, units: float, fn) -> None:
        samples[stage].append((units, _time_best(fn, repeats)))

    # Candidate joins: token sets at two sizes.
    join_sizes = (80, 160) if fast else (150, 400)
    threshold = 0.2
    for rows in join_sizes:
        texts = _synthetic_texts(rng, rows)
        token_sets = [word_tokens(text) for text in texts]
        avg_tokens = sum(len(t) for t in token_sets) / max(1, len(token_sets))
        add(
            "join_naive",
            UNIT_FORMULAS["join_naive"](rows, avg_tokens),
            lambda ts=token_sets: _naive_join(ts, threshold),
        )
        add(
            "join_prefix",
            UNIT_FORMULAS["join_prefix"](rows, avg_tokens),
            lambda ts=token_sets: _prefix_join(ts, threshold),
        )
        add(
            "join_sparse",
            UNIT_FORMULAS["join_sparse"](rows, avg_tokens),
            lambda ts=token_sets: sparse_jaccard_join(ts, threshold),
        )
        # Token-index extension over the same texts: extend the second
        # half onto an index of the first half.
        half = rows // 2
        add(
            "stream_extend",
            UNIT_FORMULAS["stream_extend"](rows - half, avg_tokens),
            lambda t=texts, h=half: TokenIndex(t[:h], word_tokens).extend(t[h:]),
        )

    # Similarity vectors: batch substrate vs scalar reference.
    vector_sizes = (120, 300) if fast else (250, 700)
    attributes = ("a", "b", "c", "d")
    config = SimilarityConfig.uniform(len(attributes), function="bigram")
    for pair_count in vector_sizes:
        rows = pair_count + 1
        texts = _synthetic_texts(rng, rows, low=2, high=4)
        table = Table.from_rows(
            name="calibrate",
            attributes=attributes,
            rows=[
                tuple(f"{text} {column}" for column in attributes)
                for text in texts
            ],
        )
        pairs = [(index, index + 1) for index in range(pair_count)]
        units = UNIT_FORMULAS["vectorize_batch"](len(pairs), len(attributes))
        add(
            "vectorize_batch",
            units,
            lambda t=table, p=pairs: batch_similarity_matrix(t, p, config),
        )
        add(
            "vectorize_scalar",
            units,
            lambda t=table, p=pairs: similarity_matrix(t, p, config),
        )

    # Dominance construction over quantized random vectors.
    construct_sizes = (150, 400) if fast else (300, 900)
    for vertices in construct_sizes:
        vectors = rng.random((vertices, 4)).round(1)
        add(
            "construct",
            UNIT_FORMULAS["construct"](vertices),
            lambda v=vectors: blocked_dominance_lists(v, v),
        )

    # Selection loop: the power selector through both engines on a
    # monotone-truth perfect crowd (deterministic transcripts).
    selection_sizes = (24, 48) if fast else (40, 90)
    for vertices in selection_sizes:
        vectors = rng.random((vertices, 4)).round(1)
        pairs = [(2 * k, 2 * k + 1) for k in range(vertices)]
        vertex_truth = monotone_truth(vectors)
        truth = {pair: vertex_truth[v] for v, pair in enumerate(pairs)}

        def run_selection(incremental: bool, v=vectors, p=pairs, t=truth):
            graph = PairGraph(p, v)
            session = PerfectCrowd(t).session()
            SELECTORS["power"](seed=seed, incremental=incremental).run(
                graph, session
            )

        add(
            "selection_incremental",
            UNIT_FORMULAS["selection_incremental"](vertices),
            lambda v=vertices: run_selection(True),
        )
        add(
            "selection_scratch",
            UNIT_FORMULAS["selection_scratch"](vertices),
            lambda v=vertices: run_selection(False),
        )

    # Shard executor dispatch overhead (inline mode: pure bookkeeping).
    for tasks in (8, 32):
        add(
            "shard_dispatch",
            UNIT_FORMULAS["shard_dispatch"](tasks),
            lambda n=tasks: ShardExecutor(workers=0).run(
                _noop_units, list(range(n))
            ),
        )

    coefficients = {}
    for stage, points in samples.items():
        c0, c1 = fit_affine(points)
        coefficients[stage] = {"c0": c0, "c1": c1}
    return CalibrationProfile(
        coefficients=coefficients,
        host=host_fingerprint(),
        calibrated=True,
        meta={"seed": seed, "repeats": repeats, "fast": bool(fast)},
    )


__all__ = [
    "DEFAULT_COEFFICIENTS",
    "PROFILE_ENV",
    "PROFILE_VERSION",
    "CalibrationProfile",
    "calibrate",
    "default_profile",
    "default_profile_path",
    "host_fingerprint",
    "load_profile",
    "resolve_profile",
]
