"""The cost-based planner: table stats + profile -> an immutable Plan.

The planner owns every **pure-performance** knob of the pipeline — the
settings where all alternatives produce bit-identical results and only
wall-clock differs.  For each knob it prices every alternative with the
calibrated cost models, keeps the cheapest, and records the rejected
alternatives with their predicted costs so ``repro plan --explain`` can
show *why* a choice was made.

The transparency contract (enforced by ``check_plan_transparency`` in
:mod:`repro.verify.oracles`): :func:`apply_plan` may only rewrite the
knobs in :data:`PLANNABLE_KNOBS`.  Results, transcripts, and billing of
a planned run are bit-identical to the static defaults — the planner
can make a run slower or faster, never different.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..exceptions import ConfigurationError
from .calibrate import CalibrationProfile
from .model import UNIT_FORMULAS, StagePrediction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.config import PowerConfig
    from ..data.table import Table

#: The only config fields :func:`apply_plan` is allowed to rewrite.
#: Everything else — thresholds, epsilon, selector, assignments, seeds —
#: is semantic and off-limits; touching one is the ``plan-changes-results``
#: mutant the verification battery exists to catch.
PLANNABLE_KNOBS = (
    "join_method",
    "use_batch_similarity",
    "use_incremental_selection",
    "reachability_index",
    "shards",
    "stream_batch_size",
)

#: Knobs that live outside :class:`~repro.core.config.PowerConfig` (they
#: parameterize the streaming/serve layers instead) — applied by their
#: consumers, skipped by :func:`apply_plan`.
_NON_CONFIG_KNOBS = ("stream_batch_size",)

#: Bounds for the planned streaming batch size.
MIN_STREAM_BATCH = 50
MAX_STREAM_BATCH = 2000

#: Target per-batch seconds the stream batch sizing aims for: large enough
#: to amortize per-batch overhead, small enough to checkpoint often.
STREAM_BATCH_TARGET_SECONDS = 0.5


@dataclass(frozen=True)
class TableStats:
    """The input statistics the planner prices plans against.

    Attributes:
        rows: record count.
        attrs: attribute count (similarity-vector width).
        avg_tokens: mean record-level token-set size (from a seeded
            sample when the table is large).
        est_pairs: estimated candidate pairs surviving the pruning join,
            from a sampled mini-join scaled quadratically.
    """

    rows: int
    attrs: int
    avg_tokens: float
    est_pairs: int

    @classmethod
    def from_table(
        cls,
        table: "Table",
        threshold: float = 0.2,
        tokens: str = "word",
        sample: int = 200,
        seed: int = 0,
    ) -> "TableStats":
        """Measure *table* with a seeded bounded-cost sample.

        Token counts come from up to *sample* records; the candidate-pair
        estimate runs the naive join on that sample and scales the pair
        count by ``(rows / sample)^2`` — the standard sampling estimator
        for a self-join.  Cost is O(sample^2), independent of table size.
        """
        import numpy as np

        from ..similarity.tokenize import qgram_tokens, word_tokens

        tokenizer = qgram_tokens if tokens == "qgram" else word_tokens
        rows = len(table)
        if rows == 0:
            return cls(rows=0, attrs=table.num_attributes, avg_tokens=1.0, est_pairs=0)
        record_ids = [record.record_id for record in table]
        if rows > sample:
            rng = np.random.default_rng(seed)
            chosen = sorted(rng.choice(rows, size=sample, replace=False).tolist())
            record_ids = [record_ids[index] for index in chosen]
        token_sets = [
            tokenizer(table.record_text(record_id)) for record_id in record_ids
        ]
        avg_tokens = sum(len(t) for t in token_sets) / len(token_sets)
        from ..similarity.join import _naive_join

        sampled_pairs = len(_naive_join(token_sets, threshold))
        scale = rows / len(token_sets)
        est_pairs = max(1, int(round(sampled_pairs * scale * scale)))
        return cls(
            rows=rows,
            attrs=table.num_attributes,
            avg_tokens=avg_tokens,
            est_pairs=est_pairs,
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "rows": self.rows,
            "attrs": self.attrs,
            "avg_tokens": round(self.avg_tokens, 3),
            "est_pairs": self.est_pairs,
        }


@dataclass(frozen=True)
class PlanDecision:
    """One knob's chosen value, its predicted cost, and the losers.

    Attributes:
        knob: the knob name (member of :data:`PLANNABLE_KNOBS`).
        chosen: the winning value.
        prediction: the priced stage behind the choice (``None`` for
            derived knobs with no own stage, e.g. ``reachability_index``).
        alternatives: ``(value, predicted_seconds)`` for every rejected
            alternative, cheapest first.
        reason: one human-readable sentence.
    """

    knob: str
    chosen: Any
    prediction: StagePrediction | None
    alternatives: tuple[tuple[Any, float], ...] = ()
    reason: str = ""

    def as_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "knob": self.knob,
            "chosen": self.chosen,
            "reason": self.reason,
            "alternatives": [
                {"value": value, "seconds": seconds}
                for value, seconds in self.alternatives
            ],
        }
        if self.prediction is not None:
            payload["stage"] = self.prediction.stage
            payload["units"] = self.prediction.units
            payload["seconds"] = self.prediction.seconds
        return payload


@dataclass(frozen=True)
class Plan:
    """An immutable pipeline plan: every performance knob, priced.

    Attributes:
        stats: the table statistics the plan was built from.
        calibrated: whether the profile behind the predictions was
            measured on this host (vs the documented defaults).
        decisions: one :class:`PlanDecision` per knob.
        meta: provenance (profile host, planner inputs).
    """

    stats: TableStats
    calibrated: bool
    decisions: tuple[PlanDecision, ...]
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for decision in self.decisions:
            if decision.knob not in PLANNABLE_KNOBS:
                raise ConfigurationError(
                    f"plan decides non-performance knob {decision.knob!r}; "
                    f"plannable knobs: {PLANNABLE_KNOBS}"
                )

    def decision(self, knob: str) -> PlanDecision:
        for candidate in self.decisions:
            if candidate.knob == knob:
                return candidate
        raise ConfigurationError(f"plan has no decision for knob {knob!r}")

    def knob(self, name: str) -> Any:
        return self.decision(name).chosen

    def knobs(self) -> dict[str, Any]:
        return {decision.knob: decision.chosen for decision in self.decisions}

    def predicted_total_seconds(self) -> float:
        return sum(
            decision.prediction.seconds
            for decision in self.decisions
            if decision.prediction is not None
        )

    def to_payload(self) -> dict[str, Any]:
        return {
            "stats": self.stats.as_dict(),
            "calibrated": self.calibrated,
            "decisions": [decision.as_dict() for decision in self.decisions],
            "predicted_total_seconds": self.predicted_total_seconds(),
            "meta": dict(self.meta),
        }


# --------------------------------------------------------------------------- #
# Planning
# --------------------------------------------------------------------------- #


def _pick(
    knob: str,
    priced: list[tuple[Any, StagePrediction]],
    reason: str,
) -> PlanDecision:
    """The cheapest alternative wins; ties break to the first listed."""
    ranked = sorted(priced, key=lambda item: item[1].seconds)
    chosen_value, chosen_prediction = ranked[0]
    return PlanDecision(
        knob=knob,
        chosen=chosen_value,
        prediction=chosen_prediction,
        alternatives=tuple(
            (value, prediction.seconds) for value, prediction in ranked[1:]
        ),
        reason=reason,
    )


def _stage_prediction(
    profile: CalibrationProfile, stage: str, *operands: float
) -> StagePrediction:
    units = UNIT_FORMULAS[stage](*operands)
    return StagePrediction(
        stage=stage, units=units, seconds=profile.predict(stage, units)
    )


def choose_join_method(
    stats: TableStats,
    profile: CalibrationProfile,
    allow_sparse: bool = True,
) -> PlanDecision:
    """Price the three candidate joins and keep the cheapest.

    The sharded resolver tiles the join by record ranges, which the
    sparse (global matrix) join cannot do — pass ``allow_sparse=False``
    there.
    """
    priced = [
        ("naive", _stage_prediction(profile, "join_naive", stats.rows, stats.avg_tokens)),
        ("prefix", _stage_prediction(profile, "join_prefix", stats.rows, stats.avg_tokens)),
    ]
    if allow_sparse:
        priced.append(
            (
                "sparse",
                _stage_prediction(profile, "join_sparse", stats.rows, stats.avg_tokens),
            )
        )
    return _pick(
        "join_method",
        priced,
        f"cheapest candidate join for {stats.rows} rows "
        f"(~{stats.avg_tokens:.1f} tokens/record)",
    )


def choose_vectorize(
    stats: TableStats, profile: CalibrationProfile
) -> PlanDecision:
    priced = [
        (
            True,
            _stage_prediction(
                profile, "vectorize_batch", stats.est_pairs, stats.attrs
            ),
        ),
        (
            False,
            _stage_prediction(
                profile, "vectorize_scalar", stats.est_pairs, stats.attrs
            ),
        ),
    ]
    return _pick(
        "use_batch_similarity",
        priced,
        f"cheapest similarity substrate for ~{stats.est_pairs} pairs "
        f"x {stats.attrs} attributes",
    )


def choose_selection(
    stats: TableStats, profile: CalibrationProfile
) -> tuple[PlanDecision, PlanDecision]:
    """The selection engine and the reachability index that serves it."""
    vertices = stats.est_pairs
    priced = [
        (True, _stage_prediction(profile, "selection_incremental", vertices)),
        (False, _stage_prediction(profile, "selection_scratch", vertices)),
    ]
    engine = _pick(
        "use_incremental_selection",
        priced,
        f"cheapest selection engine for ~{vertices} graph vertices",
    )
    # The packed reachability index only pays for itself on the
    # incremental path; the scratch engine never consults it.
    reachability = PlanDecision(
        knob="reachability_index",
        chosen="auto" if engine.chosen else "off",
        prediction=None,
        reason=(
            "sized by the default byte budget for the incremental engine"
            if engine.chosen
            else "scratch engine never consults the index"
        ),
    )
    return engine, reachability


def choose_shards(
    stats: TableStats,
    profile: CalibrationProfile,
    workers: int | None,
) -> PlanDecision:
    """Shard count: balance parallel speedup against dispatch overhead.

    Models the dominant parallel work (join + vectorize) as perfectly
    divisible across ``min(shards, workers)`` lanes, plus the calibrated
    per-task dispatch overhead for every shard.  More shards than workers
    still helps real skew (finer work units), so candidates go up to
    ``8 x workers``; the model's dispatch term is what stops the blowup.
    """
    lanes = max(1, workers or 1)
    join = _stage_prediction(profile, "join_prefix", stats.rows, stats.avg_tokens)
    vectorize = _stage_prediction(
        profile, "vectorize_batch", stats.est_pairs, stats.attrs
    )
    parallel_seconds = join.seconds + vectorize.seconds
    candidates = sorted({lanes, 2 * lanes, 4 * lanes, 8 * lanes})
    priced = []
    for shards in candidates:
        dispatch = _stage_prediction(profile, "shard_dispatch", shards)
        total = parallel_seconds / min(shards, lanes) + dispatch.seconds
        priced.append(
            (shards, StagePrediction("shard_dispatch", dispatch.units, total))
        )
    return _pick(
        "shards",
        priced,
        f"parallel work / {lanes} lane(s) + per-task dispatch overhead",
    )


def choose_stream_batch(
    stats: TableStats, profile: CalibrationProfile
) -> PlanDecision:
    """Batch size targeting ~0.5s of index-extend work per batch."""
    model = profile.model("stream_extend")
    per_row = model.c1 * max(1.0, stats.avg_tokens)
    if per_row <= 0:
        batch = MAX_STREAM_BATCH
    else:
        batch = int(STREAM_BATCH_TARGET_SECONDS / per_row)
    batch = max(MIN_STREAM_BATCH, min(MAX_STREAM_BATCH, batch))
    prediction = _stage_prediction(
        profile, "stream_extend", batch, stats.avg_tokens
    )
    return PlanDecision(
        knob="stream_batch_size",
        chosen=batch,
        prediction=prediction,
        reason=(
            f"targets ~{STREAM_BATCH_TARGET_SECONDS:.1f}s of index-extend "
            f"work per checkpointed batch"
        ),
    )


def plan_for_stats(
    stats: TableStats,
    profile: CalibrationProfile,
    workers: int | None = None,
    allow_sparse: bool = True,
) -> Plan:
    """Build the full plan for the given statistics and profile."""
    engine, reachability = choose_selection(stats, profile)
    decisions = (
        choose_join_method(stats, profile, allow_sparse=allow_sparse),
        choose_vectorize(stats, profile),
        engine,
        reachability,
        choose_shards(stats, profile, workers),
        choose_stream_batch(stats, profile),
    )
    return Plan(
        stats=stats,
        calibrated=profile.calibrated,
        decisions=decisions,
        meta={"host": profile.host, "workers": workers},
    )


def plan_for_table(
    table: "Table",
    config: "PowerConfig",
    profile: CalibrationProfile,
    workers: int | None = None,
    allow_sparse: bool = True,
) -> Plan:
    """Measure *table* and plan for it under *config*'s semantics."""
    stats = TableStats.from_table(
        table,
        threshold=config.pruning_threshold,
        tokens=config.join_tokens,
        seed=config.seed,
    )
    return plan_for_stats(
        stats, profile, workers=workers, allow_sparse=allow_sparse
    )


def apply_plan(config: "PowerConfig", plan: Plan) -> "PowerConfig":
    """The planned clone of *config* — performance knobs only.

    Returns *config* with every plannable knob set to the plan's choice
    and ``plan="off"`` (so the planned clone never re-plans).  Refuses —
    with :class:`~repro.exceptions.ConfigurationError` — to touch any
    field outside :data:`PLANNABLE_KNOBS`; this is the write barrier of
    the transparency contract.
    """
    updates: dict[str, Any] = {}
    for decision in plan.decisions:
        if decision.knob not in PLANNABLE_KNOBS:
            raise ConfigurationError(
                f"plan decides non-performance knob {decision.knob!r}; "
                "refusing to apply it"
            )
        if decision.knob in _NON_CONFIG_KNOBS:
            continue
        updates[decision.knob] = decision.chosen
    # An explicit user shard count outranks the planner's.
    if config.shards is not None:
        updates.pop("shards", None)
    return dataclasses.replace(config, plan="off", **updates)


__all__ = [
    "MAX_STREAM_BATCH",
    "MIN_STREAM_BATCH",
    "PLANNABLE_KNOBS",
    "STREAM_BATCH_TARGET_SECONDS",
    "Plan",
    "PlanDecision",
    "TableStats",
    "apply_plan",
    "choose_join_method",
    "choose_selection",
    "choose_shards",
    "choose_stream_batch",
    "choose_vectorize",
    "plan_for_stats",
    "plan_for_table",
]
