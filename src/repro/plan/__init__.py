"""repro.plan: calibrated cost-based planning for the whole pipeline.

The pipeline exposes a dozen pure-performance knobs (candidate-join
strategy, similarity substrate, selection engine, shard fan-out,
streaming batch size, admission pricing) whose best settings depend on
data scale and host hardware.  This package decides them from measured
cost models instead of static heuristics:

* :mod:`~repro.plan.model` — per-stage affine cost models over analytic
  work units (non-negative and monotone by construction);
* :mod:`~repro.plan.calibrate` — seeded micro-benchmarks producing a
  versioned per-host profile (canonical JSON, schema ``version: 1``);
* :mod:`~repro.plan.planner` — table stats + profile -> an immutable
  :class:`~repro.plan.planner.Plan` with predicted costs and rejected
  alternatives, selected via ``PowerConfig(plan="auto"|"off"|<path>)``;
* :mod:`~repro.plan.explain` — the plan tree and predicted-vs-observed
  reporting from the obs span tree;
* :mod:`~repro.plan.feedback` — bounded folding of observed costs back
  into the profile;
* :mod:`~repro.plan.hooks` — best-effort calibrated advice for the
  ``auto`` join crossover and the serve admission seed.

The transparency contract: a plan changes *when* the answer arrives,
never *what* it is.  ``check_plan_transparency`` in the verification
battery proves any plan — including adversarially bad ones — is
bit-identical in results, transcripts, and billing to the static
defaults.
"""

from .calibrate import (
    PROFILE_VERSION,
    CalibrationProfile,
    calibrate,
    default_profile,
    default_profile_path,
    load_profile,
    resolve_profile,
)
from .explain import prediction_report, render_plan, render_prediction_report
from .feedback import fold_observations
from .model import STAGES, CostModel, StagePrediction
from .planner import (
    PLANNABLE_KNOBS,
    Plan,
    PlanDecision,
    TableStats,
    apply_plan,
    plan_for_stats,
    plan_for_table,
)

__all__ = [
    "PLANNABLE_KNOBS",
    "PROFILE_VERSION",
    "STAGES",
    "CalibrationProfile",
    "CostModel",
    "Plan",
    "PlanDecision",
    "StagePrediction",
    "TableStats",
    "apply_plan",
    "calibrate",
    "default_profile",
    "default_profile_path",
    "fold_observations",
    "load_profile",
    "plan_for_stats",
    "plan_for_table",
    "prediction_report",
    "render_plan",
    "render_prediction_report",
    "resolve_profile",
]
