"""Levenshtein edit distance and the paper's edit similarity (Eq. 2).

``EDS(a, b) = 1 - ED(a, b) / max(|a|, |b|)``

The distance is the classic dynamic program with insertion, deletion, and
substitution all costing 1.  A two-row rolling implementation keeps memory at
``O(min(|a|, |b|))``, and an optional band bound lets callers cut off early
when only "distance <= k" matters.
"""

from __future__ import annotations


def edit_distance(a: str, b: str) -> int:
    """Return the Levenshtein distance between strings *a* and *b*."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Keep the inner loop over the shorter string.
    if len(b) > len(a):
        a, b = b, a
    previous = list(range(len(b) + 1))
    current = [0] * (len(b) + 1)
    for i, ca in enumerate(a, start=1):
        current[0] = i
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current[j] = min(
                previous[j] + 1,  # deletion
                current[j - 1] + 1,  # insertion
                previous[j - 1] + cost,  # substitution / match
            )
        previous, current = current, previous
    return previous[len(b)]


def edit_distance_within(a: str, b: str, k: int) -> int | None:
    """Return ``edit_distance(a, b)`` if it is ``<= k``, else ``None``.

    Uses the standard banded dynamic program: only cells within *k* of the
    diagonal can contribute to a distance ``<= k``, giving ``O(k * max(|a|,
    |b|))`` time.  Useful for threshold-based similarity joins.
    """
    if k < 0:
        return None
    if abs(len(a) - len(b)) > k:
        return None
    if a == b:
        return 0
    if len(b) > len(a):
        a, b = b, a
    n, m = len(a), len(b)
    big = k + 1
    previous = [j if j <= k else big for j in range(m + 1)]
    for i in range(1, n + 1):
        lo = max(1, i - k)
        hi = min(m, i + k)
        current = [big] * (m + 1)
        if i <= k:
            current[0] = i
        for j in range(lo, hi + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            best = previous[j - 1] + cost
            if previous[j] + 1 < best:
                best = previous[j] + 1
            if current[j - 1] + 1 < best:
                best = current[j - 1] + 1
            current[j] = best
        previous = current
        if min(previous[lo - 1 : hi + 1]) > k:
            return None
    return previous[m] if previous[m] <= k else None


def edit_similarity(a: str, b: str) -> float:
    """Return the paper's edit similarity: ``1 - ED(a,b) / max(|a|,|b|)``.

    Two empty strings are defined to be identical (similarity 1.0).
    """
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - edit_distance(a, b) / longest
