"""Candidate-pair generation: the pruning step of §7.1.

"We compute a similarity score for each pair of records by Jaccard and prune
pairs whose similarity scores are below [tau]."  For small tables the naive
quadratic scan is fine; for the ACMPub-scale dataset we use a prefix-filtered
inverted-index similarity join — the standard technique behind the pruning
step in the cited prior work (CrowdER et al.).
"""

from __future__ import annotations

import heapq
import math
from collections import Counter, defaultdict
from collections.abc import Sequence

from ..data.ground_truth import Pair
from ..data.table import Table
from ..exceptions import ConfigurationError
from ..obs import instrument as obs_instrument
from .edit import edit_distance_within
from .jaccard import jaccard
from .tokenize import qgram_tokens, word_tokens

#: Table size at which ``method="auto"`` switches from the quadratic scan to
#: the prefix-filtered join — the documented **uncalibrated fallback**.
#: Below this point the naive scan's lack of index bookkeeping wins (measured
#: on the paper's Restaurant/Cora-scale tables); above it the O(n^2)
#: candidate space dominates and prefix filtering pays.  When a calibrated
#: host profile exists (``repro plan --calibrate``), ``"auto"`` asks the
#: planner instead (:func:`repro.plan.hooks.planned_join_method`) and this
#: constant is never consulted.  Callers can always force a method
#: explicitly (``PowerConfig.join_method``).
AUTO_PREFIX_CROSSOVER = 1200

#: The join strategies accepted by :func:`similar_pairs`.
JOIN_METHODS = ("auto", "naive", "prefix", "sparse")


def _record_tokens(table: Table, use_qgrams: bool) -> list[frozenset[str]]:
    if use_qgrams:
        return [qgram_tokens(table.record_text(r.record_id)) for r in table]
    return [word_tokens(table.record_text(r.record_id)) for r in table]


def _resolve_auto(token_sets: Sequence[frozenset[str]]) -> str:
    """The concrete method behind ``"auto"``: calibrated when possible.

    With a calibrated host profile on disk the planner prices the naive
    scan against the prefix join for this row/token shape; otherwise the
    static :data:`AUTO_PREFIX_CROSSOVER` row count decides.  Only the two
    range-capable joins are candidates, so ``"auto"`` resolves identically
    for :func:`similar_pairs` and :func:`similar_pairs_range` — the serial
    and sharded paths always agree.
    """
    from ..plan import hooks as plan_hooks

    rows = len(token_sets)
    avg_tokens = sum(len(t) for t in token_sets) / max(1, rows)
    planned = plan_hooks.planned_join_method(rows, avg_tokens)
    if planned is not None:
        return planned
    return "prefix" if rows > AUTO_PREFIX_CROSSOVER else "naive"


def similar_pairs(
    table: Table,
    threshold: float,
    tokens: str = "word",
    method: str = "auto",
) -> list[Pair]:
    """All record pairs whose record-level Jaccard is ``>= threshold``.

    Args:
        table: the input table.
        threshold: record-level Jaccard pruning bound ``tau`` (paper uses 0.3
            on ACMPub and 0.2 elsewhere).
        tokens: ``"word"`` (default) or ``"qgram"`` token sets.
        method: ``"naive"`` forces the quadratic scan, ``"prefix"`` forces the
            prefix-filter join, ``"sparse"`` forces the inverted-list numpy
            join (:func:`repro.similarity.batch.sparse_jaccard_join`), and
            ``"auto"`` picks by table size (:data:`AUTO_PREFIX_CROSSOVER`).

    Returns:
        Canonically ordered pairs, sorted for determinism.
    """
    if not 0.0 < threshold <= 1.0:
        raise ConfigurationError(f"threshold must be in (0, 1], got {threshold}")
    if tokens not in ("word", "qgram"):
        raise ConfigurationError(f"tokens must be 'word' or 'qgram', got {tokens!r}")
    if method not in JOIN_METHODS:
        raise ConfigurationError(f"unknown join method {method!r}")
    if len(table) < 2:  # explicit empty/singleton fast path: no allocation
        return []
    obs = obs_instrument.current()
    with obs.tracer.span(
        "join.similar_pairs", method=method, records=len(table)
    ) as span:
        token_sets = _record_tokens(table, use_qgrams=(tokens == "qgram"))
        if method == "auto":
            method = _resolve_auto(token_sets)
            span.set_attribute("method", method)
        if method == "naive":
            pairs = _naive_join(token_sets, threshold)
        elif method == "prefix":
            pairs = _prefix_join(token_sets, threshold)
        elif method == "sparse":
            from .batch import sparse_jaccard_join

            pairs = sparse_jaccard_join(token_sets, threshold)
        else:
            raise ConfigurationError(f"unknown join method {method!r}")
        span.set_attribute("pairs", len(pairs))
    if obs.metrics:
        obs.registry.counter(
            "repro_join_candidate_pairs_total",
            "candidate pairs emitted by the pruning join",
            method=method,
        ).inc(len(pairs))
    return sorted(pairs)


def similar_pairs_range(
    table: Table,
    threshold: float,
    lo: int,
    hi: int,
    tokens: str = "word",
    method: str = "auto",
) -> list[Pair]:
    """The slice of :func:`similar_pairs` owned by probe records ``[lo, hi)``.

    Every candidate pair ``(a, b)`` with ``a < b`` is *owned* by its higher
    record id ``b``; this returns exactly the pairs whose owner falls in
    ``[lo, hi)``.  Tiling the record range therefore tiles the full join
    output — the union over disjoint covering ranges equals
    ``similar_pairs(table, threshold, ...)`` pair for pair, because every
    surviving pair is verified with the same exact Jaccard comparison and
    the prefix filter admits no false negatives for any probe schedule.

    This is the work unit of the sharded resolver's parallel candidate
    join.  A range task replays the (cheap) index insertions for records
    before *lo* and probes only its own records, so per-task overhead is
    the tokenization plus O(prefix tokens) appends — negligible next to
    the candidate verification it parallelizes.

    ``method="sparse"`` has no range form (the numpy inverted join is one
    global matrix product) and raises.
    """
    if not 0.0 < threshold <= 1.0:
        raise ConfigurationError(f"threshold must be in (0, 1], got {threshold}")
    if tokens not in ("word", "qgram"):
        raise ConfigurationError(f"tokens must be 'word' or 'qgram', got {tokens!r}")
    if not 0 <= lo <= hi <= len(table):
        raise ConfigurationError(
            f"range [{lo}, {hi}) escapes the {len(table)}-record table"
        )
    if method == "sparse":
        raise ConfigurationError("the sparse join has no range-restricted form")
    if method not in ("auto", "naive", "prefix"):
        raise ConfigurationError(f"unknown join method {method!r}")
    if len(table) < 2 or lo == hi:
        return []
    token_sets = _record_tokens(table, use_qgrams=(tokens == "qgram"))
    if method == "auto":
        method = _resolve_auto(token_sets)
    if method == "naive":
        pairs = _naive_join(token_sets, threshold, lo=lo, hi=hi)
    else:
        pairs = _prefix_join(token_sets, threshold, lo=lo, hi=hi)
    return sorted(pairs)


def _naive_join(
    token_sets: Sequence[frozenset[str]],
    threshold: float,
    lo: int = 0,
    hi: int | None = None,
) -> set[Pair]:
    pairs: set[Pair] = set()
    n = len(token_sets)
    hi = n if hi is None else hi
    for j in range(lo, hi):
        tokens_j = token_sets[j]
        for i in range(j):
            if jaccard(token_sets[i], tokens_j) >= threshold:
                pairs.add((i, j))
    return pairs


def _prefix_join(
    token_sets: Sequence[frozenset[str]],
    threshold: float,
    lo: int = 0,
    hi: int | None = None,
) -> set[Pair]:
    """Prefix-filtered self-join for Jaccard.

    For Jaccard(a, b) >= t, the sets must share a token within the first
    ``|a| - ceil(t * |a|) + 1`` tokens when both sets are ordered by a global
    token order (rarest first).  We index those prefixes and verify only the
    colliding pairs.

    With a ``[lo, hi)`` probe range, records before *lo* are only
    *inserted* (their prefix tokens are appended to the index, rebuilding
    the exact index state the serial loop would have at record *lo*) and
    records in the range are probed and inserted as usual — so the range's
    output is exactly the serial join's pairs owned by those records.
    """
    hi = len(token_sets) if hi is None else hi
    frequency: Counter[str] = Counter()
    for tokens in token_sets:
        frequency.update(tokens)
    # Rarest-first global order; ties broken lexically for determinism.
    order = {
        token: rank
        for rank, (token, _) in enumerate(
            sorted(frequency.items(), key=lambda item: (item[1], item[0]))
        )
    }
    sorted_tokens = [sorted(tokens, key=order.__getitem__) for tokens in token_sets]

    index: dict[str, list[int]] = defaultdict(list)
    pairs: set[Pair] = set()
    for record_id, tokens in enumerate(sorted_tokens[:hi]):
        size = len(tokens)
        if size == 0:
            continue
        prefix_len = size - math.ceil(threshold * size) + 1
        if record_id < lo:
            # Replay: index state only, no probing (cheap appends).
            for token in tokens[:prefix_len]:
                index[token].append(record_id)
            continue
        candidates: set[int] = set()
        for token in tokens[:prefix_len]:
            candidates.update(index[token])
            index[token].append(record_id)
        my_set = token_sets[record_id]
        for other in candidates:
            other_set = token_sets[other]
            # Length filter: |b| >= t * |a| is necessary for Jaccard >= t.
            if len(other_set) < threshold * size or size < threshold * len(other_set):
                continue
            if jaccard(my_set, other_set) >= threshold:
                pairs.add((other, record_id))
    return pairs


def similar_pairs_edit(
    table: Table,
    threshold: float,
    prefilter_overlap: float = 0.05,
) -> list[Pair]:
    """Record pairs whose record-level *edit similarity* is ``>= threshold``.

    Section 3.1 allows either Jaccard or edit similarity as the pruning
    score.  Edit similarity on whole records is expensive, so candidates
    are prefiltered: ``EDS(a, b) >= t`` bounds the length gap by
    ``(1 - t) * max(|a|, |b|)``, and any surviving pair still shares tokens
    unless the strings are short — the token prefilter (*prefilter_overlap*
    record-level Jaccard) is intentionally loose and only exists to skip
    hopeless pairs before the banded edit-distance verification.
    """
    if not 0.0 < threshold <= 1.0:
        raise ConfigurationError(f"threshold must be in (0, 1], got {threshold}")
    texts = [table.record_text(record.record_id) for record in table]
    lengths = [len(text) for text in texts]
    candidates = (
        _prefix_join(_record_tokens(table, use_qgrams=False), prefilter_overlap)
        if prefilter_overlap > 0
        else {(i, j) for i in range(len(table)) for j in range(i + 1, len(table))}
    )
    pairs: list[Pair] = []
    for i, j in sorted(candidates):
        longest = max(lengths[i], lengths[j])
        if longest == 0:
            pairs.append((i, j))
            continue
        max_distance = int((1.0 - threshold) * longest)
        if abs(lengths[i] - lengths[j]) > max_distance:
            continue
        if edit_distance_within(texts[i], texts[j], max_distance) is not None:
            pairs.append((i, j))
    return pairs


def top_k_pairs(table: Table, k: int, tokens: str = "word") -> list[tuple[float, Pair]]:
    """The *k* most similar record pairs by record-level Jaccard.

    A convenience for exploratory use and for tests that need a small, dense
    pair set regardless of threshold tuning.
    """
    if k <= 0:
        raise ConfigurationError(f"k must be positive, got {k}")
    token_sets = _record_tokens(table, use_qgrams=(tokens == "qgram"))
    heap: list[tuple[float, Pair]] = []
    n = len(token_sets)
    for i in range(n):
        for j in range(i + 1, n):
            score = jaccard(token_sets[i], token_sets[j])
            if len(heap) < k:
                heapq.heappush(heap, (score, (i, j)))
            elif score > heap[0][0]:
                heapq.heapreplace(heap, (score, (i, j)))
    return sorted(heap, reverse=True)
