"""Per-attribute similarity vectors (paper §3.1).

Each candidate pair ``p_ij`` is described by an m-dimensional vector whose
k-th component ``s_ij^k`` is the similarity of the two records on attribute
``A_k``.  The partial order of §3.1 is defined on these vectors, so this
module is the boundary between the string world and the graph world.

Following the paper, components below the attribute threshold ``tau`` are
clamped to 0 ("If s_ij^k < tau, we set s_ij^k = 0 for simplicity").
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from ..data.ground_truth import Pair, canonical_pair
from ..data.table import Table
from ..exceptions import ConfigurationError
from .edit import edit_similarity
from .jaccard import bigram_jaccard, token_jaccard

SimilarityFunction = Callable[[str, str], float]

SIMILARITY_FUNCTIONS: dict[str, SimilarityFunction] = {
    "jaccard": token_jaccard,
    "edit": edit_similarity,
    "bigram": bigram_jaccard,
}


def resolve_function(name: str) -> SimilarityFunction:
    """Look up a similarity function by name; raise on unknown names."""
    try:
        return SIMILARITY_FUNCTIONS[name]
    except KeyError:
        known = ", ".join(sorted(SIMILARITY_FUNCTIONS))
        raise ConfigurationError(
            f"unknown similarity function {name!r}; known functions: {known}"
        ) from None


def resolve_functions(names: Sequence[str]) -> tuple[SimilarityFunction, ...]:
    """Resolve a whole attribute-function tuple once, outside any hot loop.

    ``resolve_function`` costs a dict lookup plus exception machinery; callers
    that loop over pairs must not pay it per pair per attribute.
    """
    return tuple(resolve_function(name) for name in names)


@dataclass(frozen=True)
class SimilarityConfig:
    """How to turn a record pair into a similarity vector.

    Attributes:
        functions: one similarity-function name per attribute.
        attribute_threshold: per-attribute floor ``tau``; components below it
            are clamped to 0, as in the paper's Table 2 (default 0.2).
    """

    functions: tuple[str, ...]
    attribute_threshold: float = 0.2

    def __post_init__(self) -> None:
        if not self.functions:
            raise ConfigurationError("need at least one attribute function")
        for name in self.functions:
            resolve_function(name)
        if not 0.0 <= self.attribute_threshold <= 1.0:
            raise ConfigurationError(
                f"attribute_threshold must be in [0, 1], got {self.attribute_threshold}"
            )

    @classmethod
    def uniform(
        cls, num_attributes: int, function: str = "bigram", attribute_threshold: float = 0.2
    ) -> "SimilarityConfig":
        """Use the same similarity function on every attribute.

        ``bigram`` is the paper's default (§7.1).
        """
        return cls(
            functions=(function,) * num_attributes,
            attribute_threshold=attribute_threshold,
        )

    @property
    def num_attributes(self) -> int:
        return len(self.functions)

    def for_table(self, table: Table) -> "SimilarityConfig":
        """Validate that this config matches the table's schema."""
        if self.num_attributes != table.num_attributes:
            raise ConfigurationError(
                f"config has {self.num_attributes} attribute functions but table "
                f"{table.name!r} has {table.num_attributes} attributes"
            )
        return self


def attribute_similarities(
    table: Table, pair: Pair, config: SimilarityConfig
) -> tuple[float, ...]:
    """The similarity vector of one pair, with sub-threshold clamping."""
    i, j = canonical_pair(*pair)
    record_i, record_j = table[i], table[j]
    tau = config.attribute_threshold
    # Resolved once, not per attribute: resolve_function inside the loop was
    # a dict lookup + try/except per component.
    functions = resolve_functions(config.functions)
    vector = []
    for k, function in enumerate(functions):
        similarity = function(record_i[k], record_j[k])
        vector.append(similarity if similarity >= tau else 0.0)
    return tuple(vector)


def similarity_matrix(
    table: Table, pairs: Sequence[Pair], config: SimilarityConfig
) -> np.ndarray:
    """Similarity vectors for many pairs as a ``(len(pairs), m)`` float array.

    Row order follows *pairs*; this array is the vertex set of the
    partial-order graph.  This is the scalar *reference* implementation; the
    production pipeline uses :func:`repro.similarity.batch.batch_similarity_matrix`,
    which is bit-identical but vectorized.
    """
    config.for_table(table)
    matrix = np.empty((len(pairs), config.num_attributes), dtype=np.float64)
    if not len(pairs):  # explicit empty-input fast path
        return matrix
    functions = resolve_functions(config.functions)
    tau = config.attribute_threshold
    for row, pair in enumerate(pairs):
        i, j = canonical_pair(*pair)
        record_i, record_j = table[i], table[j]
        for k, function in enumerate(functions):
            similarity = function(record_i[k], record_j[k])
            matrix[row, k] = similarity if similarity >= tau else 0.0
    return matrix
