"""Batch similarity substrate: the vectorized fast path of the string→vector boundary.

Every Power/Power+ run front-loads its cost in two places: the §7.1 pruning
join and the §3.1 similarity-vector computation.  The scalar implementations
(:mod:`repro.similarity.join`, :mod:`repro.similarity.vectors`) execute pure
Python per pair and per attribute; they remain the *reference* implementations
and the ground truth for tests.  This module provides numerically identical
fast paths:

* :class:`TokenIndex` — tokenizes each distinct string exactly once, interns
  tokens into dense integer ids, and backs a packed bit-matrix so set
  intersections become byte-wise ``AND`` + popcount over numpy arrays.
* :func:`batch_similarity_matrix` — a drop-in replacement for
  :func:`repro.similarity.vectors.similarity_matrix` that dispatches each
  attribute to a vectorized kernel (token/bigram Jaccard through the sparse
  index, edit similarity through a deduplicated, length-bucketed, optionally
  process-parallel runner) and applies the ``tau`` clamp as one numpy op.
* :func:`sparse_jaccard_join` — the record-level Jaccard self-join computed
  via inverted-list intersection counts (``np.bincount``) instead of per-pair
  Python set ops; exposed as ``method="sparse"`` of
  :func:`repro.similarity.join.similar_pairs`.

The contract, enforced by tests: fast and reference paths agree on the exact
same pair sets and produce bit-identical similarity values (both sides reduce
to the same IEEE-754 divisions).
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from functools import lru_cache

import numpy as np

from ..data.ground_truth import Pair
from ..data.table import Table
from ..exceptions import ConfigurationError
from .edit import edit_similarity
from .tokenize import normalize, qgram_tokens, word_tokens
from .vectors import SimilarityConfig

#: Soft cap (bytes) on the per-chunk temporary of the pairwise AND kernel.
_CHUNK_BYTES = 32 << 20

#: Environment variable that opts the edit-similarity runner into a process
#: pool (value = worker count).  Serial by default: the deduplicated cached
#: runner is already fast, and forking is not free.
EDIT_WORKERS_ENV = "POWER_EDIT_WORKERS"

#: Minimum number of *unique* string pairs before a process pool can pay for
#: its fork + pickle overhead.
_MIN_PAIRS_FOR_POOL = 4096

#: Upper bound on Unicode codepoints — sizes the presence bitmap that remaps
#: a corpus's codepoints onto a dense alphabet for the bigram encoder.
_BIGRAM_BASE = 0x110000

#: Fall back to the generic per-text tokenizer when a corpus uses this many
#: distinct codepoints: the code-interning bitmap is ``(k+1)**2`` bools, so
#: the cap keeps it at a few MB (real corpora use well under 1k characters).
_MAX_BIGRAM_ALPHABET = 1 << 12


def _popcount_rows(words: np.ndarray) -> np.ndarray:
    """Row-wise popcount of a ``(n, w)`` uint64 matrix."""
    return np.bitwise_count(words).sum(axis=1, dtype=np.int64)


if not hasattr(np, "bitwise_count"):  # pragma: no cover - numpy < 2 fallback
    _POPCOUNT_TABLE = np.unpackbits(
        np.arange(256, dtype=np.uint8)[:, None], axis=1
    ).sum(axis=1, dtype=np.uint8)

    def _popcount_rows(words: np.ndarray) -> np.ndarray:  # noqa: F811
        return _POPCOUNT_TABLE[words.view(np.uint8)].sum(axis=1, dtype=np.int64)


def _intern_texts(texts: Sequence[str]) -> tuple[list[str], np.ndarray]:
    """Distinct strings (first-seen order) and each row's index into them."""
    seen: dict[str, int] = {}
    unique: list[str] = []
    inverse = np.empty(len(texts), dtype=np.int64)
    for position, text in enumerate(texts):
        index = seen.get(text)
        if index is None:
            index = len(unique)
            seen[text] = index
            unique.append(text)
        inverse[position] = index
    return unique, inverse


def _pack_rows(
    num_rows: int, row_of_token: np.ndarray, token_ids: np.ndarray, vocab_size: int
) -> np.ndarray:
    """Pack per-row token-id sets into a ``(num_rows, words)`` uint64 matrix.

    Fully vectorized: each (row, word) cell is the OR of its tokens' one-bit
    masks, computed with a single sort + ``bitwise_or.reduceat``.
    """
    num_words = max(1, (vocab_size + 63) // 64)
    bits = np.zeros(num_rows * num_words, dtype=np.uint64)
    if token_ids.size:
        word = token_ids >> 6
        bit = np.uint64(1) << (token_ids & 63).astype(np.uint64)
        cell = row_of_token * num_words + word
        order = np.argsort(cell, kind="stable")
        cell = cell[order]
        bit = bit[order]
        starts = np.concatenate(([0], np.flatnonzero(np.diff(cell)) + 1))
        bits[cell[starts]] = np.bitwise_or.reduceat(bit, starts)
    return bits.reshape(num_rows, num_words)


class TokenIndex:
    """Token sets of many strings as a packed bit-matrix.

    Each *distinct* input string is tokenized exactly once; tokens are
    interned into dense integer ids; each string's token set becomes one row
    of a ``(num_unique, ceil(vocab / 64))`` uint64 word matrix.  Jaccard for a
    batch of row pairs is then ``popcount(row_a AND row_b) / (|a| + |b| - ∩)``
    computed with numpy, which matches the scalar
    :func:`repro.similarity.jaccard.jaccard` bit for bit (both are a single
    int/int IEEE division).

    Args:
        texts: one string per row (rows map to record ids downstream).
        tokenizer: ``str -> frozenset[str]`` (e.g. :func:`word_tokens` or
            :func:`qgram_tokens`).
    """

    def __init__(self, texts: Sequence[str], tokenizer: Callable[[str], frozenset[str]]):
        unique, inverse = _intern_texts(texts)
        self.row_of_text = inverse
        # Tokenize each distinct string once and intern tokens into dense ids.
        vocab: dict[str, int] = {}
        flat_ids: list[int] = []
        sizes = np.zeros(len(unique), dtype=np.int64)
        for row, text in enumerate(unique):
            tokens = tokenizer(text)
            sizes[row] = len(tokens)
            # Sorted iteration pins the dense id layout: identical corpora
            # produce identical packed matrices in any process, regardless
            # of hash randomization — which is what lets streaming
            # checkpoints hash their index blobs reproducibly.
            for token in sorted(tokens):
                flat_ids.append(vocab.setdefault(token, len(vocab)))
        self.sizes = sizes
        self.vocab_size = len(vocab)
        row_of_token = np.repeat(np.arange(len(unique), dtype=np.int64), sizes)
        self.bits = _pack_rows(
            len(unique),
            row_of_token,
            np.asarray(flat_ids, dtype=np.int64),
            self.vocab_size,
        )
        # Interning state kept live so extend() can append without a rebuild.
        self._tokenizer: Callable[[str], frozenset[str]] | None = tokenizer
        self._seen: dict[str, int] | None = {
            text: row for row, text in enumerate(unique)
        }
        self._vocab: dict[str, int] | None = vocab

    def extend(self, texts: Sequence[str]) -> "TokenIndex":
        """Append more texts in place, reusing the existing interned state.

        New distinct strings are tokenized once, new tokens get the next
        dense ids, and the packed bit-matrix grows by exactly the new rows
        (existing rows are zero-padded when the vocabulary spills into new
        64-bit words, which changes no set bits).  The result is
        bit-identical to rebuilding ``TokenIndex(old_texts + texts)`` from
        scratch — that is what makes streaming candidate sweeps exact — at
        O(new) interning cost instead of O(all).

        Only indexes built through the generic constructor support this;
        the vectorized :meth:`for_bigrams` fast path discards its interning
        state and raises :class:`ConfigurationError`.
        """
        if self._seen is None or self._vocab is None or self._tokenizer is None:
            raise ConfigurationError(
                "this TokenIndex was built without interning state "
                "(for_bigrams fast path); rebuild it to add texts"
            )
        new_inverse = np.empty(len(texts), dtype=np.int64)
        new_unique: list[str] = []
        first_new_row = len(self._seen)
        for position, text in enumerate(texts):
            index = self._seen.get(text)
            if index is None:
                index = len(self._seen)
                self._seen[text] = index
                new_unique.append(text)
            new_inverse[position] = index
        self.row_of_text = np.concatenate((self.row_of_text, new_inverse))
        if not new_unique:
            return self
        flat_ids: list[int] = []
        sizes = np.zeros(len(new_unique), dtype=np.int64)
        for row, text in enumerate(new_unique):
            tokens = self._tokenizer(text)
            sizes[row] = len(tokens)
            for token in sorted(tokens):  # same id discipline as __init__
                flat_ids.append(self._vocab.setdefault(token, len(self._vocab)))
        self.vocab_size = len(self._vocab)
        num_words = max(1, (self.vocab_size + 63) // 64)
        if num_words > self.bits.shape[1]:
            grown = np.zeros((first_new_row, num_words), dtype=np.uint64)
            grown[:, : self.bits.shape[1]] = self.bits
            self.bits = grown
        new_bits = _pack_rows(
            len(new_unique),
            np.repeat(np.arange(len(new_unique), dtype=np.int64), sizes),
            np.asarray(flat_ids, dtype=np.int64),
            self.vocab_size,
        )
        self.bits = np.vstack((self.bits, new_bits))
        self.sizes = np.concatenate((self.sizes, sizes))
        return self

    @classmethod
    def for_bigrams(cls, texts: Sequence[str]) -> "TokenIndex":
        """Vectorized constructor for the paper's default 2-gram tokens.

        All distinct normalized strings are NUL-joined into one buffer and
        decoded to codepoints in a single pass; codepoints are remapped to a
        dense alphabet with a presence bitmap so every 2-gram becomes one
        small integer code, and both token interning and per-row *set*
        deduplication happen through pure array ops — no hashing, sorting on
        strings, or Python-level token loops at all.  Matches
        :func:`repro.similarity.tokenize.qgram_tokens` (q=2) exactly,
        including the whole-string token for normalized strings of length
        ``<= 2``.
        """
        unique, inverse = _intern_texts(texts)
        norms = [normalize(text) for text in unique]
        if any("\x00" in norm for norm in norms):
            # NUL inside a value would break the joined-buffer boundaries;
            # degenerate inputs take the generic (per-text) path.
            return cls(texts, qgram_tokens)
        self = cls.__new__(cls)
        # The vectorized path interns through array bitmaps, not dicts, so
        # there is no incremental state to keep: extend() is unsupported.
        self._tokenizer = None
        self._seen = None
        self._vocab = None
        self.row_of_text = inverse
        lengths = np.fromiter(
            (len(norm) for norm in norms), dtype=np.int64, count=len(norms)
        )
        joined = "\x00".join(norms)
        empty = not joined
        points = alphabet = None
        if not empty:
            points = np.frombuffer(joined.encode("utf-32-le"), dtype=np.uint32)
            # Remap codepoints onto a dense alphabet: ids start at 1, so a
            # single-char whole-string token (code = id, in [1, K]) can never
            # collide with a bigram code (id1 * (K + 1) + id2 >= K + 2).
            present = np.zeros(_BIGRAM_BASE, dtype=bool)
            present[points] = True
            alphabet = np.cumsum(present, dtype=np.int64)
            k = int(alphabet[-1])
            if k >= _MAX_BIGRAM_ALPHABET:  # pragma: no cover - pathological text
                return cls(texts, qgram_tokens)
        if empty:
            self.sizes = np.zeros(len(unique), dtype=np.int64)
            self.vocab_size = 0
            self.bits = np.zeros((max(1, len(unique)), 1), dtype=np.uint64)[
                : len(unique)
            ]
            return self
        ids = alphabet[points]
        base = k + 1
        spans = lengths + 1  # each text plus its trailing separator
        row_of_char = np.repeat(np.arange(len(norms), dtype=np.int64), spans)[
            : points.size
        ]
        codes = ids[:-1] * base + ids[1:]
        valid = (points[:-1] != 0) & (points[1:] != 0)
        flat_codes = codes[valid]
        flat_rows = row_of_char[:-1][valid]
        # Whole-string tokens of length-1 normalized strings.
        single_rows = np.flatnonzero(lengths == 1)
        if single_rows.size:
            starts = np.cumsum(spans) - spans
            flat_codes = np.concatenate((flat_codes, ids[starts[single_rows]]))
            flat_rows = np.concatenate((flat_rows, single_rows))
        # Intern codes into dense vocabulary ids with a second presence
        # bitmap (codes < base**2, a few MB at most).
        vocab_bitmap = np.zeros(base * base, dtype=bool)
        vocab_bitmap[flat_codes] = True
        dense_map = np.cumsum(vocab_bitmap, dtype=np.int64)
        self.vocab_size = int(dense_map[-1])
        dense_ids = dense_map[flat_codes] - 1
        # Duplicate (row, token) entries just OR the same bit twice, so the
        # packed matrix needs no prior dedup; distinct-token counts fall out
        # of the popcounts.
        self.bits = _pack_rows(len(unique), flat_rows, dense_ids, self.vocab_size)
        self.sizes = _popcount_rows(self.bits)
        return self

    def __len__(self) -> int:
        return self.bits.shape[0]

    def intersection_counts(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """``|tokens(left[i]) ∩ tokens(right[i])|`` for aligned row arrays."""
        total = np.empty(len(left), dtype=np.int64)
        row_bytes = self.bits.shape[1] * 8
        chunk = max(1024, _CHUNK_BYTES // row_bytes)
        for start in range(0, len(left), chunk):
            stop = start + chunk
            band = self.bits[left[start:stop]] & self.bits[right[start:stop]]
            total[start:stop] = _popcount_rows(band)
        return total

    def jaccard_pairs(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Jaccard similarity for aligned arrays of *text* indexes.

        *left*/*right* index into the original ``texts`` sequence; the
        empty-set conventions of the scalar :func:`jaccard` apply (two empty
        sets are identical, one empty set matches nothing).
        """
        rows_l = self.row_of_text[np.asarray(left, dtype=np.int64)]
        rows_r = self.row_of_text[np.asarray(right, dtype=np.int64)]
        inter = self.intersection_counts(rows_l, rows_r)
        union = self.sizes[rows_l] + self.sizes[rows_r] - inter
        with np.errstate(invalid="ignore"):
            scores = np.where(union > 0, inter / np.maximum(union, 1), 1.0)
        return scores


# --------------------------------------------------------------------------- #
# Edit-similarity runner: dedup + cache + length buckets (+ optional pool)
# --------------------------------------------------------------------------- #

_cached_edit_similarity = lru_cache(maxsize=1 << 15)(edit_similarity)


def _edit_chunk(string_pairs: list[tuple[str, str]]) -> list[float]:
    """Worker function for the process pool (must be module-level to pickle)."""
    return [edit_similarity(a, b) for a, b in string_pairs]


def _resolve_edit_workers(edit_workers: int | None) -> int:
    if edit_workers is not None:
        return max(1, int(edit_workers))
    raw = os.environ.get(EDIT_WORKERS_ENV, "")
    try:
        return max(1, int(raw)) if raw else 1
    except ValueError:
        return 1


def batch_edit_similarities(
    texts: Sequence[str],
    left: np.ndarray,
    right: np.ndarray,
    edit_workers: int | None = None,
) -> np.ndarray:
    """Edit similarity ``EDS(texts[left[i]], texts[right[i]])`` for all i.

    The quadratic DP cannot be vectorized the way set intersections can, so
    the batch win comes from doing strictly less work: string pairs are
    deduplicated (attribute columns repeat values heavily on ER data),
    identical-string pairs short-circuit to 1.0, survivors are processed in
    ascending max-length *buckets* (cheap problems first, and contiguous
    chunks of comparable cost so an optional :class:`ProcessPoolExecutor`
    balances), and a shared ``lru_cache`` absorbs repeats across calls.
    The per-pair function is the scalar :func:`edit_similarity` itself, so
    results are bit-identical to the reference path.
    """
    values, inverse = _intern_texts(texts)
    vi = inverse[np.asarray(left, dtype=np.int64)]
    vj = inverse[np.asarray(right, dtype=np.int64)]
    lo = np.minimum(vi, vj)
    hi = np.maximum(vi, vj)
    codes = lo * len(values) + hi
    unique_codes, scatter = np.unique(codes, return_inverse=True)
    unique_lo = unique_codes // len(values)
    unique_hi = unique_codes % len(values)

    sims = np.empty(len(unique_codes), dtype=np.float64)
    identical = unique_lo == unique_hi
    sims[identical] = 1.0

    todo = np.flatnonzero(~identical)
    if todo.size:
        lengths = np.fromiter((len(v) for v in values), dtype=np.int64, count=len(values))
        # Length-bucketed order: ascending max(|a|, |b|).
        order = todo[np.argsort(np.maximum(lengths[unique_lo[todo]], lengths[unique_hi[todo]]), kind="stable")]
        workers = _resolve_edit_workers(edit_workers)
        if workers > 1 and order.size >= _MIN_PAIRS_FOR_POOL:
            string_pairs = [(values[unique_lo[k]], values[unique_hi[k]]) for k in order]
            chunk = max(256, len(string_pairs) // (workers * 4))
            chunks = [string_pairs[i : i + chunk] for i in range(0, len(string_pairs), chunk)]
            try:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    results = list(pool.map(_edit_chunk, chunks))
                sims[order] = np.fromiter(
                    (score for chunk_scores in results for score in chunk_scores),
                    dtype=np.float64,
                    count=len(string_pairs),
                )
            except (OSError, ValueError, RuntimeError):  # pragma: no cover - env dependent
                for k in order:
                    sims[k] = _cached_edit_similarity(values[unique_lo[k]], values[unique_hi[k]])
        else:
            cached = _cached_edit_similarity
            for k in order:
                sims[k] = cached(values[unique_lo[k]], values[unique_hi[k]])
    return sims[scatter]


# --------------------------------------------------------------------------- #
# batch_similarity_matrix: the fast path of similarity_matrix
# --------------------------------------------------------------------------- #


def _column(table: Table, attribute: int) -> list[str]:
    return [record.values[attribute] for record in table]


def batch_similarity_matrix(
    table: Table,
    pairs: Sequence[Pair],
    config: SimilarityConfig,
    edit_workers: int | None = None,
) -> np.ndarray:
    """Vectorized drop-in for :func:`repro.similarity.vectors.similarity_matrix`.

    Per attribute the work is dispatched to a batch kernel:

    * ``"jaccard"`` — word-token Jaccard through a :class:`TokenIndex`;
    * ``"bigram"`` — 2-gram Jaccard through a :class:`TokenIndex`;
    * ``"edit"`` — :func:`batch_edit_similarities` (dedup + cache + buckets).

    The attribute clamp (``s < tau → 0``) is applied as a single numpy
    ``where``.  Equivalence with the scalar path is exact, not approximate:
    both reduce each component to the same integer-ratio division or the same
    :func:`edit_similarity` call.

    Args:
        table: the input table.
        pairs: candidate record pairs (row order of the result).
        config: per-attribute similarity functions and clamp ``tau``.
        edit_workers: process-pool width for edit-similarity attributes;
            defaults to the ``POWER_EDIT_WORKERS`` environment variable, else
            serial.
    """
    config.for_table(table)
    matrix = np.empty((len(pairs), config.num_attributes), dtype=np.float64)
    if not len(pairs):  # explicit empty-input fast path
        return matrix
    pair_array = np.asarray(pairs, dtype=np.int64)
    if pair_array.ndim != 2 or pair_array.shape[1] != 2:
        raise ConfigurationError(f"pairs must be (i, j) tuples, got shape {pair_array.shape}")
    left = np.minimum(pair_array[:, 0], pair_array[:, 1])
    right = np.maximum(pair_array[:, 0], pair_array[:, 1])
    for k, name in enumerate(config.functions):
        column = _column(table, k)
        if name == "jaccard":
            matrix[:, k] = TokenIndex(column, word_tokens).jaccard_pairs(left, right)
        elif name == "bigram":
            matrix[:, k] = TokenIndex.for_bigrams(column).jaccard_pairs(left, right)
        elif name == "edit":
            matrix[:, k] = batch_edit_similarities(column, left, right, edit_workers)
        else:  # pragma: no cover - future functions fall back to scalar
            from .vectors import resolve_function

            function = resolve_function(name)
            matrix[:, k] = [function(column[i], column[j]) for i, j in zip(left, right)]
    tau = config.attribute_threshold
    return np.where(matrix >= tau, matrix, 0.0)


# --------------------------------------------------------------------------- #
# Sparse record-level Jaccard self-join (the pruning step, vectorized)
# --------------------------------------------------------------------------- #


def sparse_jaccard_join(
    token_sets: Sequence[frozenset[str]], threshold: float
) -> set[Pair]:
    """All pairs with ``jaccard(token_sets[i], token_sets[j]) >= threshold``.

    An inverted-list join: records are scanned in id order; each record
    gathers the posting lists of its tokens (all earlier records sharing at
    least one token) and obtains every intersection size in one
    ``np.bincount``.  The verification ``∩ / ∪ >= t`` is then a vectorized
    int/int division — the exact same IEEE operation as the scalar
    :func:`jaccard` — so the result matches ``_naive_join`` pair for pair.

    Records with *empty* token sets follow the scalar convention (two empty
    sets have similarity 1.0) and are paired among themselves.
    """
    if not 0.0 < threshold <= 1.0:
        raise ConfigurationError(f"threshold must be in (0, 1], got {threshold}")
    vocab: dict[str, int] = {}
    rows: list[np.ndarray] = []
    for tokens in token_sets:
        rows.append(
            np.fromiter(
                (vocab.setdefault(token, len(vocab)) for token in tokens),
                dtype=np.int64,
            )
        )
    sizes = np.fromiter((ids.size for ids in rows), dtype=np.int64, count=len(rows))
    postings: list[list[int]] = [[] for _ in range(len(vocab))]
    pairs: set[Pair] = set()
    empties: list[int] = []
    for record_id, ids in enumerate(rows):
        if not ids.size:
            # jaccard(∅, ∅) == 1.0 >= threshold for every valid threshold.
            pairs.update((other, record_id) for other in empties)
            empties.append(record_id)
            continue
        gathered = [postings[token] for token in ids]
        flat: list[int] = []
        for posting in gathered:
            flat.extend(posting)
        if flat:
            counts = np.bincount(
                np.asarray(flat, dtype=np.int64), minlength=record_id
            )
            candidates = np.flatnonzero(counts)
            inter = counts[candidates]
            union = sizes[candidates] + ids.size - inter
            keep = candidates[(inter / union) >= threshold]
            pairs.update((int(other), record_id) for other in keep)
        for token in ids:
            postings[token].append(record_id)
    return pairs
