"""Jaccard similarity on token sets (paper Eq. 1)."""

from __future__ import annotations

from collections.abc import Set

from .tokenize import qgram_tokens, word_tokens


def jaccard(tokens_a: Set[str], tokens_b: Set[str]) -> float:
    """Return ``|A ∩ B| / |A ∪ B|`` for two token sets.

    Two empty sets are defined to be identical (similarity 1.0), matching the
    convention used for edit similarity on empty strings.
    """
    if not tokens_a and not tokens_b:
        return 1.0
    if not tokens_a or not tokens_b:
        return 0.0
    intersection = len(tokens_a & tokens_b)
    if intersection == 0:
        return 0.0
    union = len(tokens_a) + len(tokens_b) - intersection
    return intersection / union


def token_jaccard(a: str, b: str) -> float:
    """Jaccard similarity of the word-token sets of two strings (Eq. 1)."""
    return jaccard(word_tokens(a), word_tokens(b))


def qgram_jaccard(a: str, b: str, q: int = 2) -> float:
    """Jaccard similarity of the *q*-gram sets of two strings.

    With ``q=2`` this is the paper's default "bigram" similarity (§7.1).
    """
    return jaccard(qgram_tokens(a, q), qgram_tokens(b, q))


def bigram_jaccard(a: str, b: str) -> float:
    """Bigram Jaccard similarity — the paper's default similarity function."""
    return qgram_jaccard(a, b, q=2)
