"""Similarity substrate: tokenizers, string similarities, vectors, joins.

Scalar reference implementations live in :mod:`.jaccard`, :mod:`.edit`,
:mod:`.vectors` and :mod:`.join`; the vectorized production fast paths live
in :mod:`.batch` and are equivalence-tested against the references.
"""

from .batch import TokenIndex, batch_similarity_matrix, sparse_jaccard_join
from .edit import edit_distance, edit_distance_within, edit_similarity
from .jaccard import bigram_jaccard, jaccard, qgram_jaccard, token_jaccard
from .join import (
    AUTO_PREFIX_CROSSOVER,
    JOIN_METHODS,
    similar_pairs,
    similar_pairs_edit,
    similar_pairs_range,
    top_k_pairs,
)
from .tokenize import normalize, qgram_tokens, word_tokens
from .vectors import (
    SIMILARITY_FUNCTIONS,
    SimilarityConfig,
    attribute_similarities,
    resolve_function,
    resolve_functions,
    similarity_matrix,
)

__all__ = [
    "AUTO_PREFIX_CROSSOVER",
    "JOIN_METHODS",
    "SIMILARITY_FUNCTIONS",
    "SimilarityConfig",
    "TokenIndex",
    "attribute_similarities",
    "batch_similarity_matrix",
    "bigram_jaccard",
    "edit_distance",
    "edit_distance_within",
    "edit_similarity",
    "jaccard",
    "normalize",
    "qgram_jaccard",
    "qgram_tokens",
    "resolve_function",
    "resolve_functions",
    "similar_pairs",
    "similar_pairs_edit",
    "similar_pairs_range",
    "similarity_matrix",
    "sparse_jaccard_join",
    "token_jaccard",
    "top_k_pairs",
    "word_tokens",
]
