"""Similarity substrate: tokenizers, string similarities, vectors, joins."""

from .edit import edit_distance, edit_distance_within, edit_similarity
from .jaccard import bigram_jaccard, jaccard, qgram_jaccard, token_jaccard
from .join import similar_pairs, similar_pairs_edit, top_k_pairs
from .tokenize import normalize, qgram_tokens, word_tokens
from .vectors import (
    SIMILARITY_FUNCTIONS,
    SimilarityConfig,
    attribute_similarities,
    resolve_function,
    similarity_matrix,
)

__all__ = [
    "SIMILARITY_FUNCTIONS",
    "SimilarityConfig",
    "attribute_similarities",
    "bigram_jaccard",
    "edit_distance",
    "edit_distance_within",
    "edit_similarity",
    "jaccard",
    "normalize",
    "qgram_jaccard",
    "qgram_tokens",
    "resolve_function",
    "similar_pairs",
    "similar_pairs_edit",
    "similarity_matrix",
    "token_jaccard",
    "top_k_pairs",
    "word_tokens",
]
