"""Tokenizers used by the similarity functions.

The paper (Section 3.1) computes Jaccard similarity on word-token sets and
"bigram Jaccard" on 2-gram sets (Section 7.1).  These helpers normalise the
string once (lower-case, collapse whitespace) so that every similarity
function in the package sees identical token streams.
"""

from __future__ import annotations

import re
from functools import lru_cache

_WORD_RE = re.compile(r"[a-z0-9]+")


def normalize(text: str) -> str:
    """Lower-case *text* and collapse runs of whitespace to single spaces."""
    return " ".join(text.lower().split())


@lru_cache(maxsize=1 << 16)
def word_tokens(text: str) -> frozenset[str]:
    """Return the set of alphanumeric word tokens of *text* (lower-cased).

    Punctuation acts purely as a separator, matching the paper's treatment of
    values such as ``"ritz-carlton restaurant (atlanta)"``.
    """
    return frozenset(_WORD_RE.findall(text.lower()))


@lru_cache(maxsize=1 << 16)
def qgram_tokens(text: str, q: int = 2) -> frozenset[str]:
    """Return the set of *q*-grams (default bigrams) of the normalised text.

    A *q*-gram is a length-``q`` substring.  Strings shorter than ``q`` yield
    the whole string as a single token so that non-empty values never produce
    an empty token set.
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    norm = normalize(text)
    if not norm:
        return frozenset()
    if len(norm) <= q:
        return frozenset((norm,))
    return frozenset(norm[i : i + q] for i in range(len(norm) - q + 1))
