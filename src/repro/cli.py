"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — write one of the benchmark datasets to CSV.
* ``stats`` — dataset and partial-order statistics for a CSV.
* ``resolve`` — run the Power/Power+ pipeline on a CSV (simulated crowd
  from its ``entity_id`` column) and write the resolved clusters.
* ``simulate`` — drive a resolution run through the :mod:`repro.engine`
  orchestration runtime (fault injection, retries, budgets, journal,
  telemetry) on one of the benchmark datasets.
* ``experiment`` — run one of the paper's figure/table harnesses by name.
* ``verify`` — run the :mod:`repro.verify` correctness battery
  (differential oracles, invariants, metamorphic laws, mutation self-test).
* ``shard`` — resolve a benchmark dataset through the
  :class:`~repro.shard.ShardedResolver` (partitioned multi-process
  resolution), optionally checking byte-level equivalence with the serial
  resolver.
* ``serve`` — run the :mod:`repro.serve` multi-tenant resolution server:
  many isolated streaming sessions behind one asyncio line-protocol
  endpoint, with LRU eviction to the snapshot store, admission control,
  and a graceful SIGTERM drain that checkpoints every live session.
* ``client`` — talk to a running server (or ``--spawn`` a private one):
  health/metrics probes, CSV ingestion in batches, cluster queries.
* ``trace`` — render a span trace recorded by ``--trace`` as an indented
  timing tree (or dump the raw flat records with ``--json``).
* ``plan`` — the :mod:`repro.plan` cost planner: ``--calibrate`` runs the
  seeded micro-benchmarks and saves a versioned host profile,
  ``--explain`` prints the plan tree (chosen knobs, predicted stage
  costs, rejected alternatives) for a benchmark dataset.

``resolve``, ``simulate``, and ``shard`` share the observability flags:
``--trace FILE`` records a hierarchical span trace, ``--metrics-out FILE``
writes the metrics registry (Prometheus text for ``.prom``/``.txt``, JSON
otherwise), and ``--profile`` samples CPU stacks and prints the hottest
frames.  All three are off by default and provably transparent — the
``observability-transparent`` battery checks assert instrumented runs are
byte-identical to plain ones.

The ``experiment`` sub-command's name list and help text are generated
from :data:`EXPERIMENTS`, so registering a harness there is the *only*
step needed to expose it (no drift between the registry and the CLI).
"""

from __future__ import annotations

import argparse
import contextlib
import csv
import functools
import sys
from pathlib import Path

from .core import PowerConfig, PowerResolver
from .data import load_csv, load_dataset, num_entities, save_csv
from .exceptions import PowerError
from .experiments import ablations, figures
from .graph import PairGraph, order_statistics
from .similarity import SimilarityConfig, similar_pairs, similarity_matrix

EXPERIMENTS = {
    "table2": figures.table2_similarity,
    "table3": figures.table3_datasets,
    "fig09-11": functools.partial(figures.accuracy_sweep, mode="real"),
    "fig12-14": functools.partial(figures.accuracy_sweep, mode="simulation"),
    "fig15-17": figures.similarity_function_sweep,
    "fig20": figures.construction_benchmark,
    "fig21-22": figures.grouping_benchmark,
    "fig23-24": figures.group_vs_nongroup,
    "fig25-26": figures.serial_selection,
    "fig27-30": figures.parallel_selection,
    "fig31-33": figures.error_tolerant_sweep,
    "fig34": figures.attribute_sweep,
    "ablation-confidence": ablations.confidence_sweep,
    "ablation-histograms": ablations.histogram_sweep,
    "ablation-paths": ablations.path_cover_compare,
    "ablation-topo": ablations.topo_layer_sweep,
    "ablation-aggregation": ablations.aggregation_compare,
    "ablation-budget": ablations.budget_curve,
    "ablation-index": ablations.index_dimensionality,
    "extension-incremental": ablations.incremental_compare,
    "extension-spammers": ablations.spammer_sweep,
    "extension-baselines": ablations.extended_baselines,
    "extension-scalability": ablations.scalability_sweep,
    "extension-latency": ablations.latency_compare,
    "extension-assignment": ablations.assignment_compare,
    "extension-faults": ablations.fault_sweep,
}


def experiments_help() -> str:
    """One help line per registered experiment, generated from the dict.

    The summary is the first docstring line of the harness (unwrapping
    ``functools.partial``), so the CLI help can never drift from the
    registry: add an entry to :data:`EXPERIMENTS` and it shows up here and
    in the ``choices`` list automatically.
    """
    lines = []
    for name in sorted(EXPERIMENTS):
        harness = EXPERIMENTS[name]
        target = harness.func if isinstance(harness, functools.partial) else harness
        doc = (target.__doc__ or "").strip()
        summary = doc.splitlines()[0] if doc else ""
        lines.append(f"  {name:24s}{summary}")
    return "\n".join(lines)


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared ``--trace`` / ``--metrics-out`` / ``--profile`` flags."""
    group = parser.add_argument_group("observability")
    group.add_argument("--trace", type=Path, default=None, metavar="FILE",
                       help="record a hierarchical span trace of the run "
                            "to this JSONL file (render with 'repro trace')")
    group.add_argument("--metrics-out", type=Path, default=None,
                       metavar="FILE",
                       help="write the run's metrics registry here "
                            "(.prom/.txt = Prometheus text, else JSON)")
    group.add_argument("--profile", action="store_true",
                       help="sample CPU stacks during the run and print "
                            "the hottest frames")


@contextlib.contextmanager
def _observed(args):
    """Activate observability for a command body, per its CLI flags.

    Yields the live :class:`~repro.obs.Observability` handle (or ``None``
    when no flag asked for one); on clean exit writes the trace and
    metrics files and prints the profiler report.
    """
    from .obs import Observability, SamplingProfiler, activated
    from .obs import profiler as obs_profiler

    tracing = args.trace is not None
    metrics = args.metrics_out is not None
    if not (tracing or metrics or args.profile):
        yield None
        return
    profiler = None
    if args.profile:
        if obs_profiler.SUPPORTED:
            profiler = SamplingProfiler()
        else:
            print("profiling needs signal.setitimer (POSIX); continuing "
                  "without it", file=sys.stderr)
    obs = Observability(tracing=tracing, metrics=metrics, profiler=profiler)
    with activated(obs):
        if profiler is not None:
            profiler.start()
        try:
            yield obs
        finally:
            if profiler is not None:
                profiler.stop()
    _write_obs_outputs(args, obs)


def _write_obs_outputs(args, obs) -> None:
    from .obs import write_metrics, write_trace

    if args.trace is not None:
        write_trace(obs.tracer.export(), args.trace)
        print(f"trace      : {args.trace}")
    if args.metrics_out is not None:
        write_metrics(obs.registry, args.metrics_out)
        print(f"metrics    : {args.metrics_out}")
    if obs.profiler is not None:
        print(obs.profiler.report())


def _print_round_table(per_round: list[dict], limit: int = 30) -> None:
    """The unified per-round selection table (``repro simulate``)."""
    if not per_round:
        return
    print("  round  asked  colored  cover(ms)  propagate(ms)")
    rows = per_round if len(per_round) <= limit else per_round[:limit]
    for row in rows:
        print(f"  {row['round']:>5}  {row['asked']:>5}  {row['colored']:>7}  "
              f"{row['cover_seconds'] * 1000:>9.2f}  "
              f"{row['propagate_seconds'] * 1000:>13.2f}")
    if len(per_round) > limit:
        print(f"  ... ({len(per_round) - limit} more rounds)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Power/Power+ crowdsourced entity resolution (SIGMOD 2016 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="write a benchmark dataset to CSV")
    generate.add_argument("dataset", choices=["restaurant", "cora", "acmpub"])
    generate.add_argument("output", type=Path)
    generate.add_argument("--seed", type=int, default=None)
    generate.add_argument("--scale", type=float, default=None,
                          help="acmpub only: fraction of the published size")

    stats = commands.add_parser("stats", help="dataset and partial-order statistics")
    stats.add_argument("input", type=Path)
    stats.add_argument("--threshold", type=float, default=0.2,
                       help="record-level pruning threshold")
    stats.add_argument("--similarity", default="bigram",
                       choices=["bigram", "jaccard", "edit"])

    resolve = commands.add_parser("resolve", help="resolve a CSV with Power/Power+")
    resolve.add_argument("input", type=Path)
    resolve.add_argument("--output", type=Path, default=None,
                         help="write records + resolved cluster ids here")
    resolve.add_argument("--selector", default="power",
                         choices=["power", "single-path", "multi-path", "random"])
    resolve.add_argument("--similarity", default="bigram",
                         choices=["bigram", "jaccard", "edit"])
    resolve.add_argument("--threshold", type=float, default=0.2)
    resolve.add_argument("--epsilon", type=float, default=0.1,
                         help="grouping threshold; 0 disables grouping")
    resolve.add_argument("--band", default="90", choices=["70", "80", "90"],
                         help="simulated worker accuracy band")
    resolve.add_argument("--budget", type=int, default=None,
                         help="maximum crowd questions")
    resolve.add_argument("--no-error-tolerant", action="store_true",
                         help="run plain Power instead of Power+")
    resolve.add_argument("--seed", type=int, default=0)
    _add_obs_arguments(resolve)

    simulate = commands.add_parser(
        "simulate",
        help="drive a run through the fault-injecting orchestration engine",
        description=(
            "Run one resolution algorithm through the repro.engine runtime: "
            "selection rounds are posted as HIT batches onto a simulated "
            "platform with injectable faults, retry/backoff re-posting, "
            "budget guardrails, a crash-resumable answer journal, and "
            "per-run telemetry written to the output directory."
        ),
    )
    simulate.add_argument("--dataset", default="restaurant",
                          choices=["restaurant", "cora", "acmpub"])
    simulate.add_argument("--fault-profile", default="none",
                          help="none, flaky, hostile, or scaled:<rate>")
    simulate.add_argument("--method", default="power+",
                          choices=["power", "power+", "trans", "acd", "gcer",
                                   "crowder"])
    simulate.add_argument("--band", default="90", choices=["70", "80", "90"],
                          help="simulated worker accuracy band")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--budget-cents", type=float, default=None,
                          help="money guardrail (incl. re-post surcharge)")
    simulate.add_argument("--budget-questions", type=int, default=None,
                          help="distinct-question guardrail")
    simulate.add_argument("--out-dir", type=Path,
                          default=Path("benchmarks") / "results",
                          help="where the journal + telemetry land")
    simulate.add_argument("--journal", type=Path, default=None,
                          help="explicit journal path (overrides --out-dir)")
    simulate.add_argument("--resume", action="store_true",
                          help="resume from an existing journal instead of "
                               "starting fresh")
    simulate.add_argument("--no-rounds-table", action="store_true",
                          help="suppress the per-round selection table")
    _add_obs_arguments(simulate)

    experiment = commands.add_parser(
        "experiment",
        help="run one of the paper's figure/table harnesses",
        description="Registered experiments:\n" + experiments_help(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))
    experiment.add_argument("--save-to", type=Path, default=None)

    verify = commands.add_parser(
        "verify",
        help="run the differential-oracle / invariant verification battery",
        description=(
            "Run the repro.verify battery: brute-force differential oracles "
            "(dominance kernels, batch similarity, joins, crowd aggregation, "
            "production-vs-naive selector runs), structural invariants "
            "(partial-order laws, topo layering, path covers, billing "
            "coherence), metamorphic laws (permutation invariance, duplicate "
            "idempotence, cost monotonicity), and a seeded-mutation "
            "self-test proving the checks detect injected bugs."
        ),
    )
    verify.add_argument("--dataset", default="restaurant",
                        choices=["restaurant", "cora", "acmpub", "products"])
    verify.add_argument("--scale", type=float, default=0.05,
                        help="fraction of the dataset's records to verify on")
    verify.add_argument("--seeds", type=int, default=10,
                        help="random-matrix seeds for the synthetic sweeps")
    verify.add_argument("--seed", type=int, default=0, help="base seed")
    verify.add_argument("--skip-mutation", action="store_true",
                        help="skip the seeded-mutant self-test")
    verify.add_argument("--skip-metamorphic", action="store_true",
                        help="skip the dataset metamorphic laws")
    verify.add_argument("--quiet", action="store_true",
                        help="print failures and the verdict only")

    shard = commands.add_parser(
        "shard",
        help="resolve through the partitioned multi-process resolver",
        description=(
            "Run a benchmark dataset through repro.shard.ShardedResolver: "
            "the candidate join, similarity vectors, dominance adjacency, "
            "and inference propagation are partitioned across worker "
            "processes and merged deterministically.  The default 'exact' "
            "mode produces byte-identical results to the serial "
            "PowerResolver at any worker/shard count; 'independent' runs "
            "one resolution loop per shard of the candidate graph and "
            "merges matches, billing, and telemetry."
        ),
    )
    shard.add_argument("--dataset", default="restaurant",
                       choices=["restaurant", "cora", "acmpub"])
    shard.add_argument("--scale", type=float, default=1.0,
                       help="fraction of the dataset's records to resolve")
    shard.add_argument("--workers", type=int, default=None,
                       help="worker processes (0 = inline, deterministic "
                            "and dependency-free; default: cpu count)")
    shard.add_argument("--shards", type=int, default=None,
                       help="shard work units (default: one per worker)")
    shard.add_argument("--mode", default="exact",
                       choices=["exact", "independent"],
                       help="exact = bit-identical lockstep; independent = "
                            "per-shard resolution loops")
    shard.add_argument("--max-pairs", type=int, default=None,
                       help="independent mode: split components larger "
                            "than this many candidate pairs")
    shard.add_argument("--band", default="90", choices=["70", "80", "90"],
                       help="simulated worker accuracy band")
    shard.add_argument("--budget", type=int, default=None,
                       help="global distinct-question budget")
    shard.add_argument("--budget-cents", type=float, default=None,
                       help="global money budget (converted through the "
                            "BudgetGuard billing inversion)")
    shard.add_argument("--timeout", type=float, default=None,
                       help="per-task seconds before a worker is declared "
                            "hung")
    shard.add_argument("--seed", type=int, default=0)
    shard.add_argument("--check-equivalence", action="store_true",
                       help="also run the serial resolver and assert the "
                            "sharded result is identical (exact mode only)")
    _add_obs_arguments(shard)

    stream = commands.add_parser(
        "stream",
        help="durable streaming resolution with checkpoint/restore",
        description=(
            "Feed a labeled CSV through repro.stream.StreamingResolver in "
            "record batches: each batch is resolved incrementally (only "
            "new-vs-old and new-vs-new candidate pairs are ever asked), and "
            "with --checkpoint-dir every completed batch is snapshotted to "
            "a versioned, content-addressed checkpoint.  A killed run "
            "resumes with --resume from the last complete batch — "
            "bit-identically, without re-asking any paid pair."
        ),
    )
    stream.add_argument("input", type=Path,
                        help="CSV with an entity_id column (the simulated "
                             "crowd's ground truth)")
    stream.add_argument("--batch-size", type=int, default=50,
                        help="records ingested per batch (0 = let the cost "
                             "planner size batches for this host)")
    stream.add_argument("--checkpoint-dir", type=Path, default=None,
                        help="snapshot directory; one checkpoint is "
                             "written after every batch")
    stream.add_argument("--resume", action="store_true",
                        help="restore from --checkpoint-dir and continue "
                             "the stream from the last complete batch")
    stream.add_argument("--max-batches", type=int, default=None,
                        help="stop after this many (new) batches")
    stream.add_argument("--band", default="90", choices=["70", "80", "90"],
                        help="simulated worker accuracy band")
    stream.add_argument("--shard-threshold", type=int, default=None,
                        help="route a batch's similarity vectors through "
                             "the shard executor when it has at least this "
                             "many candidate pairs")
    stream.add_argument("--seed", type=int, default=0)
    _add_obs_arguments(stream)

    serve = commands.add_parser(
        "serve",
        help="run the multi-tenant async resolution server",
        description=(
            "Host many isolated streaming-resolution sessions behind one "
            "asyncio JSON-lines endpoint (repro.serve).  Each session is a "
            "single-writer actor over a StreamingResolver; resident memory "
            "is bounded by LRU eviction to the snapshot store (sessions "
            "restore transparently on the next touch), ingest is guarded "
            "by per-session admission control with explicit retry_after "
            "load shedding, and SIGTERM/SIGINT drains gracefully: every "
            "live session is checkpointed before exit, so no paid crowd "
            "answer is ever lost.  The same port answers plain HTTP GET "
            "/healthz and /metrics (Prometheus text)."
        ),
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port; 0 picks an ephemeral port (the "
                            "bound port is printed on startup)")
    serve.add_argument("--checkpoint-root", type=Path, required=True,
                       help="directory holding one snapshot subdirectory "
                            "per session (eviction + drain target)")
    serve.add_argument("--max-sessions", type=int, default=8,
                       help="LRU cap on resolver sessions held in memory")
    serve.add_argument("--rate", type=float, default=0.0,
                       help="per-session sustained ingests/second "
                            "(0 = unlimited)")
    serve.add_argument("--burst", type=float, default=4.0,
                       help="per-session token-bucket burst capacity")
    serve.add_argument("--queue-depth", type=int, default=4,
                       help="per-session bounded ingest queue; beyond it "
                            "requests are shed with retry_after")
    serve.add_argument("--crowd-latency", type=float, default=0.0,
                       help="simulated crowd round-trip seconds awaited "
                            "per ingested batch (timing only, never state)")

    client = commands.add_parser(
        "client",
        help="talk to a running resolution server",
        description=(
            "Drive a repro.serve server over its JSON-lines protocol: "
            "probe health/metrics, ingest a labeled CSV in batches into a "
            "named session, query its clusters, or close it.  With "
            "--spawn DIR a private server is launched on an ephemeral "
            "port with that checkpoint root, used for the action, and "
            "drained with SIGTERM afterwards."
        ),
    )
    client.add_argument("action",
                        choices=["health", "metrics", "ingest-csv",
                                 "clusters", "checkpoint", "close"])
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=None,
                        help="server port (required unless --spawn)")
    client.add_argument("--session", default=None,
                        help="session name (session actions)")
    client.add_argument("--input", type=Path, default=None,
                        help="labeled CSV to ingest (ingest-csv)")
    client.add_argument("--batch-size", type=int, default=50,
                        help="records per ingest request")
    client.add_argument("--band", default="90", choices=["70", "80", "90"],
                        help="simulated worker accuracy band")
    client.add_argument("--seed", type=int, default=0,
                        help="session config seed (ingest-csv create)")
    client.add_argument("--spawn", type=Path, default=None,
                        metavar="CHECKPOINT_ROOT",
                        help="launch a private server with this checkpoint "
                             "root for the duration of the action")

    trace = commands.add_parser(
        "trace",
        help="render a span trace recorded with --trace",
        description=(
            "Read a JSONL span trace (written by the --trace flag of "
            "resolve/simulate/shard) and print it as an indented timing "
            "tree: wall and CPU milliseconds per span, attributes, and "
            "error markers.  Shard workers' spans appear grafted under "
            "the coordinator in task order."
        ),
    )
    trace.add_argument("input", type=Path, help="trace JSONL file")
    trace.add_argument("--max-depth", type=int, default=None,
                       help="hide spans nested deeper than this")
    trace.add_argument("--min-ms", type=float, default=0.0,
                       help="hide non-root spans shorter than this")
    trace.add_argument("--json", action="store_true",
                       help="dump the raw flat span records instead of "
                            "the tree")

    plan = commands.add_parser(
        "plan",
        help="calibrate the host cost profile / explain a pipeline plan",
        description=(
            "Drive the repro.plan cost planner.  --calibrate runs seeded "
            "micro-benchmarks of every pipeline stage and saves a versioned "
            "per-host coefficient profile; --explain plans a benchmark "
            "dataset against a profile and prints the plan tree: chosen "
            "knobs, predicted stage costs, and the rejected alternatives. "
            "Plans never change results — only runtime — and the "
            "plan-transparency battery checks prove it."
        ),
    )
    plan.add_argument("--calibrate", action="store_true",
                      help="micro-benchmark this host and save the profile")
    plan.add_argument("--fast", action="store_true",
                      help="shrink the calibration workloads (quicker, "
                           "noisier coefficients)")
    plan.add_argument("--explain", action="store_true",
                      help="print the plan tree for --dataset/--scale")
    plan.add_argument("--dataset", default="restaurant",
                      choices=["restaurant", "cora", "acmpub", "products"])
    plan.add_argument("--scale", type=float, default=1.0,
                      help="fraction of the dataset's records to plan for")
    plan.add_argument("--profile", type=Path, default=None,
                      help="profile path (default: $REPRO_PLAN_PROFILE or "
                           "~/.cache/repro/plan_profile.json)")
    plan.add_argument("--seed", type=int, default=0,
                      help="calibration / sampling seed")
    return parser


def _command_generate(args) -> int:
    kwargs = {}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.scale is not None:
        if args.dataset != "acmpub":
            print("--scale only applies to acmpub", file=sys.stderr)
            return 2
        kwargs["scale"] = args.scale
    table = load_dataset(args.dataset, **kwargs)
    save_csv(table, args.output)
    print(
        f"wrote {len(table)} records / {num_entities(table)} entities "
        f"to {args.output}"
    )
    return 0


def _command_stats(args) -> int:
    table = load_csv(args.input)
    print(f"dataset   : {table.name}")
    print(f"records   : {len(table)}")
    print(f"attributes: {table.num_attributes} {table.attributes}")
    if table.has_ground_truth():
        print(f"entities  : {num_entities(table)}")
    pairs = similar_pairs(table, args.threshold)
    print(f"candidate pairs (threshold {args.threshold}): {len(pairs)}")
    if pairs:
        config = SimilarityConfig.uniform(table.num_attributes, function=args.similarity)
        vectors = similarity_matrix(table, pairs, config)
        graph = PairGraph(pairs, vectors)
        compute_width = len(pairs) <= 5000
        print(f"partial order: {order_statistics(graph, compute_width=compute_width)}")
    return 0


def _command_resolve(args) -> int:
    table = load_csv(args.input)
    if not table.has_ground_truth():
        print(
            "resolve needs an entity_id column to simulate the crowd; "
            "for a real crowd, use the library API with your own session",
            file=sys.stderr,
        )
        return 2
    config = PowerConfig(
        similarity=args.similarity,
        pruning_threshold=args.threshold,
        epsilon=args.epsilon if args.epsilon > 0 else None,
        selector=args.selector,
        error_tolerant=not args.no_error_tolerant,
        seed=args.seed,
    )
    resolver = PowerResolver(config)
    with _observed(args):
        if args.budget is not None:
            pairs = resolver.candidate_pairs(table)
            graph = resolver.build_graph(table, pairs)
            session = resolver.simulated_crowd(table, pairs, args.band).session()
            selection = resolver.make_selector().run(
                graph, session, budget=args.budget
            )
            from .core import pairwise_quality
            from .core.clustering import clusters_from_matches
            from .data import true_match_pairs

            matches = selection.matches
            clusters = clusters_from_matches(len(table), matches)
            quality = pairwise_quality(matches, true_match_pairs(table))
            questions, iterations, cost = (
                selection.questions, selection.iterations, selection.cost_cents,
            )
        else:
            result = resolver.resolve(table, worker_band=args.band)
            clusters, quality = result.clusters, result.quality
            questions, iterations, cost = (
                result.questions, result.iterations, result.cost_cents,
            )
    print(f"questions : {questions}")
    print(f"iterations: {iterations}")
    print(f"cost      : {cost / 100:.2f} USD")
    print(f"clusters  : {len(clusters)}")
    print(f"quality   : {quality}")
    if args.output is not None:
        with args.output.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(list(table.attributes) + ["cluster_id"])
            cluster_of = {
                record: index
                for index, members in enumerate(clusters)
                for record in members
            }
            for record in table:
                writer.writerow(
                    list(record.values) + [cluster_of[record.record_id]]
                )
        print(f"wrote clusters to {args.output}")
    return 0


def _command_simulate(args) -> int:
    from .crowd.latency import LatencyModel
    from .engine import CrowdEngine, EngineConfig, resolve_profile
    from .experiments.runner import make_crowd, prepare, run_method

    profile = resolve_profile(args.fault_profile)
    label = profile.name.replace(":", "-")
    journal_path = args.journal
    if journal_path is None:
        journal_path = args.out_dir / f"SIM_{args.dataset}_{label}.journal.jsonl"
    if not args.resume and journal_path.exists():
        journal_path.unlink()  # a fresh run must not replay a stale journal

    with _observed(args):
        workload = prepare(args.dataset)
        crowd = make_crowd(workload, args.band, args.seed, mode="simulation")
        engine = CrowdEngine(EngineConfig(
            faults=profile,
            seed=args.seed,
            max_cents=args.budget_cents,
            max_questions=args.budget_questions,
            journal_path=journal_path,
            resume=args.resume,
        ))
        row = run_method(
            args.method, workload, crowd, seed=args.seed, engine=engine
        )

    telemetry = engine.telemetry
    estimate = LatencyModel().estimate_seconds(row.extras.get("batch_sizes", []))
    print(f"dataset        : {args.dataset} (band {args.band}, seed {args.seed})")
    print(f"method         : {args.method}")
    print(f"fault profile  : {profile.name}")
    print(f"questions      : {row.questions}")
    print(f"iterations     : {row.iterations}")
    selection = row.extras.get("selection")
    if selection:
        print(f"selection      : rounds {selection['rounds']}  "
              f"cover {selection['cover_seconds']:.3f}s  "
              f"propagate {selection['propagate_seconds']:.3f}s  "
              f"incremental {'on' if selection['incremental'] else 'off'}")
        engine_stats = selection.get("engine")
        if engine_stats:
            print(f"path-cover     : covers {engine_stats['covers']}  "
                  f"scratch builds {engine_stats['scratch_builds']}  "
                  f"deleted vertices {engine_stats['deleted_vertices']}")
        if not args.no_rounds_table:
            _print_round_table(selection.get("per_round", []))
    print(f"F1             : {row.f_measure:.3f}")
    print(f"billed         : {row.cost_cents / 100:.2f} USD")
    print(f"total spent    : {telemetry.total_spent_cents / 100:.2f} USD "
          f"(re-posts {telemetry.repost_cents / 100:.2f} USD)")
    print(f"wall clock     : {telemetry.wall_clock_seconds / 60:.1f} min "
          f"(fault-free closed form {estimate / 60:.1f} min)")
    print(f"re-posts       : {telemetry.re_posts}  expired: {telemetry.expired}  "
          f"abandoned: {telemetry.abandoned}  machine: {telemetry.machine_answers}  "
          f"spam: {telemetry.spam_hijacked}")
    print(f"journal        : {journal_path}")
    print(f"telemetry      : {journal_path.with_suffix('.telemetry.json')}")
    return 0


def _command_experiment(args) -> int:
    harness = EXPERIMENTS[args.name]
    harness(save_to=args.save_to)
    return 0


def _command_stream(args) -> int:
    from .exceptions import DataError
    from .stream import StreamingResolver

    table = load_csv(args.input)
    if not table.has_ground_truth():
        print(
            "stream needs an entity_id column to simulate the crowd; "
            "for a real crowd, use the library API with your own session",
            file=sys.stderr,
        )
        return 2
    if args.batch_size < 0:
        print("--batch-size must be >= 1 (or 0 for the planner's choice)",
              file=sys.stderr)
        return 2
    if args.batch_size == 0:
        from .plan import hooks as plan_hooks
        from .similarity.tokenize import word_tokens

        sample = table.records[:200]
        avg_tokens = (
            sum(len(word_tokens(" ".join(r.values))) for r in sample)
            / max(1, len(sample))
        )
        args.batch_size = plan_hooks.planned_stream_batch(avg_tokens)
        print(f"planned batch size: {args.batch_size} "
              f"(~{avg_tokens:.1f} tokens/record)")
    if args.resume:
        if args.checkpoint_dir is None:
            print("--resume requires --checkpoint-dir", file=sys.stderr)
            return 2
        resolver = StreamingResolver.restore(args.checkpoint_dir)
        if tuple(resolver.table.attributes) != tuple(table.attributes):
            raise DataError(
                f"checkpoint schema {resolver.table.attributes} does not "
                f"match {args.input}'s columns {table.attributes}"
            )
        print(
            f"resumed from batch {resolver.batches} "
            f"({len(resolver.table)} records, "
            f"{resolver.total_questions} questions already paid)"
        )
    else:
        resolver = StreamingResolver(
            table.attributes,
            config=PowerConfig(seed=args.seed),
            name=table.name,
            checkpoint_dir=args.checkpoint_dir,
            worker_band=args.band,
            shard_threshold=args.shard_threshold,
        )
    offset = len(resolver.table)
    records = table.records[offset:]
    ran = 0
    # Graceful shutdown: SIGTERM/SIGINT set a flag instead of killing the
    # process mid-batch.  The current batch finishes and its checkpoint is
    # flushed whole (no torn manifest tail to repair), then the stream
    # stops cleanly — resumable with --resume, no paid answer lost.
    import signal

    stop_signal: list[int] = []

    def _request_stop(signum, frame):
        stop_signal.append(signum)

    previous_handlers = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous_handlers[signum] = signal.signal(signum, _request_stop)
        except (ValueError, OSError):
            pass  # not the main thread / unsupported platform
    try:
        with _observed(args):
            for start in range(0, len(records), args.batch_size):
                if stop_signal:
                    break
                if args.max_batches is not None and ran >= args.max_batches:
                    break
                chunk = records[start : start + args.batch_size]
                report = resolver.add_batch(
                    [record.values for record in chunk],
                    entity_ids=[record.entity_id for record in chunk],
                )
                line = (
                    f"batch {report['batch']}: +{report['new_records']} records, "
                    f"{report['new_pairs']} pairs, {report['questions']} "
                    f"questions, clusters={report['clusters']}"
                )
                if args.checkpoint_dir is not None:
                    checkpoint = resolver.checkpoint()
                    line += f", checkpoint {checkpoint['state_sha'][:12]}"
                print(line, flush=True)
                ran += 1
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
    if stop_signal:
        print(
            f"received signal {stop_signal[0]}; stopped cleanly after "
            f"batch {resolver.batches} (checkpoint flushed, resume with "
            "--resume)",
            flush=True,
        )
    if ran == 0 and not stop_signal:
        print("no new records to ingest")
    print(resolver.summary())
    return 0


def _command_serve(args) -> int:
    import asyncio
    import signal

    from .obs import Observability, activated
    from .serve import ServeApp, run_server

    async def runner() -> list[dict]:
        app = ServeApp(
            args.checkpoint_root,
            max_sessions=args.max_sessions,
            rate=args.rate,
            burst=args.burst,
            queue_depth=args.queue_depth,
            crowd_latency=args.crowd_latency,
        )
        loop = asyncio.get_running_loop()
        shutdown = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, shutdown.set)
            except (NotImplementedError, RuntimeError):
                signal.signal(
                    signum, lambda *_: loop.call_soon_threadsafe(shutdown.set)
                )
        ready: asyncio.Future = loop.create_future()
        serve_task = loop.create_task(
            run_server(
                app,
                host=args.host,
                port=args.port,
                shutdown=shutdown,
                ready=ready,
            )
        )
        port = await ready
        print(
            f"serving on {args.host}:{port} "
            f"(checkpoint root {args.checkpoint_root}, "
            f"max {args.max_sessions} resident sessions)",
            flush=True,
        )
        drained = await serve_task
        for record in drained:
            print(
                f"drained session {record['session']}: "
                f"batch {record['batch']}, state_sha {record['state_sha']}",
                flush=True,
            )
        return drained

    # Serving globally activates a metrics-only handle so repro_stream_*
    # batch metrics flow into /metrics alongside the repro_serve_* families.
    obs = Observability(tracing=False, metrics=True)
    with activated(obs):
        drained = asyncio.run(runner())
    print(f"drained {len(drained)} session(s); bye", flush=True)
    return 0


def _spawned_server(args):
    """Launch a private ``repro serve`` subprocess; returns (proc, port)."""
    import re
    import subprocess

    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--checkpoint-root",
            str(args.spawn),
            "--host",
            args.host,
            "--port",
            "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    line = proc.stdout.readline()
    match = re.search(r"serving on [^:]+:(\d+)", line or "")
    if not match:
        proc.terminate()
        raise PowerError(f"spawned server did not start: {line!r}")
    return proc, int(match.group(1))


def _command_client(args) -> int:
    import json
    import signal
    import time

    from .exceptions import OverloadedError
    from .serve import ServeClient
    from .stream.service import _encode_config

    needs_session = args.action in ("ingest-csv", "clusters", "checkpoint", "close")
    if needs_session and not args.session:
        print(f"{args.action} requires --session", file=sys.stderr)
        return 2
    if args.action == "ingest-csv" and args.input is None:
        print("ingest-csv requires --input CSV", file=sys.stderr)
        return 2
    if args.port is None and args.spawn is None:
        print("need --port (or --spawn CHECKPOINT_ROOT)", file=sys.stderr)
        return 2

    proc = None
    port = args.port
    if args.spawn is not None:
        proc, port = _spawned_server(args)
    try:
        with ServeClient(host=args.host, port=port) as client:

            def call(op, **fields):
                while True:
                    try:
                        return client.call(op, **fields)
                    except OverloadedError as error:
                        time.sleep(max(0.01, error.retry_after))

            if args.action == "health":
                health = call("healthz")
                for key in ("status", "protocol", "resident", "known_sessions"):
                    print(f"{key:14s}: {health[key]}")
            elif args.action == "metrics":
                print(call("metrics")["metrics"], end="")
            elif args.action == "ingest-csv":
                table = load_csv(args.input)
                if not table.has_ground_truth():
                    print(
                        "ingest-csv needs an entity_id column to simulate "
                        "the crowd",
                        file=sys.stderr,
                    )
                    return 2
                created = call(
                    "create_session",
                    session=args.session,
                    attributes=list(table.attributes),
                    config=_encode_config(PowerConfig(seed=args.seed)),
                    worker_band=args.band,
                )
                verb = "created" if created["created"] else "attached to"
                print(
                    f"{verb} session {args.session} "
                    f"({created['records']} records, "
                    f"batch {created['batches']})"
                )
                records = table.records[created["records"]:]
                for start in range(0, len(records), args.batch_size):
                    chunk = records[start : start + args.batch_size]
                    report = call(
                        "ingest",
                        session=args.session,
                        rows=[list(record.values) for record in chunk],
                        entity_ids=[record.entity_id for record in chunk],
                    )
                    print(
                        f"batch {report['batch']}: "
                        f"+{report['new_records']} records, "
                        f"{report['new_pairs']} pairs, "
                        f"{report['questions']} questions, "
                        f"clusters={report['clusters']}",
                        flush=True,
                    )
                checkpoint = call("checkpoint", session=args.session)
                print(
                    f"checkpoint : batch {checkpoint['batch']}, "
                    f"{checkpoint['records']} records, "
                    f"{checkpoint['questions']} questions, "
                    f"state_sha {checkpoint['state_sha'][:12]}"
                )
            elif args.action == "clusters":
                result = call("query_clusters", session=args.session)
                print(json.dumps(result["clusters"]))
                print(
                    f"clusters   : {len(result['clusters'])} over "
                    f"{result['records']} records "
                    f"({result['questions']} questions, "
                    f"{result['cost_cents'] / 100:.2f} USD)"
                )
            elif args.action == "checkpoint":
                checkpoint = call("checkpoint", session=args.session)
                print(
                    f"checkpoint : batch {checkpoint['batch']}, "
                    f"state_sha {checkpoint['state_sha']}"
                )
            elif args.action == "close":
                closed = call("close", session=args.session)
                print(
                    f"closed {closed['session']}: batch {closed['batch']}, "
                    f"state_sha {closed['state_sha']}"
                )
    finally:
        if proc is not None:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=60)
            except Exception:  # noqa: BLE001
                proc.kill()
    return 0


def _command_trace(args) -> int:
    import json

    from .obs import read_trace, render_trace, trace_records

    spans = read_trace(args.input)
    if args.json:
        for record in trace_records(spans):
            print(json.dumps(record, sort_keys=True))
    else:
        print(render_trace(
            spans,
            max_depth=args.max_depth,
            min_seconds=args.min_ms / 1000.0,
        ))
    return 0


def _command_verify(args) -> int:
    from .verify import BatteryConfig, run_battery

    config = BatteryConfig(
        dataset=args.dataset,
        scale=args.scale,
        seeds=args.seeds,
        base_seed=args.seed,
        include_mutation=not args.skip_mutation,
        include_metamorphic=not args.skip_metamorphic,
    )
    report = run_battery(config)
    if args.quiet:
        for failure in report.failures:
            print(failure)
        verdict = (
            f"{len(report.results)} checks, all passed"
            if report.passed
            else f"{len(report.results)} checks, {len(report.failures)} FAILED"
        )
        print(verdict)
    else:
        print(report.summary())
    return 0 if report.passed else 1


def _command_plan(args) -> int:
    from .plan import calibrate as run_calibration
    from .plan import default_profile_path, plan_for_table, render_plan
    from .plan.calibrate import resolve_profile
    from .verify.battery import subsample_table

    if not args.calibrate and not args.explain:
        print("nothing to do: pass --calibrate and/or --explain",
              file=sys.stderr)
        return 2

    profile_path = args.profile or default_profile_path()
    if args.calibrate:
        profile = run_calibration(seed=args.seed, fast=args.fast)
        profile.save(profile_path)
        stages = len(profile.coefficients)
        print(f"calibrated {stages} stages "
              f"({'fast' if args.fast else 'full'} workloads)")
        host = profile.host
        print(f"host      : {host.get('platform', '?')} "
              f"(python {host.get('python', '?')}, "
              f"{host.get('cpu_count', '?')} cpus)")
        print(f"profile -> {profile_path}")

    if args.explain:
        profile = resolve_profile(str(profile_path)
                                  if (args.profile or args.calibrate)
                                  else "auto")
        table = load_dataset(args.dataset)
        if args.scale < 1.0:
            table = subsample_table(table, args.scale)
        plan = plan_for_table(table, PowerConfig(seed=args.seed), profile)
        print(render_plan(plan))
    return 0


def _command_shard(args) -> int:
    import time

    from .shard import ShardedResolver
    from .verify.battery import subsample_table

    table = load_dataset(args.dataset)
    if args.scale < 1.0:
        table = subsample_table(table, args.scale)
    config = PowerConfig(
        seed=args.seed,
        shards=args.shards,
        shard_max_pairs=args.max_pairs,
        # ACMPub uses the paper's 0.3 pruning threshold elsewhere in the
        # repo's harnesses; keep the config default for the other datasets.
        pruning_threshold=0.3 if args.dataset == "acmpub" else 0.2,
    )
    resolver = ShardedResolver(
        config, workers=args.workers, mode=args.mode, timeout=args.timeout
    )
    start = time.perf_counter()
    with _observed(args):
        result = resolver.resolve(
            table,
            worker_band=args.band,
            budget=args.budget,
            max_cents=args.budget_cents,
        )
    elapsed = time.perf_counter() - start
    info = result.selection.extras.get("shard", {})
    print(f"dataset    : {table.name} ({len(table)} records)")
    print(f"mode       : {info.get('mode', args.mode)}  "
          f"workers: {info.get('workers', resolver.workers)}  "
          f"shards: {info.get('shards', resolver.num_shards)}")
    print(f"questions  : {result.questions}")
    print(f"iterations : {result.iterations}")
    print(f"cost       : {result.cost_cents / 100:.2f} USD")
    print(f"clusters   : {len(result.clusters)}")
    print(f"quality    : {result.quality}")
    print(f"wall clock : {elapsed:.2f}s")
    stats = info.get("executor", {})
    if stats:
        print(f"executor   : {stats['tasks']} tasks, "
              f"{stats['retries']} retries, {stats['fallbacks']} fallbacks")
    if args.check_equivalence:
        if args.mode != "exact":
            print("--check-equivalence requires --mode exact", file=sys.stderr)
            return 2
        serial = PowerResolver(config).resolve(table, worker_band=args.band)
        mismatches = [
            name
            for name, sharded_value, serial_value in (
                ("questions", result.questions, serial.questions),
                ("iterations", result.iterations, serial.iterations),
                ("cost_cents", result.cost_cents, serial.cost_cents),
                ("labels", result.selection.labels, serial.selection.labels),
                ("matches", result.matches, serial.matches),
                ("clusters", result.clusters, serial.clusters),
            )
            if sharded_value != serial_value
        ]
        if mismatches:
            print(f"EQUIVALENCE FAILED: {', '.join(mismatches)} differ",
                  file=sys.stderr)
            return 1
        print("equivalence: sharded result identical to serial resolver")
    return 0


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "stats": _command_stats,
        "resolve": _command_resolve,
        "simulate": _command_simulate,
        "experiment": _command_experiment,
        "verify": _command_verify,
        "shard": _command_shard,
        "stream": _command_stream,
        "serve": _command_serve,
        "client": _command_client,
        "trace": _command_trace,
        "plan": _command_plan,
    }
    try:
        return handlers[args.command](args)
    except PowerError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
