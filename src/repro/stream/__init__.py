"""Durable streaming resolution: a restartable service over the pipeline.

The streaming layer turns the incremental resolver into something you can
run for days and kill at will: :class:`StreamingResolver` ingests record
batches through the normal pipeline (incremental candidate sweep →
vectors → partial-order selection → clusters) while journaling complete,
versioned checkpoints into a :class:`SnapshotStore`.  A killed process
resumes with :meth:`StreamingResolver.restore` from the last *completed*
batch — bit-identically, and without re-paying for any crowd answer.

Two equivalence theorems anchor the design, and the verification battery's
``check_stream_equivalence`` step enforces both: a stream of batches
resolves to the same clusters and the same pooled crowd bill as one
one-shot run over the final table, and a kill-resume run is
indistinguishable from an uninterrupted one.
"""

from .service import StreamingResolver
from .snapshot import (
    MANIFEST_NAME,
    SNAPSHOT_VERSION,
    SnapshotStore,
    canonical_json,
    decode_index,
    encode_index,
    load_snapshot,
)

__all__ = [
    "MANIFEST_NAME",
    "SNAPSHOT_VERSION",
    "SnapshotStore",
    "StreamingResolver",
    "canonical_json",
    "decode_index",
    "encode_index",
    "load_snapshot",
]
