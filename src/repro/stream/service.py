"""The durable streaming resolution service.

:class:`StreamingResolver` is the long-lived face of
:class:`~repro.core.incremental.IncrementalResolver`: same per-batch
pipeline (incremental candidate sweep → vectors → partial-order graph →
selector → fold into clusters), plus the four things a service needs that
a library object does not:

* **durability** — :meth:`checkpoint` writes the full resolver state
  (records, pair labels, crowd transcripts, billing, RNG state, and the
  live :class:`~repro.similarity.batch.TokenIndex`) to a versioned,
  content-addressed :class:`~repro.stream.snapshot.SnapshotStore`;
  :meth:`restore` resumes from the last complete checkpoint after a kill,
  bit-identically and without re-asking a single paid pair;
* **pooled billing** — one ledger over the union of asked pairs across
  every batch (the CrowdER-style reuse of paid decisions): ``cost_cents``
  is ``ceil(distinct_asked / pairs_per_hit) × z × cents_per_hit``, the
  exact :class:`~repro.crowd.platform.CrowdSession` formula applied to the
  whole stream, so a single-batch stream bills exactly like a one-shot
  run;
* **scale routing** — batches whose candidate-pair count reaches
  ``shard_threshold`` compute their similarity vectors through the
  :class:`~repro.shard.executor.ShardExecutor` (bit-identical by the shard
  merge contract; ``shard_workers=0`` keeps it inline and deterministic);
* **observability** — a ``stream.batch`` span and ``repro_stream_*``
  metrics per batch, under the repo-wide transparency contract.

Determinism is the load-bearing wall: worker answers depend only on
``(seed, worker_id, pair)`` and batch tokens come from a checkpointed
``numpy`` generator, so *stream-of-batches ≡ one-shot* and *kill-resume ≡
uninterrupted* are theorems the ``check_stream_equivalence`` battery step
enforces rather than hopes for.
"""

from __future__ import annotations

import hashlib
import math
from collections.abc import Sequence
from typing import Any

import numpy as np

from ..core.config import PowerConfig
from ..core.incremental import IncrementalResolver
from ..crowd.aggregate import VoteOutcome
from ..crowd.platform import CrowdSession, SimulatedCrowd
from ..data.ground_truth import Pair
from ..engine.journal import decode_outcome, encode_outcome
from ..exceptions import ConfigurationError, DataError
from ..obs import instrument as obs_instrument
from .snapshot import (
    SNAPSHOT_VERSION,
    SnapshotStore,
    canonical_json,
    decode_index,
    encode_index,
    load_snapshot,
)


class _RecordingSession(CrowdSession):
    """A crowd session that mirrors every paid answer into the stream.

    The transcript dict keeps insertion order (first-asked order), which
    makes it both the durable audit log the checkpoint persists and the
    stream's pooled-billing universe.
    """

    def __init__(
        self,
        crowd: SimulatedCrowd,
        transcript: dict[Pair, VoteOutcome],
        pairs_per_hit: int = 10,
        cents_per_hit: int = 10,
    ) -> None:
        super().__init__(
            crowd, pairs_per_hit=pairs_per_hit, cents_per_hit=cents_per_hit
        )
        self._transcript = transcript

    def ask_batch(self, pairs):
        answers = super().ask_batch(pairs)
        self._transcript.update(answers)
        return answers


class StreamingResolver(IncrementalResolver):
    """A durable, restartable :class:`IncrementalResolver`.

    Args:
        attributes: schema of the incoming records.
        config: pipeline configuration (the one-shot resolver's knobs).
        name: dataset name stored on the internal table.
        checkpoint_dir: snapshot directory for :meth:`checkpoint`;
            ``None`` runs in-memory only.  A directory holding an earlier
            stream's manifest is refused — resume it with :meth:`restore`
            instead of silently forking its history.
        crowd: optional shared crowd platform (e.g. a
            :class:`~repro.crowd.platform.PerfectCrowd` over known truth).
            When omitted, each batch builds the usual simulated crowd from
            the records' ground-truth entity ids.
        worker_band: accuracy band for auto-built crowds.
        shard_threshold: candidate-pair count at which a batch's
            similarity vectors are routed through the shard executor
            (``None`` disables routing).
        shard_workers: worker processes for routed batches (0 = inline).
        pairs_per_hit / cents_per_hit: the pooled-billing pricing (the
            paper's §7.1 defaults).
        index_mode: forwarded to :class:`IncrementalResolver`.
    """

    def __init__(
        self,
        attributes: Sequence[str],
        config: PowerConfig | None = None,
        name: str = "stream",
        checkpoint_dir=None,
        crowd: SimulatedCrowd | None = None,
        worker_band: str | tuple[float, float] = "90",
        shard_threshold: int | None = None,
        shard_workers: int = 0,
        pairs_per_hit: int = 10,
        cents_per_hit: int = 10,
        index_mode: str = "extend",
    ) -> None:
        super().__init__(attributes, config=config, name=name, index_mode=index_mode)
        if shard_threshold is not None and shard_threshold < 1:
            raise ConfigurationError(
                f"shard_threshold must be >= 1 or None, got {shard_threshold}"
            )
        self.worker_band = worker_band
        self.shard_threshold = shard_threshold
        self.shard_workers = shard_workers
        self.pairs_per_hit = pairs_per_hit
        self.cents_per_hit = cents_per_hit
        self._crowd = crowd
        self.transcripts: dict[Pair, VoteOutcome] = {}
        self.reports: list[dict] = []
        self._rng = np.random.default_rng(self.config.seed)
        self._store: SnapshotStore | None = None
        self._header_written = False
        if checkpoint_dir is not None:
            store = SnapshotStore(checkpoint_dir)
            if store.exists():
                raise DataError(
                    f"{store.manifest_path} already holds a stream manifest; "
                    "resume it with StreamingResolver.restore() or point "
                    "checkpoint_dir at a fresh directory"
                )
            self._store = store

    # ------------------------------------------------------------------ #
    # Streaming API
    # ------------------------------------------------------------------ #

    def add_batch(
        self,
        rows: Sequence[Sequence[str]],
        entity_ids: Sequence[int] | None = None,
        session=None,
        worker_band: str | tuple[float, float] | None = None,
    ) -> dict:
        """Ingest one batch; see :meth:`IncrementalResolver.add_batch`.

        Adds the service-level extras: a deterministic batch token minted
        from the checkpointed RNG (so resume provably restores generator
        state), a ``stream.batch`` span, and ``repro_stream_*`` metrics.
        """
        band = self.worker_band if worker_band is None else worker_band
        token = format(int(self._rng.integers(1 << 62)), "016x")
        obs = obs_instrument.current()
        with obs.tracer.span(
            "stream.batch", batch=self.batches + 1, records=len(rows)
        ) as span:
            report = super().add_batch(
                rows, entity_ids=entity_ids, session=session, worker_band=band
            )
            report["batch_token"] = token
            span.set_attribute("pairs", report["new_pairs"])
            span.set_attribute("questions", report["questions"])
        obs_instrument.record_stream_batch(obs, report)
        self.reports.append(report)
        return report

    def _auto_session(self, pairs, worker_band):
        if self._crowd is not None:
            crowd = self._crowd
        else:
            crowd = super()._auto_session(pairs, worker_band).crowd
        return _RecordingSession(
            crowd,
            self.transcripts,
            pairs_per_hit=self.pairs_per_hit,
            cents_per_hit=self.cents_per_hit,
        )

    def _batch_vectors(self, pairs):
        if (
            self.shard_threshold is None
            or len(pairs) < self.shard_threshold
        ):
            return super()._batch_vectors(pairs)
        from ..shard.executor import ShardExecutor
        from ..shard.merge import merge_vector_chunks
        from ..shard.partition import vertex_slices
        from ..shard.worker import VectorTask, compute_vectors

        slices = max(2, self.shard_workers or 2)
        similarity = self._resolver.similarity_config(self.table)
        tasks = [
            VectorTask(
                start=lo,
                pairs=tuple(pairs[lo:hi]),
                table=self.table,
                config=similarity,
                use_batch=self.config.use_batch_similarity,
            )
            for lo, hi in vertex_slices(len(pairs), slices)
        ]
        executor = ShardExecutor(
            workers=self.shard_workers, retries=self.config.shard_retries
        )
        return merge_vector_chunks(executor.run(compute_vectors, tasks))

    # ------------------------------------------------------------------ #
    # Pooled billing
    # ------------------------------------------------------------------ #

    @property
    def asked_pairs(self) -> frozenset[Pair]:
        """Every distinct pair the stream has paid for, across all batches."""
        return frozenset(self.transcripts)

    @property
    def assignments(self) -> int:
        return (
            self._crowd.assignments
            if self._crowd is not None
            else self.config.assignments
        )

    @property
    def hits(self) -> int:
        """Whole-stream pooled HITs, the :class:`CrowdSession` formula."""
        if not self.transcripts:
            return 0
        return (
            math.ceil(len(self.transcripts) / self.pairs_per_hit)
            * self.assignments
        )

    @property
    def cost_cents(self) -> int:
        """Pooled cost over the union of asked pairs (re-asks are free)."""
        return self.hits * self.cents_per_hit

    # ------------------------------------------------------------------ #
    # Checkpoint / restore
    # ------------------------------------------------------------------ #

    def _state_payload(self) -> dict[str, Any]:
        """The JSON-safe resolver state (timings stripped: they are the
        one nondeterministic field, and resume equality is on semantics)."""
        reports = []
        for report in self.reports:
            encoded = {
                key: value
                for key, value in report.items()
                if key not in ("ingest_seconds", "index_seconds")
            }
            encoded["asked_pairs"] = [
                [int(a), int(b)] for a, b in report["asked_pairs"]
            ]
            reports.append(encoded)
        return {
            "version": SNAPSHOT_VERSION,
            "name": self.table.name,
            "attributes": list(self.table.attributes),
            "config": _encode_config(self.config),
            "index_mode": self.index_mode,
            "worker_band": _encode_band(self.worker_band),
            "pairs_per_hit": self.pairs_per_hit,
            "cents_per_hit": self.cents_per_hit,
            "shard_threshold": self.shard_threshold,
            "shard_workers": self.shard_workers,
            "batches": self.batches,
            "total_questions": self.total_questions,
            "total_iterations": self.total_iterations,
            "total_cost_cents": self.total_cost_cents,
            "rows": [list(record.values) for record in self.table],
            "entity_ids": [record.entity_id for record in self.table],
            "labels": [
                [int(a), int(b), bool(value)]
                for (a, b), value in sorted(self.labels.items())
            ],
            "transcripts": [
                [int(a), int(b), encode_outcome(outcome)]
                for (a, b), outcome in self.transcripts.items()
            ],
            "reports": reports,
            "rng_state": _encode_rng_state(self._rng.bit_generator.state),
        }

    def checkpoint(self) -> dict[str, Any]:
        """Write one complete, recoverable snapshot; returns its record.

        Objects first, manifest line last — the ordering that makes a kill
        at any instant recoverable (see :mod:`repro.stream.snapshot`).
        """
        store = self._store
        if store is None:
            raise ConfigurationError(
                "checkpoint() needs a checkpoint_dir (or restore())"
            )
        obs = obs_instrument.current()
        with obs.tracer.span("stream.checkpoint", batch=self.batches):
            if not self._header_written:
                store.append_header(
                    {
                        "name": self.table.name,
                        "attributes": list(self.table.attributes),
                        "seed": self.config.seed,
                    }
                )
                self._header_written = True
            objects = {"state": store.put_json(self._state_payload())}
            index_spec = None
            if self._index is not None:
                index_spec = encode_index(
                    store, self._index, self.config.join_tokens
                )
            record = {
                "batch": self.batches,
                "records": len(self.table),
                "questions": self.total_questions,
                "cost_cents": self.cost_cents,
                "objects": objects,
                "index": index_spec,
                "state_sha": hashlib.sha256(
                    canonical_json({"objects": objects, "index": index_spec})
                ).hexdigest(),
            }
            store.append_checkpoint(record)
        return record

    @classmethod
    def restore(
        cls,
        checkpoint_dir,
        crowd: SimulatedCrowd | None = None,
        repair: bool = True,
    ) -> "StreamingResolver":
        """Resume from the last complete checkpoint in *checkpoint_dir*.

        A torn manifest tail (kill mid-append) is truncated away first;
        the stream then continues from the last completed batch with every
        paid answer, the billing ledger, the RNG, and the token index
        exactly as the uninterrupted process would have them.
        """
        store = SnapshotStore(checkpoint_dir)
        _header, checkpoint = load_snapshot(store, repair=repair)
        state = store.get_json(checkpoint["objects"]["state"])
        self = cls(
            state["attributes"],
            config=_decode_config(state["config"]),
            name=state["name"],
            crowd=crowd,
            worker_band=_decode_band(state["worker_band"]),
            shard_threshold=state["shard_threshold"],
            shard_workers=state["shard_workers"],
            pairs_per_hit=state["pairs_per_hit"],
            cents_per_hit=state["cents_per_hit"],
            index_mode=state["index_mode"],
        )
        self._store = store
        self._header_written = True
        for values, entity_id in zip(state["rows"], state["entity_ids"]):
            self.table.append(tuple(values), entity_id=entity_id)
        self.labels = {
            (int(a), int(b)): bool(value) for a, b, value in state["labels"]
        }
        self.transcripts = {
            (int(a), int(b)): decode_outcome(outcome)
            for a, b, outcome in state["transcripts"]
        }
        self.batches = int(state["batches"])
        self.total_questions = int(state["total_questions"])
        self.total_iterations = int(state["total_iterations"])
        self.total_cost_cents = int(state["total_cost_cents"])
        self.reports = [
            {
                **report,
                "asked_pairs": [
                    (int(a), int(b)) for a, b in report["asked_pairs"]
                ],
            }
            for report in state["reports"]
        ]
        self._rng.bit_generator.state = _decode_rng_state(state["rng_state"])
        if checkpoint.get("index") is not None:
            self._index = decode_index(store, checkpoint["index"])
        return self

    def summary(self) -> str:
        lines = [
            super().summary(),
            f"pooled cost      : ${self.cost_cents / 100:.2f} "
            f"({len(self.transcripts)} paid pairs)",
        ]
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Codec helpers
# --------------------------------------------------------------------------- #


def _encode_config(config: PowerConfig) -> dict[str, Any]:
    from dataclasses import asdict

    payload = asdict(config)
    if isinstance(payload["similarity"], tuple):
        payload["similarity"] = list(payload["similarity"])
    return payload


def _decode_config(payload: dict[str, Any]) -> PowerConfig:
    decoded = dict(payload)
    if isinstance(decoded.get("similarity"), list):
        decoded["similarity"] = tuple(decoded["similarity"])
    try:
        return PowerConfig(**decoded)
    except TypeError as error:
        raise DataError(f"snapshot config does not decode: {error}") from None


def _encode_band(band):
    return list(band) if isinstance(band, tuple) else band


def _decode_band(band):
    return tuple(band) if isinstance(band, list) else band


def _encode_rng_state(state: dict) -> dict:
    # PCG64 state is a nested dict of (big) ints and strings; JSON keeps
    # Python ints exact at any width, so the round trip is lossless.
    return {
        "bit_generator": state["bit_generator"],
        "state": {key: int(value) for key, value in state["state"].items()},
        "has_uint32": int(state["has_uint32"]),
        "uinteger": int(state["uinteger"]),
    }


def _decode_rng_state(payload: dict) -> dict:
    return {
        "bit_generator": payload["bit_generator"],
        "state": {key: int(value) for key, value in payload["state"].items()},
        "has_uint32": int(payload["has_uint32"]),
        "uinteger": int(payload["uinteger"]),
    }


__all__ = ["StreamingResolver"]
