"""Versioned, content-addressed snapshots for the streaming resolver.

A snapshot directory is a tiny durable object store plus a journaled
manifest::

    <dir>/MANIFEST.jsonl      append-only journal: header, then one
                              ``checkpoint`` record per completed batch
    <dir>/objects/ab/ab12….blob   immutable blobs named by their sha256

The write protocol makes torn writes recoverable by construction:

1. every blob a checkpoint references is written first (to a temp file,
   then ``os.replace`` — readers never see a partial blob);
2. only then is the ``checkpoint`` line appended to the manifest.

So an intact manifest line always points at intact objects, and a crash
mid-append leaves at most one torn trailing line — exactly the failure the
engine journal's repair discipline (:func:`repro.engine.journal.read_records`
with ``repair=True``) already handles: the tail is truncated back to the
last complete record and the stream resumes from the last *completed*
batch.  Blobs from the lost batch become unreferenced garbage, never
corruption.

Every manifest record carries the schema version; :func:`load_snapshot`
rejects unknown versions with a clear :class:`~repro.exceptions.DataError`
instead of misreading a future layout.  Content addressing doubles as an
integrity check: :meth:`SnapshotStore.get_bytes` re-hashes each blob and
refuses to return silently corrupted state.
"""

from __future__ import annotations

import contextlib
import hashlib
import io
import json
import os
import tempfile
from pathlib import Path
from typing import Any

import numpy as np

from ..engine.journal import Journal, read_records
from ..exceptions import DataError
from ..similarity.batch import TokenIndex
from ..similarity.tokenize import qgram_tokens, word_tokens

#: Bump when the snapshot schema changes incompatibly.
SNAPSHOT_VERSION = 1

MANIFEST_NAME = "MANIFEST.jsonl"
OBJECTS_DIR = "objects"

_TOKENIZERS = {"word": word_tokens, "qgram": qgram_tokens}


def canonical_json(payload: Any) -> bytes:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")


class SnapshotStore:
    """One snapshot directory: content-addressed blobs + manifest journal."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.manifest_path = self.directory / MANIFEST_NAME
        self.objects_dir = self.directory / OBJECTS_DIR
        self._journal = Journal(self.manifest_path)

    # ------------------------------------------------------------------ #
    # Object store
    # ------------------------------------------------------------------ #

    def _object_path(self, digest: str) -> Path:
        return self.objects_dir / digest[:2] / f"{digest}.blob"

    def put_bytes(self, payload: bytes) -> str:
        """Store a blob under its sha256; atomic and idempotent."""
        digest = hashlib.sha256(payload).hexdigest()
        path = self._object_path(digest)
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            handle, temp_name = tempfile.mkstemp(
                dir=str(path.parent), prefix=".tmp-"
            )
            try:
                with os.fdopen(handle, "wb") as temp_file:
                    temp_file.write(payload)
                os.replace(temp_name, path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(temp_name)
                raise
        return digest

    def get_bytes(self, digest: str) -> bytes:
        path = self._object_path(digest)
        if not path.exists():
            raise DataError(
                f"snapshot object {digest} is missing from {self.objects_dir}"
            )
        payload = path.read_bytes()
        actual = hashlib.sha256(payload).hexdigest()
        if actual != digest:
            raise DataError(
                f"snapshot object {digest} is corrupt "
                f"(content hashes to {actual})"
            )
        return payload

    def put_json(self, payload: Any) -> str:
        return self.put_bytes(canonical_json(payload))

    def get_json(self, digest: str) -> Any:
        return json.loads(self.get_bytes(digest).decode("utf-8"))

    def put_array(self, array: np.ndarray) -> str:
        buffer = io.BytesIO()
        np.save(buffer, np.ascontiguousarray(array), allow_pickle=False)
        return self.put_bytes(buffer.getvalue())

    def get_array(self, digest: str) -> np.ndarray:
        return np.load(io.BytesIO(self.get_bytes(digest)), allow_pickle=False)

    # ------------------------------------------------------------------ #
    # Manifest journal
    # ------------------------------------------------------------------ #

    def append_header(self, payload: dict[str, Any]) -> None:
        self._journal.append(
            {"type": "header", "version": SNAPSHOT_VERSION, **payload}
        )

    def append_checkpoint(self, payload: dict[str, Any]) -> None:
        self._journal.append(
            {"type": "checkpoint", "version": SNAPSHOT_VERSION, **payload}
        )

    def close(self) -> None:
        self._journal.close()

    def read_manifest(
        self, repair: bool = True
    ) -> tuple[dict[str, Any] | None, list[dict[str, Any]], bool]:
        """``(header, checkpoints, truncated)`` after optional tail repair.

        Raises :class:`DataError` on a version this code does not speak or
        a manifest whose first record is not a header.
        """
        records, truncated = read_records(self.manifest_path, repair=repair)
        if not records:
            return None, [], truncated
        header = records[0]
        if header.get("type") != "header":
            raise DataError(
                f"snapshot manifest {self.manifest_path} does not start "
                f"with a header record (got {header.get('type')!r})"
            )
        checkpoints: list[dict[str, Any]] = []
        for record in records:
            version = record.get("version")
            if version != SNAPSHOT_VERSION:
                raise DataError(
                    f"snapshot version {version!r} is not supported "
                    f"(this build reads version {SNAPSHOT_VERSION}); "
                    "upgrade repro or rebuild the checkpoint directory"
                )
            if record.get("type") == "checkpoint":
                checkpoints.append(record)
        return header, checkpoints, truncated

    def exists(self) -> bool:
        return self.manifest_path.exists()


# --------------------------------------------------------------------------- #
# TokenIndex codec
# --------------------------------------------------------------------------- #


def encode_index(store: SnapshotStore, index: TokenIndex, tokenizer: str) -> dict:
    """Serialize a (generic-constructor) TokenIndex into store objects.

    The packed arrays are stored verbatim, so a restored index is
    *bit-identical* to the one that was checkpointed — including the dense
    token-id layout — and its interning dictionaries are rebuilt so
    :meth:`TokenIndex.extend` keeps assigning the next ids exactly as an
    uninterrupted process would have.
    """
    if index._seen is None or index._vocab is None:
        raise DataError(
            "only generic-constructor TokenIndexes are checkpointable "
            "(the for_bigrams fast path has no interning state)"
        )
    if tokenizer not in _TOKENIZERS:
        raise DataError(f"unknown tokenizer {tokenizer!r}")
    texts = [""] * len(index._seen)
    for text, row in index._seen.items():
        texts[row] = text
    tokens = [""] * len(index._vocab)
    for token, token_id in index._vocab.items():
        tokens[token_id] = token
    return {
        "tokenizer": tokenizer,
        "meta": store.put_json({"texts": texts, "tokens": tokens}),
        "bits": store.put_array(index.bits),
        "sizes": store.put_array(index.sizes),
        "row_of_text": store.put_array(index.row_of_text),
    }


def decode_index(store: SnapshotStore, spec: dict) -> TokenIndex:
    """Rebuild the exact checkpointed TokenIndex from store objects."""
    tokenizer = _TOKENIZERS.get(spec.get("tokenizer"))
    if tokenizer is None:
        raise DataError(f"unknown tokenizer {spec.get('tokenizer')!r}")
    meta = store.get_json(spec["meta"])
    index = TokenIndex.__new__(TokenIndex)
    index.bits = store.get_array(spec["bits"]).astype(np.uint64, copy=False)
    index.sizes = store.get_array(spec["sizes"]).astype(np.int64, copy=False)
    index.row_of_text = store.get_array(spec["row_of_text"]).astype(
        np.int64, copy=False
    )
    index.vocab_size = len(meta["tokens"])
    index._tokenizer = tokenizer
    index._seen = {text: row for row, text in enumerate(meta["texts"])}
    index._vocab = {token: tid for tid, token in enumerate(meta["tokens"])}
    if index.bits.shape[0] != len(meta["texts"]):
        raise DataError(
            f"snapshot index is inconsistent: {index.bits.shape[0]} packed "
            f"rows but {len(meta['texts'])} interned strings"
        )
    return index


def load_snapshot(
    store: SnapshotStore, repair: bool = True
) -> tuple[dict[str, Any], dict[str, Any]]:
    """The last complete checkpoint: ``(header, checkpoint_record)``.

    Repairs a torn manifest tail first (crash mid-append), then returns
    the newest intact checkpoint.  Raises :class:`DataError` when the
    directory has no manifest, no completed checkpoint, or an unsupported
    schema version.
    """
    if not store.exists():
        raise DataError(
            f"no snapshot manifest at {store.manifest_path}; "
            "nothing to restore"
        )
    header, checkpoints, _ = store.read_manifest(repair=repair)
    if header is None or not checkpoints:
        raise DataError(
            f"snapshot at {store.directory} has no completed checkpoint"
        )
    return header, checkpoints[-1]


__all__ = [
    "SNAPSHOT_VERSION",
    "SnapshotStore",
    "canonical_json",
    "decode_index",
    "encode_index",
    "load_snapshot",
]
