"""The orchestration runtime: engine, adapter session, round simulation.

:class:`CrowdEngine` owns one run's event loop, fault profile, retry
policy, budget guard, journal, and telemetry.  :class:`EngineSession` is
the *asynchronous crowd adapter*: it subclasses
:class:`~repro.crowd.platform.CrowdSession`, so every selector and baseline
that speaks the ``ask_batch`` protocol runs through the engine unchanged —
but instead of answering instantly, each batch is posted as HITs onto the
event loop, worked through simulated worker slots with injected faults,
re-posted under the retry policy, and guarded by the budget.

Equivalence contract (tested in ``tests/test_engine_equivalence.py``): with
a fault-free profile and no budget caps, an engine-driven run is
*byte-identical* to the synchronous path — same answers (the backing
:class:`SimulatedCrowd` still produces them, order-independently), same
distinct-question count, same iterations and cents — and its simulated
wall clock equals :meth:`LatencyModel.estimate_seconds` over the session's
``batch_sizes`` exactly, because a round of ``q`` questions × ``z``
assignments on ``W`` always-free slots with deterministic service time
``s`` has makespan ``overhead + ceil(q z / W) · s``, the model's closed
form.  The engine is therefore a strict generalisation: faults and budgets
only *add* behaviour, never perturb the fault-free baseline.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from ..crowd.aggregate import VoteOutcome
from ..crowd.latency import LatencyModel
from ..crowd.platform import CrowdSession, SimulatedCrowd
from ..data.ground_truth import Pair, canonical_pair
from ..exceptions import ConfigurationError, EngineError, SimulatedCrash
from ..obs import instrument as obs_instrument
from ..obs.telemetry import Telemetry
from .budget import BudgetGuard
from .events import EventLoop
from .faults import FaultProfile, resolve_profile
from .hit import HIT
from .journal import JOURNAL_VERSION, Journal, load_journal
from .retry import RetryPolicy


@dataclass
class EngineConfig:
    """Configuration for one engine run.

    Attributes:
        latency: timing parameters; ``assignments`` must match the crowd's
            redundancy so the closed-form estimator stays a valid
            cross-check of the simulated clock.
        faults: a :class:`FaultProfile`, a registry name (``"flaky"``), or
            ``"scaled:<rate>"``.
        retry: timeout/backoff re-posting policy.
        max_cents / max_questions: budget guardrails (None = uncapped).
        seed: seed for fault fates and spam bursts (worker answers keep
            their own pool seed, as in the synchronous path).
        journal_path: append-only JSONL WAL; None disables journaling.
        telemetry_path: where ``finalize`` writes telemetry JSON; defaults
            to ``<journal stem>.telemetry.json`` when a journal is set.
        resume: preload answers from an existing journal at *journal_path*
            (repairing a torn tail) so the resumed run re-uses them.
        fsync: fsync the journal after every record (durability over speed).
        crash_after: test-only — raise :class:`SimulatedCrash` after this
            many aggregated answers, leaving a partial journal behind.
        event_log_limit: recent-events window kept in telemetry.
    """

    latency: LatencyModel = field(default_factory=LatencyModel)
    faults: FaultProfile | str = "none"
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    max_cents: float | None = None
    max_questions: int | None = None
    seed: int = 0
    journal_path: str | Path | None = None
    telemetry_path: str | Path | None = None
    resume: bool = False
    fsync: bool = False
    crash_after: int | None = None
    event_log_limit: int = 1000


class CrowdEngine:
    """One run's orchestration runtime (clock, faults, budget, journal)."""

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config or EngineConfig()
        self.profile = resolve_profile(self.config.faults)
        self.loop = EventLoop()
        # When observability is active, the engine's counters live in the
        # shared registry so they export alongside the pipeline's metrics;
        # otherwise each engine keeps a private registry (run isolation).
        obs = obs_instrument.current()
        self.telemetry = Telemetry(
            event_log_limit=self.config.event_log_limit,
            registry=obs.registry if obs.metrics else None,
        )
        self.guard = BudgetGuard(
            max_cents=self.config.max_cents, max_questions=self.config.max_questions
        )
        self.journal: Journal | None = None
        self.preloaded_answers: dict[Pair, VoteOutcome] = {}
        self.preloaded_machine: dict[Pair, bool] = {}
        if self.config.journal_path is not None:
            path = Path(self.config.journal_path)
            if self.config.resume:
                state = load_journal(path, repair=True)
                self.preloaded_answers = state.answers
                self.preloaded_machine = state.machine_answers
            self.journal = Journal(path, fsync=self.config.fsync)

    # ------------------------------------------------------------------ #
    # Session construction
    # ------------------------------------------------------------------ #

    def session(
        self,
        crowd: SimulatedCrowd,
        pairs_per_hit: int = 10,
        cents_per_hit: int = 10,
        machine_scores: dict[Pair, float] | None = None,
    ) -> "EngineSession":
        """Open the engine-driven ledger over *crowd*.

        Args:
            crowd: the answer backend (any :class:`SimulatedCrowd`).
            pairs_per_hit / cents_per_hit: the paper's HIT pricing.
            machine_scores: per-pair similarity scores backing the
                machine-only fallback when the budget runs out.
        """
        if crowd.assignments != self.config.latency.assignments:
            raise ConfigurationError(
                f"latency model assumes z={self.config.latency.assignments} "
                f"assignments but the crowd uses z={crowd.assignments}; "
                "align them so the wall-clock cross-check stays meaningful"
            )
        # Resume: seed the platform cache so journaled questions are
        # answered instantly and never re-sampled (a real crowd cannot be
        # re-asked; the journal *is* the answer of record).
        for pair, outcome in self.preloaded_answers.items():
            crowd._cache.setdefault(pair, outcome)
        self._write_header(crowd, pairs_per_hit, cents_per_hit)
        return EngineSession(
            self,
            crowd,
            pairs_per_hit=pairs_per_hit,
            cents_per_hit=cents_per_hit,
            machine_scores=machine_scores,
        )

    def _write_header(
        self, crowd: SimulatedCrowd, pairs_per_hit: int, cents_per_hit: int
    ) -> None:
        if self.journal is None:
            return
        path = self.journal.path
        if path.exists() and path.stat().st_size > 0:
            return  # resuming an existing journal: keep its header
        self.journal.append(
            {
                "type": "header",
                "version": JOURNAL_VERSION,
                "seed": self.config.seed,
                "profile": self.profile.name,
                "assignments": crowd.assignments,
                "pairs_per_hit": pairs_per_hit,
                "cents_per_hit": cents_per_hit,
            }
        )

    # ------------------------------------------------------------------ #
    # Run lifecycle
    # ------------------------------------------------------------------ #

    @property
    def wall_clock_seconds(self) -> float:
        """Current simulated wall clock for this run."""
        return self.loop.now

    def finalize(self, session: "EngineSession") -> Telemetry:
        """Seal the run: final journal record, telemetry file, close WAL."""
        self.telemetry.wall_clock_seconds = self.loop.now
        self.telemetry.billed_cents = session.cost_cents
        if self.journal is not None:
            self.journal.append(
                {
                    "type": "final",
                    "questions": session.questions_asked,
                    "cost_cents": session.cost_cents,
                    "repost_cents": round(self.guard.repost_cents, 6),
                    "clock": self.loop.now,
                }
            )
            self.journal.close()
        telemetry_path = self.config.telemetry_path
        if telemetry_path is None and self.config.journal_path is not None:
            journal_path = Path(self.config.journal_path)
            telemetry_path = journal_path.with_suffix(".telemetry.json")
        if telemetry_path is not None:
            self.telemetry.write(telemetry_path)
        return self.telemetry

    def _journal(self, record: dict) -> None:
        if self.journal is not None:
            self.journal.append(record)


class EngineSession(CrowdSession):
    """Asynchronous crowd adapter: a drop-in :class:`CrowdSession` whose
    batches run through the engine's event loop instead of answering
    instantly.

    Accounting semantics match the parent exactly (distinct-question
    billing, per-batch ``batch_sizes``); see the class docstring of
    :class:`CrowdSession` for the pinned rounding rules the budget guard
    relies on.  Pairs the budget cannot afford are settled by the machine
    fallback and are *not* billed, counted as questions, or timed.
    """

    def __init__(
        self,
        engine: CrowdEngine,
        crowd: SimulatedCrowd,
        pairs_per_hit: int = 10,
        cents_per_hit: int = 10,
        machine_scores: dict[Pair, float] | None = None,
    ) -> None:
        super().__init__(crowd, pairs_per_hit=pairs_per_hit, cents_per_hit=cents_per_hit)
        self.engine = engine
        self.machine_scores = (
            None
            if machine_scores is None
            else {canonical_pair(*pair): float(s) for pair, s in machine_scores.items()}
        )
        #: Machine-fallback outcomes issued so far (stable across re-asks).
        self._machine_outcomes: dict[Pair, VoteOutcome] = dict()
        for pair, answer in engine.preloaded_machine.items():
            self._machine_outcomes[pair] = self._machine_outcome(pair, answer)

    # ------------------------------------------------------------------ #
    # The adapter protocol
    # ------------------------------------------------------------------ #

    def ask_batch(self, pairs) -> dict[Pair, VoteOutcome]:
        """Post a batch as HITs and run the event loop until it resolves."""
        batch = [canonical_pair(*pair) for pair in pairs]
        if not batch:
            return {}
        engine = self.engine
        answers: dict[Pair, VoteOutcome] = {}

        # Pairs already degraded to machine answers stay machine answers.
        crowd_candidates: list[Pair] = []
        for pair in batch:
            cached = self._machine_outcomes.get(pair)
            if cached is not None:
                answers[pair] = cached
            else:
                crowd_candidates.append(pair)

        # Budget guardrail: how many *new* distinct questions fit?
        new_pairs: list[Pair] = []
        seen: set[Pair] = set()
        for pair in crowd_candidates:
            if pair not in self._asked and pair not in seen:
                seen.add(pair)
                new_pairs.append(pair)
        affordable = engine.guard.affordable_questions(
            asked=len(self._asked),
            requested=len(new_pairs),
            pairs_per_hit=self.pairs_per_hit,
            cents_per_hit=self.cents_per_hit,
            assignments=self.crowd.assignments,
        )
        allowed = set(new_pairs[:affordable])
        degraded = new_pairs[affordable:]
        crowd_batch = [
            pair
            for pair in crowd_candidates
            if pair in self._asked or pair in allowed
        ]

        if crowd_batch:
            self.iterations += 1
            self.batch_sizes.append(len(crowd_batch))
            with obs_instrument.current().tracer.span(
                "engine.round", size=len(crowd_batch)
            ):
                resolved, failed = engine_round(engine, self, crowd_batch)
            for pair in resolved:
                self._asked.add(pair)
            answers.update(resolved)
            # Assignments that exhausted every retry leave their pair
            # crowd-unanswerable: degrade it rather than wedge the run.
            degraded = list(degraded) + [p for p in failed if p not in resolved]

        for pair in degraded:
            answers[pair] = self._degrade(pair)
        engine.telemetry.billed_cents = self.cost_cents
        crash_after = engine.config.crash_after
        if crash_after is not None and engine.telemetry.answered_pairs >= crash_after:
            raise SimulatedCrash(
                f"simulated crash after {engine.telemetry.answered_pairs} answers"
            )
        return answers

    # ------------------------------------------------------------------ #
    # Machine-only degradation
    # ------------------------------------------------------------------ #

    def _machine_outcome(self, pair: Pair, answer: bool) -> VoteOutcome:
        return VoteOutcome(answer=answer, confidence=0.5, votes=(answer,))

    def _degrade(self, pair: Pair) -> VoteOutcome:
        cached = self._machine_outcomes.get(pair)
        if cached is not None:
            return cached
        if self.machine_scores is not None:
            answer = self.machine_scores.get(pair, 0.0) >= 0.5
        else:
            answer = False
        outcome = self._machine_outcome(pair, answer)
        self._machine_outcomes[pair] = outcome
        self.engine.telemetry.machine_answers += 1
        self.engine._journal(
            {
                "type": "machine",
                "pair": list(pair),
                "answer": bool(answer),
                "clock": self.engine.loop.now,
            }
        )
        return outcome

    @property
    def machine_answered(self) -> int:
        """Pairs settled by the machine fallback so far."""
        return len(self._machine_outcomes)


def engine_round(
    engine: CrowdEngine, session: EngineSession, batch: list[Pair]
) -> tuple[dict[Pair, VoteOutcome], set[Pair]]:
    """Simulate one crowd round: post, assign, fault, retry, aggregate.

    Timing model (matching :meth:`LatencyModel.batch_seconds` term for
    term): the round is posted at the current clock; after the fixed
    ``round_overhead_seconds``, ``concurrent_workers`` simulated slots pull
    assignment units FIFO, each unit taking ``seconds_per_answer`` scaled
    by its fault fate.  A pair resolves when all ``z`` of its units reach a
    terminal state; its aggregated answer then comes from the platform
    (identical to the synchronous path) with an optional spam-burst hijack.

    Returns:
        ``(resolved, failed)`` — aggregated outcomes per pair, and pairs
        whose every assignment exhausted the retry budget (zero votes
        collected; the caller degrades them to machine answers).
    """
    loop = engine.loop
    latency = engine.config.latency
    retry = engine.config.retry
    profile = engine.profile
    telemetry = engine.telemetry
    seed = engine.config.seed
    crowd = session.crowd
    z = crowd.assignments
    service = latency.seconds_per_answer
    surcharge = session.cents_per_hit / session.pairs_per_hit

    t0 = loop.now
    telemetry.rounds += 1
    engine._journal(
        {"type": "round", "round": telemetry.rounds, "size": len(batch), "clock": t0}
    )

    resolved: dict[Pair, VoteOutcome] = {}
    failed: set[Pair] = set()
    # A batch may (rarely) repeat a pair; like the synchronous path, each
    # occurrence is timed in full, so units are numbered across occurrences
    # and a pair resolves once its *total* unit count is terminal.
    units_needed: dict[Pair, int] = {}
    done_units: dict[Pair, int] = {}
    ok_units: dict[Pair, int] = {}
    ready_units: deque[HIT] = deque()
    fates = {}
    free_slots: list[int] = []

    def resolve_pair(pair: Pair) -> None:
        if ok_units[pair] == 0:
            failed.add(pair)
            return
        outcome = crowd.answer(pair)
        hijacked = profile.spam_outcome(seed, pair, outcome)
        if hijacked is not outcome:
            telemetry.spam_hijacked += 1
            outcome = hijacked
        resolved[pair] = outcome
        telemetry.answered_pairs += 1
        engine._journal(
            {
                "type": "answer",
                "pair": list(pair),
                "clock": loop.now,
                **{
                    "answer": bool(outcome.answer),
                    "confidence": float(outcome.confidence),
                    "votes": [bool(v) for v in outcome.votes],
                },
            }
        )

    def unit_done(pair: Pair, success: bool) -> None:
        done_units[pair] += 1
        if success:
            ok_units[pair] += 1
        if done_units[pair] == units_needed[pair]:
            resolve_pair(pair)

    def maybe_retry(hit: HIT) -> None:
        if retry.can_retry(hit.attempt) and engine.guard.can_afford_repost(
            surcharge, session.cost_cents
        ):
            engine.guard.charge_repost(surcharge)
            telemetry.repost_cents = engine.guard.repost_cents
            delay = retry.backoff_seconds(hit.attempt)
            repost_time = loop.now + delay
            loop.schedule(delay, post, hit.repost(repost_time))
        else:
            telemetry.failed_units += 1
            unit_done(hit.pair, success=False)

    def on_expire(hit: HIT) -> None:
        hit.expire(loop.now)
        telemetry.expired += 1
        telemetry.record_event(
            "expired", loop.now, pair=list(hit.pair), attempt=hit.attempt
        )
        engine._journal(
            {
                "type": "expired",
                "pair": list(hit.pair),
                "unit": hit.unit,
                "attempt": hit.attempt,
                "clock": loop.now,
            }
        )
        maybe_retry(hit)

    def on_abandon(hit: HIT, slot: int) -> None:
        hit.abandon(loop.now)
        telemetry.abandoned += 1
        telemetry.record_event(
            "abandoned", loop.now, pair=list(hit.pair), attempt=hit.attempt
        )
        engine._journal(
            {
                "type": "abandoned",
                "pair": list(hit.pair),
                "unit": hit.unit,
                "attempt": hit.attempt,
                "clock": loop.now,
            }
        )
        heapq.heappush(free_slots, slot)
        maybe_retry(hit)
        dispatch()

    def on_answer(hit: HIT, slot: int) -> None:
        hit.answer(loop.now)
        telemetry.answered_units += 1
        engine._journal(
            {
                "type": "answered_unit",
                "pair": list(hit.pair),
                "unit": hit.unit,
                "attempt": hit.attempt,
                "clock": loop.now,
            }
        )
        heapq.heappush(free_slots, slot)
        unit_done(hit.pair, success=True)
        dispatch()

    def dispatch() -> None:
        while free_slots and ready_units:
            hit = ready_units.popleft()
            slot = heapq.heappop(free_slots)
            hit.assign(loop.now, slot)
            telemetry.assigned += 1
            engine._journal(
                {
                    "type": "assigned",
                    "pair": list(hit.pair),
                    "unit": hit.unit,
                    "attempt": hit.attempt,
                    "slot": slot,
                    "clock": loop.now,
                }
            )
            fate = fates.pop((hit.pair, hit.unit, hit.attempt))
            if fate.abandon:
                busy = service * fate.abandon_fraction
                loop.schedule(busy, on_abandon, hit, slot)
            else:
                loop.schedule(service * fate.service_scale, on_answer, hit, slot)

    def post(hit: HIT) -> None:
        telemetry.posted += 1
        if hit.attempt > 1:
            telemetry.re_posts += 1
            telemetry.record_event(
                "re-posted", loop.now, pair=list(hit.pair), attempt=hit.attempt
            )
        engine._journal(
            {
                "type": "posted",
                "pair": list(hit.pair),
                "unit": hit.unit,
                "attempt": hit.attempt,
                "clock": loop.now,
            }
        )
        fate = profile.fate(seed, hit.pair, hit.unit, hit.attempt)
        if fate.no_show:
            expire_at = max(loop.now, hit.posted_at + retry.assign_timeout_seconds)
            loop.schedule_at(expire_at, on_expire, hit)
            return
        fates[(hit.pair, hit.unit, hit.attempt)] = fate
        ready_units.append(hit)
        dispatch()

    def open_round() -> None:
        for slot in range(latency.concurrent_workers):
            heapq.heappush(free_slots, slot)
        dispatch()

    # Post every unit at t0; workers come online after the round overhead.
    for pair in batch:
        base = units_needed.get(pair, 0)
        if base == 0:
            done_units[pair] = 0
            ok_units[pair] = 0
        units_needed[pair] = base + z
        for unit in range(base, base + z):
            post(HIT(pair=pair, unit=unit, attempt=1, posted_at=t0))
    loop.schedule(latency.round_overhead_seconds, open_round)

    expected = len(units_needed)
    loop.run_until(lambda: len(resolved) + len(failed) >= expected)
    if len(loop) != 0:
        # Every unit must be terminal once all pairs resolved; anything
        # left would leak simulated time into the next round.
        raise EngineError(
            f"round finished with {len(loop)} events still pending"
        )
    return resolved, failed
