"""Append-only JSONL answer journal (write-ahead log) for crash resume.

Crowd answers are the only expensive, irreplaceable state a resolution run
accumulates: the graph, the coloring, and the clusters are all cheap
deterministic functions of (dataset, config, answers).  The journal
therefore logs every platform event as one JSON line, flushed as written,
and resume is simply *replay answers, re-run the pipeline*: journaled
questions hit the pre-seeded platform cache instantly and are not re-paid,
so a resumed run converges to the byte-identical final state of a
straight-through run.

Record types::

    header    run metadata (version, seed, profile, pricing)
    round     a batch posted to the crowd (size, simulated clock)
    posted / assigned / answered_unit / expired / abandoned
              per-assignment lifecycle events (pair, unit, attempt, clock)
    answer    the aggregated platform answer for one pair  ← the WAL payload
    machine   a budget-degraded machine-fallback answer for one pair
    budget    a budget checkpoint (billed + surcharge cents)
    final     run summary (questions, cost, wall clock)

A crash can truncate the last line mid-write; :func:`read_records` treats
anything after the first undecodable line as lost and (optionally) repairs
the file by truncating it back to the last intact record, which is exactly
the recovery contract of a textbook WAL.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any

from ..crowd.aggregate import VoteOutcome
from ..data.ground_truth import Pair, canonical_pair
from ..exceptions import JournalError

#: Bump when the record schema changes incompatibly.
JOURNAL_VERSION = 1


def encode_outcome(outcome: VoteOutcome) -> dict[str, Any]:
    return {
        "answer": bool(outcome.answer),
        "confidence": float(outcome.confidence),
        "votes": [bool(v) for v in outcome.votes],
    }


def decode_outcome(record: dict[str, Any]) -> VoteOutcome:
    try:
        return VoteOutcome(
            answer=bool(record["answer"]),
            confidence=float(record["confidence"]),
            votes=tuple(bool(v) for v in record["votes"]),
        )
    except (KeyError, TypeError) as error:
        raise JournalError(f"malformed answer record {record!r}: {error}") from None


class Journal:
    """An append-only JSONL event log, flushed line by line.

    Args:
        path: file to append to; parent directories are created.  The file
            is opened lazily on first append so a read-only replay never
            touches the filesystem.
        fsync: when True, ``os.fsync`` after every record — the durable
            setting a real deployment would use; tests leave it off.
    """

    def __init__(self, path: str | Path, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._handle: IO[str] | None = None

    def _file(self) -> IO[str]:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        return self._handle

    def append(self, record: dict[str, Any]) -> None:
        """Write one event record as a JSON line and flush it."""
        if "type" not in record:
            raise JournalError(f"journal records need a 'type' field: {record!r}")
        handle = self._file()
        handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_records(
    path: str | Path, repair: bool = False
) -> tuple[list[dict[str, Any]], bool]:
    """Read every intact record; optionally truncate off a torn tail.

    Returns:
        ``(records, truncated)`` where *truncated* is True when the file
        ended in a partial/corrupt line (the classic mid-write crash).
        With ``repair=True`` the file is truncated back to the last intact
        record so subsequent appends produce a valid journal.
    """
    path = Path(path)
    if not path.exists():
        return [], False
    records: list[dict[str, Any]] = []
    good_bytes = 0
    truncated = False
    with path.open("rb") as handle:
        for line in handle:
            if not line.endswith(b"\n"):
                truncated = True
                break
            try:
                record = json.loads(line.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                truncated = True
                break
            if not isinstance(record, dict) or "type" not in record:
                truncated = True
                break
            records.append(record)
            good_bytes += len(line)
    if truncated and repair:
        with path.open("rb+") as handle:
            handle.truncate(good_bytes)
    return records, truncated


@dataclass
class ReplayState:
    """Resolver-relevant state reconstructed from a journal.

    Attributes:
        header: the run's header record (None for headerless fragments).
        answers: aggregated crowd answer per pair — the state that
            determines coloring, clustering, and cost on resume.
        machine_answers: budget-degraded machine answers per pair.
        rounds: crowd rounds journaled so far.
        reposts: re-posted assignments journaled so far.
        expired / abandoned: failed-assignment counts.
        last_clock: latest simulated clock seen in any record.
        final: the ``final`` summary record when the run completed.
    """

    header: dict[str, Any] | None = None
    answers: dict[Pair, VoteOutcome] = field(default_factory=dict)
    machine_answers: dict[Pair, bool] = field(default_factory=dict)
    rounds: int = 0
    reposts: int = 0
    expired: int = 0
    abandoned: int = 0
    last_clock: float = 0.0
    final: dict[str, Any] | None = None

    @property
    def complete(self) -> bool:
        """Did the journaled run finish (reach its ``final`` record)?"""
        return self.final is not None


def replay_state(records: list[dict[str, Any]]) -> ReplayState:
    """Fold journal records into the state a resumed run needs.

    Replay is a pure left fold: the same record sequence always produces
    the same state, and a prefix of a run's records produces exactly the
    state the run had at that point — the property the crash-resume tests
    lean on.
    """
    state = ReplayState()
    for record in records:
        kind = record.get("type")
        clock = record.get("clock")
        if isinstance(clock, (int, float)):
            state.last_clock = max(state.last_clock, float(clock))
        if kind == "header":
            version = record.get("version")
            if version != JOURNAL_VERSION:
                raise JournalError(
                    f"journal version {version!r} is not supported "
                    f"(expected {JOURNAL_VERSION})"
                )
            state.header = record
        elif kind == "round":
            state.rounds += 1
        elif kind == "answer":
            pair = canonical_pair(*record["pair"])
            state.answers[pair] = decode_outcome(record)
        elif kind == "machine":
            pair = canonical_pair(*record["pair"])
            state.machine_answers[pair] = bool(record["answer"])
        elif kind == "posted":
            if record.get("attempt", 1) > 1:
                state.reposts += 1
        elif kind == "expired":
            state.expired += 1
        elif kind == "abandoned":
            state.abandoned += 1
        # assigned / answered_unit / budget / final need no folding beyond:
        elif kind == "final":
            state.final = record
    return state


def load_journal(path: str | Path, repair: bool = True) -> ReplayState:
    """One-call resume entry point: read (repairing a torn tail) and fold."""
    records, _ = read_records(path, repair=repair)
    return replay_state(records)
