"""Injectable fault profiles: no-shows, abandonment, stragglers, spam.

Real crowd platforms fail in ways the paper's iteration-count latency proxy
cannot see: HITs sit unclaimed and expire, workers claim assignments and
walk away, a slow tail of workers stretches every round, and bursts of
spammers hijack individual questions.  A :class:`FaultProfile` injects all
four, each with an independent rate knob, so experiments can sweep from the
paper's ideal platform (``none``) to an adversarial one (``hostile``).

Every fault decision is drawn from an RNG derived from
``(seed, pair, unit, attempt)`` — the same trick the worker model uses —
so fault outcomes are *order-independent*: they do not depend on when the
engine happens to process an assignment.  This is what makes a resumed run
converge to the same state as a straight-through run, and what makes fault
sweeps comparable across algorithms (the same pair suffers the same fate
no matter who asks it, mirroring the paper's shared-answer protocol).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..crowd.aggregate import VoteOutcome
from ..data.ground_truth import Pair
from ..exceptions import ConfigurationError

#: Domain-separation tags for the derived RNG streams.
_FATE_TAG = 0xFA7E
_SPAM_TAG = 0x5BA3


@dataclass(frozen=True)
class AssignmentFate:
    """The pre-drawn fate of one assignment attempt.

    Attributes:
        no_show: nobody claims the HIT; it expires at its timeout.
        abandon: a worker claims it, works ``abandon_fraction`` of the
            service time, then walks away.
        abandon_fraction: fraction of the service time wasted before
            abandoning, in [0.2, 0.9].
        service_scale: multiplier on the nominal per-answer service time
            (1.0 for ordinary workers, > 1 for stragglers).
    """

    no_show: bool = False
    abandon: bool = False
    abandon_fraction: float = 0.5
    service_scale: float = 1.0


@dataclass(frozen=True)
class FaultProfile:
    """Fault-injection rates for the orchestration engine.

    Attributes:
        name: label used in telemetry and CLI output.
        no_show_rate: probability a posted assignment is never claimed.
        abandon_rate: probability a claimed assignment is abandoned.
        straggler_rate: probability an answering worker is a straggler.
        straggler_multiplier: *mean* service-time multiplier for stragglers
            (the scale is ``1 + (multiplier - 1) * Exp(1)``, a heavy-ish
            tail whose mean is exactly the multiplier).
        spammer_burst_rate: probability a question's aggregated answer is
            hijacked by a burst of spammers (random answer, low confidence).
    """

    name: str = "none"
    no_show_rate: float = 0.0
    abandon_rate: float = 0.0
    straggler_rate: float = 0.0
    straggler_multiplier: float = 4.0
    spammer_burst_rate: float = 0.0

    def __post_init__(self) -> None:
        for field_name in (
            "no_show_rate", "abandon_rate", "straggler_rate", "spammer_burst_rate",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{field_name} must be in [0, 1], got {value}"
                )
        if self.straggler_multiplier < 1.0:
            raise ConfigurationError(
                f"straggler_multiplier must be >= 1, got {self.straggler_multiplier}"
            )

    @property
    def fault_free(self) -> bool:
        """True when every rate is zero (the paper's ideal platform)."""
        return (
            self.no_show_rate == 0.0
            and self.abandon_rate == 0.0
            and self.straggler_rate == 0.0
            and self.spammer_burst_rate == 0.0
        )

    @classmethod
    def scaled(cls, rate: float, name: str | None = None) -> "FaultProfile":
        """A one-knob profile for sweeps: every fault grows with *rate*.

        ``rate`` is the no-show/straggler probability; abandonment runs at
        half of it and spam bursts at a third, roughly matching the relative
        frequencies reported for AMT-style platforms.
        """
        return cls(
            name=name if name is not None else f"scaled-{rate:g}",
            no_show_rate=rate,
            abandon_rate=rate / 2.0,
            straggler_rate=rate,
            spammer_burst_rate=rate / 3.0,
        )

    def fate(self, seed: int, pair: Pair, unit: int, attempt: int) -> AssignmentFate:
        """Draw the fate of one assignment attempt, order-independently.

        The draw sequence is fixed (no-show, abandon, abandon fraction,
        straggler, scale) so adding a fault type later cannot silently
        reshuffle existing profiles' outcomes.
        """
        if self.fault_free:
            return AssignmentFate()
        rng = np.random.default_rng(
            (seed, _FATE_TAG, pair[0], pair[1], unit, attempt)
        )
        u_no_show = rng.random()
        u_abandon = rng.random()
        abandon_fraction = 0.2 + 0.7 * rng.random()
        u_straggler = rng.random()
        tail = rng.exponential()
        if u_no_show < self.no_show_rate:
            return AssignmentFate(no_show=True)
        if u_abandon < self.abandon_rate:
            return AssignmentFate(abandon=True, abandon_fraction=abandon_fraction)
        scale = 1.0
        if u_straggler < self.straggler_rate:
            scale = 1.0 + (self.straggler_multiplier - 1.0) * tail
        return AssignmentFate(service_scale=scale)

    def spam_outcome(
        self, seed: int, pair: Pair, outcome: VoteOutcome
    ) -> VoteOutcome:
        """Possibly hijack a question's aggregated answer with a spam burst.

        A hijacked question gets a coin-flip answer with confidence in
        [0.5, 0.7] — low enough that Power+'s confidence threshold (paper
        default 0.8) routes it to the BLUE/histogram path, which is exactly
        the defence the paper's §6 machinery provides.
        """
        if self.spammer_burst_rate <= 0.0:
            return outcome
        rng = np.random.default_rng((seed, _SPAM_TAG, pair[0], pair[1]))
        if rng.random() >= self.spammer_burst_rate:
            return outcome
        answer = bool(rng.random() < 0.5)
        confidence = 0.5 + 0.2 * rng.random()
        z = max(1, len(outcome.votes))
        agree = max(1, round(confidence * z))
        votes = tuple(index < agree for index in range(z))
        votes = tuple(v if answer else not v for v in votes)
        return VoteOutcome(answer=answer, confidence=confidence, votes=votes)


#: Named profiles for the CLI and the ``extension-faults`` experiment.
FAULT_PROFILES: dict[str, FaultProfile] = {
    "none": FaultProfile(name="none"),
    "flaky": FaultProfile(
        name="flaky",
        no_show_rate=0.15,
        abandon_rate=0.10,
        straggler_rate=0.15,
        straggler_multiplier=4.0,
        spammer_burst_rate=0.05,
    ),
    "hostile": FaultProfile(
        name="hostile",
        no_show_rate=0.35,
        abandon_rate=0.25,
        straggler_rate=0.30,
        straggler_multiplier=8.0,
        spammer_burst_rate=0.15,
    ),
}


def resolve_profile(profile: "FaultProfile | str") -> FaultProfile:
    """Accept a profile object, a registry name, or ``name:rate`` syntax.

    ``"scaled:0.2"`` builds :meth:`FaultProfile.scaled` with rate 0.2, so
    the CLI can sweep without registering every rate by hand.
    """
    if isinstance(profile, FaultProfile):
        return profile
    if profile.startswith("scaled:"):
        try:
            rate = float(profile.split(":", 1)[1])
        except ValueError:
            raise ConfigurationError(
                f"bad scaled profile {profile!r}; expected scaled:<rate>"
            ) from None
        return FaultProfile.scaled(rate)
    try:
        return FAULT_PROFILES[profile]
    except KeyError:
        known = ", ".join(sorted(FAULT_PROFILES)) + ", scaled:<rate>"
        raise ConfigurationError(
            f"unknown fault profile {profile!r}; known: {known}"
        ) from None


__all__ = [
    "AssignmentFate",
    "FAULT_PROFILES",
    "FaultProfile",
    "resolve_profile",
]
