"""Deterministic discrete-event loop and simulated clock.

The engine does not run in real time: crowd latency on the scale of minutes
would make every experiment unusable.  Instead, all platform activity —
HIT postings, worker service times, expiry timeouts, backoff re-posts — is
scheduled on this event loop and the clock jumps from event to event.

Determinism matters more than generality here: two events scheduled for the
same instant fire in scheduling order (a monotonically increasing sequence
number breaks ties), so a run is a pure function of its inputs and seeds.
That property underpins the engine's two headline guarantees:

* with zero fault rates, the simulated wall clock reproduces
  :meth:`repro.crowd.latency.LatencyModel.estimate_seconds` exactly;
* a crashed run resumed from its journal converges to the same final state
  as a straight-through run.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable

from ..exceptions import EngineError


class Event:
    """A scheduled callback; cancel via :meth:`cancel` before it fires."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable, args: tuple) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"Event(t={self.time:.1f}, seq={self.seq}, {name})"


class EventLoop:
    """A minimal, deterministic simulated-time event loop.

    Args:
        start: initial clock reading in seconds.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._heap: list[Event] = []
        self._seq = itertools.count()

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def __len__(self) -> int:
        """Number of pending (non-cancelled) events."""
        return sum(1 for event in self._heap if not event.cancelled)

    def schedule(self, delay: float, callback: Callable, *args) -> Event:
        """Schedule *callback(*args)* to fire *delay* seconds from now."""
        if delay < 0:
            raise EngineError(f"cannot schedule an event {delay} s in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable, *args) -> Event:
        """Schedule *callback(*args)* at absolute simulated *time*."""
        if time < self._now:
            raise EngineError(
                f"cannot schedule at t={time} before the current clock t={self._now}"
            )
        event = Event(float(time), next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def step(self) -> bool:
        """Fire the next pending event; return False when none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            # The clock never runs backwards, even if a stale event survived
            # from an earlier phase of the simulation.
            self._now = max(self._now, event.time)
            event.callback(*event.args)
            return True
        return False

    def run_until_idle(self) -> float:
        """Fire events until the queue drains; return the final clock."""
        while self.step():
            pass
        return self._now

    def run_until(self, predicate: Callable[[], bool]) -> float:
        """Fire events until *predicate()* holds (checked between events).

        Raises :class:`EngineError` if the loop drains first — the caller
        was waiting for something no pending event can deliver.
        """
        while not predicate():
            if not self.step():
                raise EngineError(
                    "event loop drained before the awaited condition held"
                )
        return self._now

    def advance(self, delay: float) -> float:
        """Move the clock forward *delay* seconds with no event attached.

        Refuses to jump over pending events — that would fire them "in the
        past" and break the loop's monotonicity guarantee.
        """
        if delay < 0:
            raise EngineError(f"cannot advance the clock by {delay} s")
        target = self._now + delay
        pending = [event for event in self._heap if not event.cancelled]
        if pending and min(pending).time < target:
            raise EngineError(
                "cannot advance the clock past pending events; "
                "run them first (step / run_until_idle)"
            )
        self._now = target
        return self._now
