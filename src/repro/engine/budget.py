"""Per-run budget guardrails with graceful degradation.

A production crowd deployment has a money meter, not just a question
counter.  :class:`BudgetGuard` enforces two independent caps:

* ``max_questions`` — distinct crowd questions (the anytime knob the
  selectors already understand);
* ``max_cents`` — money, under the session's HIT pricing *plus* the
  re-post surcharge faults incur (an expired or abandoned assignment must
  be re-paid when re-posted, which the paper's distinct-question accounting
  cannot see).

When a cap would be exceeded mid-batch the engine does not crash and does
not silently overspend: it crowd-asks the affordable prefix and answers the
rest with the *machine fallback* — a similarity-score guess at confidence
0.5, which Power+'s confidence threshold routes straight to the §6
histogram path.  Resolution therefore degrades continuously from fully
crowdsourced to machine-only as the money runs out.

Question affordability under a cents cap inverts the session's billing
formula ``ceil(questions / pairs_per_hit) * assignments * cents_per_hit``:
the guard computes the largest question count whose bill (plus surcharges
already incurred) still fits, so budget enforcement and billing can never
drift apart.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..exceptions import ConfigurationError


@dataclass
class BudgetGuard:
    """Money/question guardrails for one engine run.

    Attributes:
        max_cents: cap on total spend (session bill + re-post surcharge);
            ``None`` disables the money cap.
        max_questions: cap on distinct crowd questions; ``None`` disables.
        repost_cents: surcharge accumulated so far for re-posted
            assignments (fractional cents are real: one assignment of one
            pair costs ``cents_per_hit / pairs_per_hit`` cents).
    """

    max_cents: float | None = None
    max_questions: int | None = None
    repost_cents: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.max_cents is not None and self.max_cents < 0:
            raise ConfigurationError(
                f"max_cents must be >= 0 or None, got {self.max_cents}"
            )
        if self.max_questions is not None and self.max_questions < 0:
            raise ConfigurationError(
                f"max_questions must be >= 0 or None, got {self.max_questions}"
            )

    @property
    def unlimited(self) -> bool:
        return self.max_cents is None and self.max_questions is None

    def charge_repost(self, cents: float) -> None:
        """Record the surcharge for re-posting one failed assignment."""
        if cents < 0:
            raise ConfigurationError(f"repost surcharge must be >= 0, got {cents}")
        self.repost_cents += cents

    def can_afford_repost(self, cents: float, billed_cents: float) -> bool:
        """Is there money left to re-post a failed assignment?

        Args:
            cents: the surcharge the re-post would add.
            billed_cents: the session's current distinct-question bill.
        """
        if self.max_cents is None:
            return True
        return billed_cents + self.repost_cents + cents <= self.max_cents

    def affordable_questions(
        self,
        asked: int,
        requested: int,
        pairs_per_hit: int,
        cents_per_hit: int,
        assignments: int,
    ) -> int:
        """How many of *requested* new distinct questions fit the budget.

        Args:
            asked: distinct questions already billed this session.
            requested: new distinct questions the algorithm wants to ask.
            pairs_per_hit / cents_per_hit / assignments: the session's
                pricing (see :class:`repro.crowd.platform.CrowdSession`).

        Returns:
            A count in ``[0, requested]``; the remainder must be answered
            by the machine fallback.
        """
        if requested <= 0:
            return 0
        allowed = requested
        if self.max_questions is not None:
            allowed = min(allowed, max(0, self.max_questions - asked))
        if self.max_cents is not None:
            per_hit = cents_per_hit * assignments
            if per_hit <= 0:
                pass  # free crowd: the money cap cannot bind
            else:
                remaining = self.max_cents - self.repost_cents
                max_hits = math.floor(remaining / per_hit)
                max_billable = max_hits * pairs_per_hit
                allowed = min(allowed, max(0, max_billable - asked))
        return allowed
