"""Deprecation shim: :class:`Telemetry` now lives in :mod:`repro.obs`.

The engine's telemetry moved onto the shared observability registry
(:mod:`repro.obs.telemetry`) so an engine run's counters export through
the same Prometheus/JSON/console surfaces as every other subsystem.  This
module keeps the old import path working — ``from repro.engine.telemetry
import Telemetry`` still succeeds and returns the registry-backed class,
whose attribute semantics and ``as_dict``/``write``/``summary`` output are
byte-identical to the pre-migration dataclass (pinned by the regression
test in ``tests/test_obs_integration.py``).

Importing the name through this module emits a :class:`DeprecationWarning`
pointing at the new home; the engine itself imports from
:mod:`repro.obs.telemetry` directly.
"""

from __future__ import annotations

import warnings

from ..obs.telemetry import Telemetry as _Telemetry

_MOVED = {"Telemetry": _Telemetry}


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            f"repro.engine.telemetry.{name} moved to repro.obs.telemetry; "
            "update imports (this shim will be removed)",
            DeprecationWarning,
            stacklevel=2,
        )
        return _MOVED[name]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(list(globals()) + list(_MOVED))


__all__ = ["Telemetry"]
