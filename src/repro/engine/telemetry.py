"""Structured per-run telemetry: counters plus a bounded event log.

The engine's observable surface for experiments and operations.  Counters
answer the questions a deployment dashboard would ask (how many re-posts?
how much over the nominal bill did faults cost? how long did the run take
in simulated wall-clock?), and the event log keeps the most recent platform
events for debugging without letting a large run's telemetry outgrow its
journal.  ``write`` persists everything as JSON next to the journal so the
``extension-faults`` experiment and ``repro simulate`` can leave auditable
artifacts under ``benchmarks/results/``.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any


@dataclass
class Telemetry:
    """Counters and recent events for one engine run.

    Attributes:
        posted: assignment attempts posted (first posts + re-posts).
        assigned: assignments claimed by a worker.
        answered_units: assignments submitted successfully.
        answered_pairs: questions whose aggregated answer was resolved.
        expired: assignments that timed out unclaimed (worker no-shows).
        abandoned: assignments claimed but never submitted.
        re_posts: retry attempts (posted minus first posts).
        failed_units: assignments that exhausted their retry budget.
        machine_answers: pairs settled by the machine fallback (budget
            exhaustion or total assignment failure).
        spam_hijacked: pairs whose aggregated answer a spam burst replaced.
        rounds: crowd batches posted.
        wall_clock_seconds: final simulated clock.
        repost_cents: money burned re-posting failed assignments.
        billed_cents: the session's distinct-question bill.
        event_log_limit: how many recent events to retain.
    """

    posted: int = 0
    assigned: int = 0
    answered_units: int = 0
    answered_pairs: int = 0
    expired: int = 0
    abandoned: int = 0
    re_posts: int = 0
    failed_units: int = 0
    machine_answers: int = 0
    spam_hijacked: int = 0
    rounds: int = 0
    wall_clock_seconds: float = 0.0
    repost_cents: float = 0.0
    billed_cents: int = 0
    event_log_limit: int = 1000
    _events: deque = field(default_factory=deque, repr=False)

    def record_event(self, kind: str, clock: float, **details: Any) -> None:
        """Keep a recent-events window for debugging and reports."""
        self._events.append({"type": kind, "clock": round(clock, 3), **details})
        while len(self._events) > self.event_log_limit:
            self._events.popleft()

    @property
    def events(self) -> list[dict[str, Any]]:
        return list(self._events)

    @property
    def total_spent_cents(self) -> float:
        """Everything the run cost: nominal bill plus fault surcharge."""
        return self.billed_cents + self.repost_cents

    def as_dict(self) -> dict[str, Any]:
        return {
            "counters": {
                "posted": self.posted,
                "assigned": self.assigned,
                "answered_units": self.answered_units,
                "answered_pairs": self.answered_pairs,
                "expired": self.expired,
                "abandoned": self.abandoned,
                "re_posts": self.re_posts,
                "failed_units": self.failed_units,
                "machine_answers": self.machine_answers,
                "spam_hijacked": self.spam_hijacked,
                "rounds": self.rounds,
            },
            "wall_clock_seconds": round(self.wall_clock_seconds, 3),
            "billed_cents": self.billed_cents,
            "repost_cents": round(self.repost_cents, 3),
            "total_spent_cents": round(self.total_spent_cents, 3),
            "recent_events": self.events,
        }

    def write(self, path: str | Path) -> Path:
        """Persist the telemetry as JSON; returns the written path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=2) + "\n", encoding="utf-8")
        return path

    def summary(self) -> str:
        """A compact human-readable report for CLI output."""
        minutes = self.wall_clock_seconds / 60.0
        return (
            f"rounds={self.rounds} answered={self.answered_pairs} "
            f"re-posts={self.re_posts} expired={self.expired} "
            f"abandoned={self.abandoned} machine={self.machine_answers} "
            f"spam={self.spam_hijacked} "
            f"spent={self.total_spent_cents / 100:.2f}USD "
            f"wall-clock={minutes:.1f}min"
        )
