"""Timeout and exponential-backoff re-posting policies.

When a HIT expires unclaimed or is abandoned mid-work, the engine re-posts
a fresh attempt after a backoff delay.  Immediate re-posting is both
unrealistic (a HIT nobody wanted a second ago will not suddenly become
attractive) and dangerous under systematic faults (a tight re-post loop
burns simulated time without progress), so the delay grows geometrically
with the attempt number, capped, until the attempt budget runs out.

A question whose every assignment exhausts its attempts degrades to the
engine's machine-only fallback rather than wedging the run — see
:mod:`repro.engine.budget` for the same philosophy applied to money.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """Re-posting behaviour for failed (expired/abandoned) assignments.

    Attributes:
        max_attempts: total attempts per assignment, including the first
            posting.  ``1`` disables re-posting entirely.
        assign_timeout_seconds: how long a posted HIT may sit unclaimed
            before the platform expires it (AMT's assignment duration).
        backoff_base_seconds: delay before the second attempt.
        backoff_factor: multiplier applied per further attempt.
        backoff_max_seconds: ceiling on any single backoff delay.
    """

    max_attempts: int = 6
    assign_timeout_seconds: float = 600.0
    backoff_base_seconds: float = 60.0
    backoff_factor: float = 2.0
    backoff_max_seconds: float = 1800.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.assign_timeout_seconds <= 0:
            raise ConfigurationError(
                f"assign_timeout_seconds must be > 0, got {self.assign_timeout_seconds}"
            )
        if self.backoff_base_seconds < 0:
            raise ConfigurationError(
                f"backoff_base_seconds must be >= 0, got {self.backoff_base_seconds}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_max_seconds < self.backoff_base_seconds:
            raise ConfigurationError(
                "backoff_max_seconds must be >= backoff_base_seconds, got "
                f"{self.backoff_max_seconds} < {self.backoff_base_seconds}"
            )

    def can_retry(self, attempt: int) -> bool:
        """May a failed *attempt* (1-based) be re-posted?"""
        return attempt < self.max_attempts

    def backoff_seconds(self, attempt: int) -> float:
        """Delay before re-posting after failed *attempt* (1-based).

        Attempt 1's failure waits ``backoff_base_seconds``; each later
        failure multiplies by ``backoff_factor``, capped at
        ``backoff_max_seconds``.
        """
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        delay = self.backoff_base_seconds * self.backoff_factor ** (attempt - 1)
        return min(delay, self.backoff_max_seconds)
