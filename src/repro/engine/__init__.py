"""``repro.engine``: asynchronous crowd-orchestration runtime.

The missing layer between the paper's instant-answer oracle and a real
deployment: an event-driven runtime that posts selection rounds as HIT
batches, injects platform faults (no-shows, abandonment, stragglers, spam
bursts), re-posts failures with exponential backoff, enforces money and
question budgets with graceful machine-only degradation, and journals every
answer to an append-only WAL so a crashed run resumes to the byte-identical
final state.

With fault rates at zero and no budget caps the engine is provably inert:
an engine-driven run matches the synchronous path answer for answer and
cent for cent, and its simulated wall clock reproduces
:class:`~repro.crowd.latency.LatencyModel`'s closed form exactly.

Quickstart::

    >>> from repro import PowerResolver, PowerConfig, restaurant
    >>> from repro.engine import CrowdEngine, EngineConfig
    >>> engine = CrowdEngine(EngineConfig(faults="flaky", seed=1))
    >>> result = PowerResolver(PowerConfig(seed=1)).resolve(
    ...     restaurant(), engine=engine
    ... )
    >>> engine.telemetry.re_posts >= 0
    True
"""

from .budget import BudgetGuard
from .events import Event, EventLoop
from .faults import FAULT_PROFILES, AssignmentFate, FaultProfile, resolve_profile
from .hit import HIT, HITStatus, RETRYABLE_STATES, TERMINAL_STATES, TRANSITIONS
from .journal import (
    JOURNAL_VERSION,
    Journal,
    ReplayState,
    load_journal,
    read_records,
    replay_state,
)
from ..obs.telemetry import Telemetry
from .retry import RetryPolicy
from .runtime import CrowdEngine, EngineConfig, EngineSession, engine_round

__all__ = [
    "AssignmentFate",
    "BudgetGuard",
    "CrowdEngine",
    "EngineConfig",
    "EngineSession",
    "Event",
    "EventLoop",
    "FAULT_PROFILES",
    "FaultProfile",
    "HIT",
    "HITStatus",
    "JOURNAL_VERSION",
    "Journal",
    "RETRYABLE_STATES",
    "ReplayState",
    "RetryPolicy",
    "TERMINAL_STATES",
    "TRANSITIONS",
    "Telemetry",
    "engine_round",
    "load_journal",
    "read_records",
    "replay_state",
    "resolve_profile",
]
