"""HIT lifecycle state machine.

The engine's unit of platform work is one *assignment*: one worker judging
one record pair once.  A question asked with redundancy ``z`` therefore
fans out into ``z`` HITs, mirroring how AMT prices and tracks assignments
individually even when they are grouped for posting (the paper's pricing —
ten pairs per HIT, ten cents, ``z`` assignments — lives unchanged in
:class:`repro.crowd.platform.CrowdSession`; this module only models the
*lifecycle* of each assignment).

States and legal transitions::

    POSTED ──assign──▶ ASSIGNED ──answer──▶ ANSWERED   (terminal, success)
      │                    │
      │ expire             │ abandon
      ▼                    ▼
    EXPIRED            ABANDONED                        (terminal, retryable)

An EXPIRED HIT sat unclaimed past its assignment timeout (worker no-show);
an ABANDONED one was claimed but never submitted.  Both are terminal for
*this attempt* — the retry policy decides whether a fresh attempt (a new
``HIT`` with ``attempt + 1``) is re-posted after backoff.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..data.ground_truth import Pair
from ..exceptions import EngineError


class HITStatus(enum.Enum):
    """Lifecycle states of a single question-assignment."""

    POSTED = "posted"
    ASSIGNED = "assigned"
    ANSWERED = "answered"
    EXPIRED = "expired"
    ABANDONED = "abandoned"


#: Legal state transitions; anything else raises :class:`EngineError`.
TRANSITIONS: dict[HITStatus, frozenset[HITStatus]] = {
    HITStatus.POSTED: frozenset({HITStatus.ASSIGNED, HITStatus.EXPIRED}),
    HITStatus.ASSIGNED: frozenset({HITStatus.ANSWERED, HITStatus.ABANDONED}),
    HITStatus.ANSWERED: frozenset(),
    HITStatus.EXPIRED: frozenset(),
    HITStatus.ABANDONED: frozenset(),
}

#: States from which this attempt can never progress.
TERMINAL_STATES = frozenset(
    {HITStatus.ANSWERED, HITStatus.EXPIRED, HITStatus.ABANDONED}
)

#: Terminal states that a retry policy may turn into a fresh attempt.
RETRYABLE_STATES = frozenset({HITStatus.EXPIRED, HITStatus.ABANDONED})


@dataclass
class HIT:
    """One question-assignment working its way through the platform.

    Attributes:
        pair: the record pair being judged.
        unit: which of the question's ``z`` redundant assignments this is.
        attempt: 1-based attempt counter; re-posts increment it.
        posted_at: simulated time this attempt was posted.
        status: current lifecycle state.
        assigned_at / finished_at: transition timestamps (simulated seconds).
        worker_slot: index of the simulated worker slot that claimed it.
    """

    pair: Pair
    unit: int
    attempt: int = 1
    posted_at: float = 0.0
    status: HITStatus = field(default=HITStatus.POSTED)
    assigned_at: float | None = None
    finished_at: float | None = None
    worker_slot: int | None = None

    def _transition(self, new: HITStatus) -> None:
        if new not in TRANSITIONS[self.status]:
            raise EngineError(
                f"illegal HIT transition {self.status.value} -> {new.value} "
                f"for {self.pair} unit {self.unit} attempt {self.attempt}"
            )
        self.status = new

    def assign(self, time: float, worker_slot: int) -> None:
        """A worker claims the HIT."""
        self._transition(HITStatus.ASSIGNED)
        self.assigned_at = time
        self.worker_slot = worker_slot

    def answer(self, time: float) -> None:
        """The claiming worker submits a judgement."""
        self._transition(HITStatus.ANSWERED)
        self.finished_at = time

    def expire(self, time: float) -> None:
        """No worker claimed the HIT before its assignment timeout."""
        self._transition(HITStatus.EXPIRED)
        self.finished_at = time

    def abandon(self, time: float) -> None:
        """The claiming worker walked away without submitting."""
        self._transition(HITStatus.ABANDONED)
        self.finished_at = time

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    @property
    def retryable(self) -> bool:
        """Did this attempt fail in a way a re-post could fix?"""
        return self.status in RETRYABLE_STATES

    def repost(self, time: float) -> "HIT":
        """A fresh attempt of the same assignment (after backoff)."""
        if not self.retryable:
            raise EngineError(
                f"cannot re-post a HIT in state {self.status.value}; "
                "only expired or abandoned attempts are retryable"
            )
        return HIT(
            pair=self.pair, unit=self.unit, attempt=self.attempt + 1, posted_at=time
        )
