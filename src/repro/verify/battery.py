"""The ``repro verify`` battery: one command that runs the whole suite.

Orchestrates every oracle, invariant, metamorphic property, and the
mutation self-test into a single :class:`~repro.verify.report.VerificationReport`:

1. **synthetic sweeps** — random similarity matrices across many seeds
   drive the construction oracles, the structural invariants, and the
   production-vs-naive selector differentials (perfect and noisy crowds,
   grouped and ungrouped graphs);
2. **dataset checks** — a (subsampled) benchmark dataset goes through the
   real pipeline: batch-similarity and join oracles, graph invariants on
   the actual dominance DAG, an end-to-end resolution under the always-on
   :class:`~repro.verify.invariants.VerifyingSession` sanitizer, clustering
   cross-checks, and the metamorphic laws;
3. **mutation self-test** — seeded bugs are injected and every one must be
   detected (:mod:`repro.verify.mutation`), proving the suite has teeth.

Used by the ``repro verify`` CLI subcommand and ``make verify``; the pieces
remain importable for targeted use in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.clustering import clusters_from_matches
from ..core.config import PowerConfig
from ..crowd.platform import PerfectCrowd, SimulatedCrowd
from ..crowd.worker import WorkerPool
from ..data.table import Table
from ..exceptions import DataError
from ..graph.dag import PairGraph
from ..graph.grouped_graph import GroupedGraph
from ..graph.grouping import split_grouping
from ..selection import SELECTORS
from . import invariants, metamorphic, oracles
from .mutation import run_mutation_selftest
from .report import VerificationReport, run_check


@dataclass(frozen=True)
class BatteryConfig:
    """Knobs for one verification run.

    Attributes:
        dataset: benchmark dataset name (``repro.data.generators.DATASETS``).
        scale: fraction of the dataset's records to keep (prefix subsample;
            the generators emit an entity's duplicates together, so a prefix
            keeps the duplicate structure intact).
        seeds: how many random-matrix seeds drive the synthetic sweeps.
        num_vertices: vertices per synthetic instance.
        num_attributes: attribute count per synthetic instance.
        selectors: selector names to differential-test; empty means every
            registered selector plus the greedy reference policy.
        epsilon: grouping threshold for the grouped differential runs.
        include_mutation: run the seeded-mutant self-test.
        include_metamorphic: run the metamorphic laws on the dataset.
        base_seed: offset added to every per-seed derivation.
    """

    dataset: str = "restaurant"
    scale: float = 1.0
    seeds: int = 10
    num_vertices: int = 24
    num_attributes: int = 4
    selectors: tuple[str, ...] = ()
    epsilon: float = 0.15
    include_mutation: bool = True
    include_metamorphic: bool = True
    base_seed: int = 0

    def selector_names(self) -> tuple[str, ...]:
        if self.selectors:
            return self.selectors
        return tuple(sorted(SELECTORS)) + ("greedy-reference",)


def random_instance(
    seed: int, num_vertices: int = 24, num_attributes: int = 4
) -> tuple[list[tuple[int, int]], np.ndarray]:
    """A synthetic (pairs, vectors) instance with a rich partial order.

    Similarities are quantized to one decimal so the order has duplicate
    vectors, long chains, and wide antichains — the regimes that stress the
    dominance kernels and the inference engine.
    """
    rng = np.random.default_rng(seed)
    vectors = rng.random((num_vertices, num_attributes)).round(1)
    pairs = [(2 * k, 2 * k + 1) for k in range(num_vertices)]
    return pairs, vectors


def subsample_table(table: Table, scale: float, minimum: int = 20) -> Table:
    """The first ``round(scale * len(table))`` records (at least *minimum*).

    The dataset generators emit each entity's duplicates consecutively, so
    a prefix keeps duplicate pairs in the sample; random sampling would
    mostly strip them out and leave a trivial graph.
    """
    if not 0.0 < scale <= 1.0:
        raise DataError(f"scale must be in (0, 1], got {scale}")
    if scale == 1.0:
        return table
    keep = min(len(table), max(minimum, round(scale * len(table))))
    rows = [table[index].values for index in range(keep)]
    entity_ids = [table[index].entity_id for index in range(keep)]
    return Table.from_rows(
        name=f"{table.name}-x{scale:g}",
        attributes=table.attributes,
        rows=rows,
        entity_ids=entity_ids,
    )


# --------------------------------------------------------------------------- #
# Battery sections
# --------------------------------------------------------------------------- #


def _synthetic_sweeps(config: BatteryConfig, report: VerificationReport) -> None:
    selectors = config.selector_names()
    for offset in range(config.seeds):
        seed = config.base_seed + offset
        pairs, vectors = random_instance(
            seed, config.num_vertices, config.num_attributes
        )
        run_check(
            report,
            f"dominance-construction[seed={seed}]",
            lambda v=vectors: oracles.check_dominance_construction(v),
        )
        run_check(
            report,
            f"transitive-closure[seed={seed}]",
            lambda v=vectors: oracles.check_transitive_closure(v),
        )

        def graph_invariants(pairs=pairs, vectors=vectors):
            graph = PairGraph(pairs, vectors)
            invariants.check_partial_order(graph)
            invariants.check_acyclicity(graph)
            invariants.check_topo_layers(graph)
            invariants.check_path_cover(graph)
            grouped = GroupedGraph(graph, split_grouping(vectors, config.epsilon))
            invariants.check_partial_order(grouped)
            invariants.check_grouped_partition(grouped)
            invariants.check_topo_layers(grouped)

        run_check(report, f"graph-invariants[seed={seed}]", graph_invariants)

        for name in selectors:
            run_check(
                report,
                f"selector-differential[{name}, seed={seed}]",
                lambda n=name, p=pairs, v=vectors, s=seed: (
                    oracles.check_selector_differential(n, p, v, seed=s)
                ),
            )
            run_check(
                report,
                f"selector-monotone[{name}, seed={seed}]",
                lambda n=name, p=pairs, v=vectors, s=seed: (
                    oracles.check_selector_monotone_oracle(n, p, v, seed=s)
                ),
            )
        for name in ("single-path", "multi-path", "power"):
            run_check(
                report,
                f"selection-incremental[{name}, seed={seed}]",
                lambda n=name, p=pairs, v=vectors, s=seed: (
                    oracles.check_selection_incremental(n, p, v, seed=s)
                ),
            )
        run_check(
            report,
            f"selection-incremental[power, grouped, seed={seed}]",
            lambda p=pairs, v=vectors, s=seed: oracles.check_selection_incremental(
                "power", p, v, seed=s, epsilon=config.epsilon
            ),
        )
        # Grouped and noisy variants (production selector only, cost control).
        run_check(
            report,
            f"selector-differential[power, grouped, seed={seed}]",
            lambda p=pairs, v=vectors, s=seed: oracles.check_selector_differential(
                "power", p, v, seed=s, epsilon=config.epsilon
            ),
        )
        run_check(
            report,
            f"selector-differential[power, noisy, seed={seed}]",
            lambda p=pairs, v=vectors, s=seed: oracles.check_selector_differential(
                "power", p, v, seed=s, band="90"
            ),
        )
        run_check(
            report,
            f"cost-monotonicity[seed={seed}]",
            lambda p=pairs, v=vectors, s=seed: metamorphic.check_cost_monotonicity(
                p, v, seed=s
            ),
        )
        run_check(
            report,
            f"observability-transparent[power, seed={seed}]",
            lambda p=pairs, v=vectors, s=seed: (
                oracles.check_observability_transparent("power", p, v, seed=s)
            ),
        )


def _billing_and_crowd(config: BatteryConfig, report: VerificationReport) -> None:
    pairs, _ = random_instance(config.base_seed, config.num_vertices, 4)

    def billing():
        truth = {pair: True for pair in pairs}
        session = PerfectCrowd(truth).session(pairs_per_hit=5)
        session.ask_batch(pairs[:13])  # 13 at 5/HIT: ceil and floor differ
        invariants.check_session_coherence(session)

    run_check(report, "billing-pooled-ceiling", billing)

    def aggregation():
        truth = {pair: bool(index % 2) for index, pair in enumerate(pairs)}
        for mode in ("weighted", "majority"):
            crowd = SimulatedCrowd(
                truth,
                pool=WorkerPool(accuracy_range="80", seed=config.base_seed),
                assignments=5,
                aggregation=mode,
            )
            oracles.check_crowd_aggregation(crowd, pairs)

    run_check(report, "crowd-aggregation", aggregation)


def _dataset_checks(config: BatteryConfig, report: VerificationReport) -> None:
    from ..core.resolver import PowerResolver
    from ..data.generators import load_dataset

    table = subsample_table(
        load_dataset(config.dataset), config.scale
    )
    power_config = PowerConfig(seed=config.base_seed)
    resolver = PowerResolver(power_config)
    pairs = resolver.candidate_pairs(table)
    if not pairs:
        raise DataError(
            f"no candidate pairs survive pruning on {table.name!r}; "
            "raise --scale"
        )
    vectors = resolver.similarity_vectors(table, pairs)

    run_check(
        report,
        f"batch-similarity[{table.name}]",
        lambda: oracles.check_batch_similarity(
            table, pairs, resolver.similarity_config(table)
        ),
    )
    run_check(
        report,
        f"join-methods[{table.name}]",
        lambda: oracles.check_join_methods(
            table, power_config.pruning_threshold
        ),
    )

    def pipeline_graph_invariants():
        graph = PairGraph(pairs, vectors)
        invariants.check_partial_order(graph)
        invariants.check_acyclicity(graph)
        invariants.check_topo_layers(graph)
        invariants.check_path_cover(graph)

    run_check(report, f"pipeline-graph[{table.name}]", pipeline_graph_invariants)

    for name in ("single-path", "multi-path"):
        run_check(
            report,
            f"selection-incremental[{name}, {table.name}]",
            lambda n=name: oracles.check_selection_incremental(
                n, pairs, vectors, seed=config.base_seed
            ),
        )

    def verified_resolution():
        crowd = resolver.simulated_crowd(table, pairs, worker_band="90")
        session = invariants.VerifyingSession(crowd.session())
        result = resolver.resolve(table, session=session)
        invariants.check_session_coherence(session._inner)
        if result.selection.state is not None:
            invariants.check_coloring_state(result.selection.state)
        invariants.check_cluster_union_find(len(table), result.matches)
        produced = sorted(sorted(cluster) for cluster in result.clusters)
        recomputed = sorted(
            sorted(cluster)
            for cluster in clusters_from_matches(len(table), result.matches)
        )
        if produced != recomputed:
            raise DataError("resolver clusters drifted from its own matches")

    run_check(report, f"verified-resolution[{table.name}]", verified_resolution)

    run_check(
        report,
        f"shard-equivalence[{table.name}]",
        lambda: oracles.check_shard_equivalence(
            table, seed=config.base_seed, shard_counts=(2, 4)
        ),
    )

    run_check(
        report,
        f"stream-equivalence[{table.name}]",
        lambda: oracles.check_stream_equivalence(
            table, seed=config.base_seed, batch_counts=(3,)
        ),
    )

    run_check(
        report,
        f"serve-equivalence[{table.name}]",
        lambda: oracles.check_serve_equivalence(
            table, seed=config.base_seed, tenants=3, batches=2
        ),
    )

    run_check(
        report,
        f"observability-transparent[{table.name}]",
        lambda: oracles.check_observability_transparent_table(
            table, seed=config.base_seed
        ),
    )

    run_check(
        report,
        f"plan-transparency[{table.name}]",
        lambda: oracles.check_plan_transparency(table, seed=config.base_seed),
    )

    if config.include_metamorphic:
        run_check(
            report,
            f"permutation-invariance[{table.name}]",
            lambda: metamorphic.check_permutation_invariance(
                table, seed=config.base_seed
            ),
        )
        run_check(
            report,
            f"duplicate-idempotence[{table.name}]",
            lambda: metamorphic.check_duplicate_idempotence(table, record_id=0),
        )


def run_battery(config: BatteryConfig | None = None) -> VerificationReport:
    """Run every section and return the combined report."""
    config = config or BatteryConfig()
    report = VerificationReport()
    _synthetic_sweeps(config, report)
    _billing_and_crowd(config, report)
    _dataset_checks(config, report)
    if config.include_mutation:
        report.extend(run_mutation_selftest(seed=config.base_seed))
    return report


__all__ = [
    "BatteryConfig",
    "random_instance",
    "subsample_table",
    "run_battery",
]
