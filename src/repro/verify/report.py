"""Check-result bookkeeping for the verification subsystem.

Every oracle, invariant, and metamorphic property reports through the same
tiny vocabulary: a named :class:`CheckResult` that either passed or carries
a human-readable reason, collected into a :class:`VerificationReport`.
Checks are written as plain functions raising
:class:`~repro.exceptions.VerificationError` on violation; :func:`run_check`
adapts them into results so one failing check never hides the others.
"""

from __future__ import annotations

import time
import traceback
from collections.abc import Callable
from dataclasses import dataclass, field

from ..exceptions import VerificationError


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one verification check."""

    name: str
    passed: bool
    detail: str = ""
    seconds: float = 0.0

    def __str__(self) -> str:
        status = "ok  " if self.passed else "FAIL"
        line = f"[{status}] {self.name} ({self.seconds * 1000:.0f} ms)"
        if not self.passed and self.detail:
            line += f"\n       {self.detail}"
        return line


@dataclass
class VerificationReport:
    """An ordered collection of check results with a pass/fail verdict."""

    results: list[CheckResult] = field(default_factory=list)

    def add(self, result: CheckResult) -> CheckResult:
        self.results.append(result)
        return result

    def extend(self, other: "VerificationReport") -> None:
        self.results.extend(other.results)

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    @property
    def failures(self) -> list[CheckResult]:
        return [result for result in self.results if not result.passed]

    def failure_names(self) -> list[str]:
        return [result.name for result in self.failures]

    def summary(self) -> str:
        lines = [str(result) for result in self.results]
        verdict = (
            f"{len(self.results)} checks, all passed"
            if self.passed
            else f"{len(self.results)} checks, {len(self.failures)} FAILED"
        )
        return "\n".join(lines + [verdict])

    def raise_on_failure(self) -> None:
        """Raise :class:`VerificationError` summarising every failed check."""
        if self.passed:
            return
        details = "; ".join(
            f"{result.name}: {result.detail or 'failed'}" for result in self.failures
        )
        raise VerificationError(
            f"{len(self.failures)} verification check(s) failed: {details}"
        )


def run_check(report: VerificationReport, name: str, check: Callable[[], None]) -> CheckResult:
    """Run *check*, recording a pass, a verification failure, or a crash.

    Unexpected exceptions (not :class:`VerificationError`) are recorded as
    failures too — a crashed oracle must never read as a green light.
    """
    started = time.perf_counter()
    try:
        check()
    except VerificationError as error:
        result = CheckResult(
            name=name,
            passed=False,
            detail=str(error),
            seconds=time.perf_counter() - started,
        )
    except Exception as error:  # noqa: BLE001 - a crashed check is a failed check
        result = CheckResult(
            name=name,
            passed=False,
            detail=f"check crashed: {type(error).__name__}: {error}\n"
            + traceback.format_exc(limit=3),
            seconds=time.perf_counter() - started,
        )
    else:
        result = CheckResult(
            name=name, passed=True, seconds=time.perf_counter() - started
        )
    return report.add(result)
