"""Mutation self-test: seeded bugs the verification suite must catch.

A verification suite that has never failed proves nothing — maybe the code
is correct, maybe the checks are vacuous.  This module settles the question
by *injecting* known bugs (mutants) into the production modules, running a
compact detection battery under each one, and demanding that at least one
check screams.  Every mutant models a realistic regression:

======================  ====================================================
mutant                  seeded bug
======================  ====================================================
``drop-dominance-edge`` the blocked kernel silently loses one edge
``non-strict-dominance``  ``>=`` everywhere accepted without a strict ``>``
``inverted-propagation``  GREEN votes descendants, RED votes ancestors
``topo-layer-merge``    all Kahn levels collapse into a single layer
``overlapping-paths``   the "minimum" path cover repeats a vertex
``billing-floor``       HIT count floors instead of ceiling
``weight-blind-votes``  weighted aggregation ignores worker accuracies
``shard-merge-drop``    the shard merge drops every slice's votes but one
``stale-matching``      deleting a matched vertex leaves its partner claimed
``obs-perturbs-selection``  instrumentation drops a vertex from each round
``stream-stale-index``  a streamed batch lands in the token index as
                        empty rows (silent candidate loss)
``serve-cross-session-leak``  the session registry hands back another live
                        tenant's resolver instead of restoring the evicted
                        session's snapshot
``plan-changes-results``  the cost planner's apply step also flips a
                        semantic knob (``epsilon``), so a planned run
                        returns different answers
======================  ====================================================

Patching is done by rebinding module/class attributes inside a context
manager that always restores the originals; lazily-imported helpers
(``blocked_dominance_lists``, ``topological_layers``, ``minimum_path_cover``)
are patched at their defining module *and* at every module-level import
site, so both the production pipeline and the oracles see the mutated code.

:func:`run_mutation_selftest` returns a
:class:`~repro.verify.report.VerificationReport` with one result per
mutant: *passed* means the battery detected the bug (any check raised), a
failure means a seeded bug slipped through the entire suite undetected.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..crowd.platform import PerfectCrowd, SimulatedCrowd
from ..crowd.worker import WorkerPool
from ..exceptions import VerificationError
from ..graph.dag import PairGraph
from . import invariants, oracles
from .report import VerificationReport

PatchTarget = tuple[object, str, object]


@contextmanager
def _patched(*targets: PatchTarget) -> Iterator[None]:
    """Rebind ``(owner, attribute, replacement)`` triples, restoring on exit."""
    originals = [(owner, name, getattr(owner, name)) for owner, name, _ in targets]
    try:
        for owner, name, replacement in targets:
            setattr(owner, name, replacement)
        yield
    finally:
        for owner, name, original in originals:
            setattr(owner, name, original)


@dataclass(frozen=True)
class Mutant:
    """One seeded bug: a name, a story, and a patch context manager."""

    name: str
    description: str
    activate: Callable[[], object]  # returns a context manager


# --------------------------------------------------------------------------- #
# The mutant catalog
# --------------------------------------------------------------------------- #


def _mutant_drop_dominance_edge():
    """The blocked kernel loses the last edge of the first non-empty list."""
    from ..graph import construction

    original = construction.blocked_dominance_lists

    def mutated(dominant, dominated, block_size=construction.DEFAULT_BLOCK_SIZE,
                exclude_diagonal=True):
        lists = original(dominant, dominated, block_size, exclude_diagonal)
        for index, children in enumerate(lists):
            if len(children):
                lists[index] = children[:-1]
                break
        return lists

    return _patched((construction, "blocked_dominance_lists", mutated))


def _mutant_non_strict_dominance():
    """Dominance accepts ``>=`` everywhere without requiring a strict ``>``."""

    def mutated_descendants(self, vertex):
        self._check_vertex(vertex)
        return np.all(self.vectors <= self.vectors[vertex], axis=1)

    def mutated_ancestors(self, vertex):
        self._check_vertex(vertex)
        return np.all(self.vectors >= self.vectors[vertex], axis=1)

    return _patched(
        (PairGraph, "descendant_mask", mutated_descendants),
        (PairGraph, "ancestor_mask", mutated_ancestors),
    )


def _mutant_inverted_propagation():
    """A GREEN answer votes descendants and a RED answer votes ancestors."""
    from ..graph.coloring import Color, ColoringState

    def mutated(self, vertex, answer, propagate=True):
        self.graph._check_vertex(vertex)
        self.asked_order.append(vertex)
        self.colors[vertex] = Color.GREEN if answer else Color.RED
        self._pinned[vertex] = True
        if not propagate:
            return
        if answer:
            targets = self.graph.descendant_mask(vertex)  # bug: wrong direction
            self._green_votes[targets] += 1
        else:
            targets = self.graph.ancestor_mask(vertex)  # bug: wrong direction
            self._red_votes[targets] += 1
        self._refresh(targets)

    return _patched((ColoringState, "apply_answer", mutated))


def _mutant_topo_layer_merge():
    """Every Kahn level collapses into one layer."""
    from ..graph import topo
    from ..selection import topo_sort

    original = topo.topological_layers

    def mutated(graph, active=None):
        layers = original(graph, active)
        if len(layers) <= 1:
            return layers
        return [np.concatenate(layers)]

    return _patched(
        (topo, "topological_layers", mutated),
        (topo_sort, "topological_layers", mutated),
    )


def _mutant_overlapping_paths():
    """The "minimum" path cover repeats a vertex across two paths."""
    from ..graph import matching
    from ..selection import single_path

    original = matching.minimum_path_cover

    def mutated(adjacency):
        paths = original(adjacency)
        if len(paths) >= 2:
            paths[1] = [paths[0][0]] + paths[1]
        return paths

    # single_path hosts the shared cover_paths fallback, so patching it
    # covers both path selectors' scratch paths.
    return _patched(
        (matching, "minimum_path_cover", mutated),
        (single_path, "minimum_path_cover", mutated),
    )


def _mutant_billing_floor():
    """HIT billing floors the question count instead of taking the ceiling."""
    from ..crowd.platform import CrowdSession

    def mutated_hits(self):
        if not self._asked:
            return 0
        return (len(self._asked) // self.pairs_per_hit) * self.crowd.assignments

    return _patched((CrowdSession, "hits", property(mutated_hits)))


def _mutant_weight_blind_votes():
    """Weighted aggregation quietly falls back to an unweighted majority."""
    from ..crowd import platform
    from ..crowd.aggregate import majority_vote

    def mutated(votes, weights):
        return majority_vote(votes)

    return _patched((platform, "weighted_majority_vote", mutated))


def _mutant_shard_merge_drop():
    """The shard vote merge keeps only the first slice's contribution.

    Models the classic parallel-reduction bug: a merge that is only
    correct for a single worker.  Patched at the defining module *and* at
    the resolver's import site, exactly like the other lazily-bound
    helpers, so the sharded lockstep loop actually runs the broken merge.
    """
    from ..shard import merge as shard_merge
    from ..shard import resolver as shard_resolver

    original = shard_merge.merge_vote_deltas

    def mutated(slices, num_vertices):
        slices = list(slices)
        return original(slices[:1], num_vertices)  # bug: drops slices 2..n

    return _patched(
        (shard_merge, "merge_vote_deltas", mutated),
        (shard_resolver, "merge_vote_deltas", mutated),
    )


def _mutant_stale_matching():
    """Deleting a matched left vertex leaves its right claimed by the ghost.

    Models the classic incremental-index bug: a deletion handler that
    updates one side of a bidirectional link.  The warm-started greedy
    matching then under-matches (rights stay claimed by dead vertices), the
    path cover drifts from the scratch reference, and the selection
    transcript diverges — which ``check_selection_incremental`` must notice.
    """
    from ..graph.matching import IncrementalPathCover

    def mutated(self, deleted):
        restart = self._n
        freed: list[int] = []
        gl, gr = self._greedy_left, self._greedy_right
        for w in deleted:
            w = int(w)
            r = int(gl[w])
            if r != -1:
                gl[w] = -1  # bug: gr[r] keeps pointing at the deleted vertex
            u = int(gr[w])
            if u != -1:
                gr[w] = -1
                gl[u] = -1
                if self._active[u] and u < restart:
                    restart = u
        return restart, freed

    return _patched((IncrementalPathCover, "_release_deleted", mutated))


def _mutant_stream_stale_index():
    """A streamed batch's records never really enter the token index.

    Models the classic incremental-index regression: the maintenance path
    runs (no crash, shapes stay consistent) but the first extension's rows
    are written as empty token sets, so those records post no candidates —
    silent pair loss, invisible to every one-shot check because the
    one-shot pipeline builds its :class:`TokenIndex` from scratch.  Only
    the multi-batch tier of ``check_stream_equivalence``, which compares
    the stream's decided-pair universe against the one-shot candidate
    pairs, can notice the hole.
    """
    from ..similarity.batch import TokenIndex

    original = TokenIndex.extend

    def mutated(self, texts):
        first = not getattr(self, "_extend_mutated", False)
        self._extend_mutated = True
        rows_before = self.bits.shape[0]
        result = original(self, texts)
        if first and self.bits.shape[0] > rows_before:
            # bug: the batch "entered" the index as token-empty rows
            self.bits[rows_before:] = 0
            self.sizes[rows_before:] = 0
        return result

    return _patched((TokenIndex, "extend", mutated))


def _mutant_serve_cross_session_leak():
    """The session registry restores the wrong resolver after eviction.

    Models the classic cache-keying bug in a multi-tenant server: the
    restore path grabs whatever resolver is still warm instead of decoding
    the evicted session's own snapshot, silently cross-wiring tenants.  No
    request fails — every op still returns a well-formed response — so the
    leak is invisible to protocol-level checks and to any single-tenant
    run.  Only the evict/restore alternation tier of
    ``check_serve_equivalence``, which gives concurrent tenants *different*
    states and compares each final ``state_sha`` against a direct
    :class:`StreamingResolver` run, can notice that one tenant's batches
    landed in another tenant's session.
    """
    from ..serve.sessions import SessionRegistry

    original = SessionRegistry._restore_resolver

    def mutated(self, name):
        for other_name, live in self._live.items():
            if other_name != name:
                return live.resolver  # bug: another tenant's live resolver
        return original(self, name)

    return _patched((SessionRegistry, "_restore_resolver", mutated))


def _mutant_plan_changes_results():
    """The cost planner silently flips a semantic knob.

    Models the scariest planner regression: ``apply_plan`` — contractually
    limited to pure-performance knobs — also rewrites a *semantic* one
    (here ``epsilon``, disabling the §4.2 grouping), so a planned run
    returns different answers than the static defaults.  No performance
    check can see it (the planned run is perfectly healthy on its own) and
    every other battery step runs with ``plan="off"``; only
    ``check_plan_transparency``, which diffs a planned resolve against the
    static-defaults run bit for bit, can notice — proving that check has
    teeth.  Patched at the defining module; the resolver and the check
    both resolve ``apply_plan`` through the module attribute at call time.
    """
    import dataclasses

    from ..plan import planner as plan_planner

    original = plan_planner.apply_plan

    def mutated(config, plan):
        planned = original(config, plan)
        # bug: the "performance-only" rewrite also disables grouping
        return dataclasses.replace(planned, epsilon=None)

    return _patched((plan_planner, "apply_plan", mutated))


def _mutant_obs_perturbs_selection():
    """Observability stops being read-only: it drops a vertex per round.

    Models the instrumentation bug the transparency contract exists for — a
    hook that *steers* the run instead of observing it.  The perturbation
    fires only when observability is enabled, so every obs-off check in the
    battery sails through; only ``check_observability_transparent`` (the one
    step that runs the pipeline under an active handle and compares it
    against the plain run) can catch it — proving that check has teeth.
    Both call sites (``selection.base``, ``shard.resolver``) import the
    :mod:`repro.obs.instrument` *module*, so patching the defining module's
    attribute reaches them all.
    """
    from ..obs import instrument as obs_instrument

    original = obs_instrument.observe_round

    def mutated(obs, selector_name, round_index, vertices, cover_seconds):
        vertices = original(obs, selector_name, round_index, vertices, cover_seconds)
        if obs.enabled and len(vertices) > 1:
            return vertices[:-1]  # bug: instrumentation steers the run
        return vertices

    return _patched((obs_instrument, "observe_round", mutated))


MUTANTS: tuple[Mutant, ...] = (
    Mutant(
        "drop-dominance-edge",
        "blocked kernel silently loses one dominance edge",
        _mutant_drop_dominance_edge,
    ),
    Mutant(
        "non-strict-dominance",
        "dominance accepts >= everywhere without a strict >",
        _mutant_non_strict_dominance,
    ),
    Mutant(
        "inverted-propagation",
        "GREEN votes descendants and RED votes ancestors",
        _mutant_inverted_propagation,
    ),
    Mutant(
        "topo-layer-merge",
        "all Kahn levels collapse into a single layer",
        _mutant_topo_layer_merge,
    ),
    Mutant(
        "overlapping-paths",
        "the minimum path cover repeats a vertex",
        _mutant_overlapping_paths,
    ),
    Mutant(
        "billing-floor",
        "HIT billing floors instead of ceiling",
        _mutant_billing_floor,
    ),
    Mutant(
        "weight-blind-votes",
        "weighted vote aggregation ignores worker accuracies",
        _mutant_weight_blind_votes,
    ),
    Mutant(
        "shard-merge-drop",
        "the shard vote merge drops every slice's contribution but the first",
        _mutant_shard_merge_drop,
    ),
    Mutant(
        "stale-matching",
        "deleting a matched vertex leaves its matched partner claimed",
        _mutant_stale_matching,
    ),
    Mutant(
        "obs-perturbs-selection",
        "enabled instrumentation drops a vertex from every selection round",
        _mutant_obs_perturbs_selection,
    ),
    Mutant(
        "stream-stale-index",
        "a streamed batch's records enter the token index as empty rows",
        _mutant_stream_stale_index,
    ),
    Mutant(
        "serve-cross-session-leak",
        "the session registry restores another live tenant's resolver",
        _mutant_serve_cross_session_leak,
    ),
    Mutant(
        "plan-changes-results",
        "the cost planner's apply step also flips a semantic knob (epsilon)",
        _mutant_plan_changes_results,
    ),
)


# --------------------------------------------------------------------------- #
# Detection battery
# --------------------------------------------------------------------------- #


@lru_cache(maxsize=2)
def _battery_table(scale: float = 0.05):
    """A small cached restaurant sample for the shard-equivalence step.

    Cached because the detection battery runs once per mutant plus the
    baseline/restore sweeps; the table itself is immutable.
    """
    from ..data.generators import restaurant
    from .battery import subsample_table

    return subsample_table(restaurant(), scale)


def _battery_fixture(seed: int):
    """Deterministic vectors/pairs shaped to exercise every mutant.

    ``round(1)`` quantizes similarities so the partial order has real
    duplicate vectors, long chains, and wide antichains — the regimes where
    the seeded bugs actually bite.
    """
    rng = np.random.default_rng(seed)
    vectors = rng.random((30, 4)).round(1)
    pairs = [(2 * k, 2 * k + 1) for k in range(30)]
    return pairs, vectors


def run_detection_battery(
    seed: int = 0,
    include_stream: bool = True,
    include_serve: bool = True,
    include_plan: bool = True,
) -> None:
    """The compact all-subsystem sweep each mutant must fail.

    Raises :class:`~repro.exceptions.VerificationError` (or crashes) on the
    first check that notices anything wrong; completes silently on healthy
    code.

    Args:
        seed: base seed threaded through every stochastic component.
        include_stream: run the streaming-equivalence step.  On by default;
            the flag exists so tests can prove ``stream-stale-index`` is
            detected by *only* that step (the battery minus the stream
            check must sail through under the mutant).
        include_serve: run the serve-equivalence step, with the analogous
            exclusivity role for ``serve-cross-session-leak``.
        include_plan: run the plan-transparency step, with the analogous
            exclusivity role for ``plan-changes-results`` (no other step
            runs a planned resolve).
    """
    pairs, vectors = _battery_fixture(seed)

    # Construction + structural invariants.
    oracles.check_dominance_construction(vectors)
    graph = PairGraph(pairs, vectors)
    invariants.check_partial_order(graph)
    invariants.check_acyclicity(graph)
    invariants.check_topo_layers(graph)
    invariants.check_path_cover(graph)

    # Selector runs: production-vs-naive and the monotone exactness oracle.
    oracles.check_selector_differential("power", pairs, vectors, seed=seed)
    oracles.check_selector_differential("single-path", pairs, vectors, seed=seed)
    oracles.check_selector_monotone_oracle("power", pairs, vectors, seed=seed)

    # Incremental selection engine vs the per-round scratch reference.
    oracles.check_selection_incremental("single-path", pairs, vectors, seed=seed)
    oracles.check_selection_incremental("multi-path", pairs, vectors, seed=seed)

    # Billing: 13 distinct questions at 5 pairs/HIT makes floor != ceil.
    truth = {pair: True for pair in pairs}
    session = PerfectCrowd(truth).session(pairs_per_hit=5)
    session.ask_batch(pairs[:13])
    invariants.check_session_coherence(session)

    # Crowd aggregation: heterogeneous accuracies, weighted majority.
    mixed_truth = {pair: bool(index % 2) for index, pair in enumerate(pairs)}
    crowd = SimulatedCrowd(
        mixed_truth,
        pool=WorkerPool(accuracy_range="80", seed=seed),
        assignments=5,
        aggregation="weighted",
    )
    oracles.check_crowd_aggregation(crowd, pairs[:10])

    # Sharded lockstep vs serial resolver: inline (workers=0), >= 2 slices,
    # so a merge that drops or double-counts a shard's contribution has to
    # change the transcript, the labels, or the bill.
    oracles.check_shard_equivalence(
        _battery_table(), seed=seed, shard_counts=(2, 3)
    )

    # Streamed vs one-shot resolution (single batch, multi batch under the
    # monotone exactness oracle, kill-resume): the only step that exercises
    # TokenIndex.extend, hence the only one able to catch the
    # stream-stale-index mutant.
    if include_stream:
        oracles.check_stream_equivalence(
            _battery_table(), seed=seed, batch_counts=(3,)
        )

    # Server-hosted sessions vs direct streams (concurrent tenants over
    # real sockets, then a forced evict/restore alternation): the only
    # step that exercises the session registry, hence the only one able
    # to catch the serve-cross-session-leak mutant.
    if include_serve:
        oracles.check_serve_equivalence(
            _battery_table(), seed=seed, tenants=2, batches=2
        )

    # Observability transparency: the only step that runs with an active
    # obs handle, hence the only one able to catch instrumentation that
    # perturbs the run (the obs-perturbs-selection mutant).
    oracles.check_observability_transparent("power", pairs, vectors, seed=seed)

    # Plan transparency: the only step that runs a planned resolve
    # (everything else keeps the default plan="off"), hence the only one
    # able to catch a planner that flips a semantic knob (the
    # plan-changes-results mutant).
    if include_plan:
        oracles.check_plan_transparency(_battery_table(), seed=seed)


def run_mutation_selftest(seed: int = 0) -> VerificationReport:
    """Activate each mutant, demand the battery notices, restore, repeat.

    Returns:
        A report with one entry per mutant.  An entry *passes* when the
        battery raised under the mutant (bug detected) and the pristine
        battery still passes afterwards (patch fully restored).
    """
    from .report import CheckResult

    report = VerificationReport()
    # The battery must be green on unmutated code or detections mean nothing.
    try:
        run_detection_battery(seed)
    except Exception as error:  # noqa: BLE001 - any failure poisons the test
        report.add(
            CheckResult(
                name="mutation-selftest-baseline",
                passed=False,
                detail=f"battery fails on pristine code: {error}",
            )
        )
        return report

    for mutant in MUTANTS:
        started = time.perf_counter()
        detected_by: str | None = None
        with mutant.activate():
            try:
                run_detection_battery(seed)
            except VerificationError as error:
                detected_by = f"VerificationError: {error}"
            except Exception as error:  # noqa: BLE001 - loud crash also counts
                detected_by = f"{type(error).__name__}: {error}"
        elapsed = time.perf_counter() - started
        if detected_by is None:
            report.add(
                CheckResult(
                    name=f"mutant[{mutant.name}]",
                    passed=False,
                    detail=(
                        f"seeded bug went undetected: {mutant.description}"
                    ),
                    seconds=elapsed,
                )
            )
        else:
            first_line = detected_by.splitlines()[0][:160]
            report.add(
                CheckResult(
                    name=f"mutant[{mutant.name}]",
                    passed=True,
                    detail=first_line,
                    seconds=elapsed,
                )
            )
    # Restoration check: the pristine battery must still pass.
    started = time.perf_counter()
    try:
        run_detection_battery(seed)
    except Exception as error:  # noqa: BLE001
        report.add(
            CheckResult(
                name="mutation-selftest-restore",
                passed=False,
                detail=f"battery fails after restore: {error}",
                seconds=time.perf_counter() - started,
            )
        )
    else:
        report.add(
            CheckResult(
                name="mutation-selftest-restore",
                passed=True,
                seconds=time.perf_counter() - started,
            )
        )
    return report


def detected_mutants(report: VerificationReport) -> list[str]:
    """Names of mutants the battery caught (convenience for tests/CLI)."""
    return [
        result.name.removeprefix("mutant[").removesuffix("]")
        for result in report.results
        if result.name.startswith("mutant[") and result.passed
    ]


__all__ = [
    "MUTANTS",
    "Mutant",
    "run_detection_battery",
    "run_mutation_selftest",
    "detected_mutants",
]
