"""Metamorphic properties: relations between runs that must always hold.

Differential oracles need a reference implementation; metamorphic checks
need only a *transformed input* and a law connecting the two outputs:

* :func:`check_permutation_invariance` — shuffling the record order must
  not change the candidate-pair set, the similarity vectors, the dominance
  relation, or the resolved partition (modulo the relabeling);
* :func:`check_duplicate_idempotence` — appending an exact copy of a record
  must put the copy in its source's cluster and leave the partition of the
  original records untouched;
* :func:`check_cost_monotonicity` — growing the question budget must never
  reduce the questions asked or the money spent, and must never overspend.

End-to-end runs use a perfect crowd over *order-monotone* truth
(:func:`~repro.verify.oracles.monotone_truth`), under which a correct
pipeline provably recovers the truth exactly — so the laws above are
theorems about the machinery, not statistical tendencies of the workload.
The checks are deterministic (seeded); the test suite additionally drives
them through hypothesis.
"""

from __future__ import annotations

import numpy as np

from ..core.clustering import clusters_from_matches
from ..core.config import PowerConfig
from ..crowd.platform import PerfectCrowd
from ..data.table import Table
from ..exceptions import VerificationError
from ..graph.dag import PairGraph
from ..selection import SELECTORS
from .oracles import monotone_truth, naive_dominance_edges


def _permute_table(table: Table, permutation: np.ndarray) -> Table:
    """A copy of *table* with records in *permutation* order."""
    rows = [table[int(old)].values for old in permutation]
    entity_ids = [table[int(old)].entity_id for old in permutation]
    return Table.from_rows(
        name=f"{table.name}-permuted",
        attributes=table.attributes,
        rows=rows,
        entity_ids=entity_ids,
    )


def _monotone_resolution(table: Table, config: PowerConfig, cutoff: float | None):
    """Pipeline run against a perfect crowd over order-monotone truth.

    Returns ``(pairs, vectors, clusters, cutoff)``.  Grouping is disabled:
    a grouped vertex answers one member for the whole group, so exact truth
    recovery — the property the metamorphic laws lean on — is only
    guaranteed per-vertex.
    """
    from ..core.resolver import PowerResolver

    resolver = PowerResolver(config)
    pairs = resolver.candidate_pairs(table)
    if not pairs:
        raise VerificationError(
            f"no candidate pairs survive pruning on {table.name!r}; the "
            "metamorphic checks need a non-trivial graph"
        )
    vectors = resolver.similarity_vectors(table, pairs)
    if cutoff is None:
        cutoff = float(np.median(vectors.mean(axis=1)))
    vertex_truth = monotone_truth(vectors, cutoff)
    truth = {pair: vertex_truth[vertex] for vertex, pair in enumerate(pairs)}
    graph = PairGraph(pairs, vectors)
    session = PerfectCrowd(truth).session()
    selection = resolver.make_selector().run(graph, session)
    clusters = clusters_from_matches(len(table), selection.matches)
    return pairs, vectors, clusters, cutoff


def _partition_signature(clusters, relabel=None) -> set[frozenset[int]]:
    if relabel is None:
        return {frozenset(cluster) for cluster in clusters}
    return {frozenset(relabel[member] for member in cluster) for cluster in clusters}


def check_permutation_invariance(
    table: Table, seed: int = 0, config: PowerConfig | None = None
) -> None:
    """Record order must not matter.

    The candidate pairs, similarity vectors, dominance relation, and the
    resolved partition of the permuted table, all mapped back through the
    permutation, must equal the originals exactly.
    """
    config = config or PowerConfig(seed=seed, epsilon=None)
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(len(table))
    # new record id k holds old record permutation[k].
    back = {new: int(old) for new, old in enumerate(permutation)}
    permuted = _permute_table(table, permutation)

    base_pairs, base_vectors, base_clusters, cutoff = _monotone_resolution(
        table, config, cutoff=None
    )
    perm_pairs, perm_vectors, perm_clusters, _ = _monotone_resolution(
        permuted, config, cutoff=cutoff
    )

    mapped_pairs = {
        tuple(sorted((back[i], back[j]))) for i, j in perm_pairs
    }
    if mapped_pairs != set(base_pairs):
        raise VerificationError(
            f"permutation (seed {seed}) changed the candidate-pair set: "
            f"{len(base_pairs)} vs {len(perm_pairs)} pairs"
        )
    base_vector_of = {pair: tuple(row) for pair, row in zip(base_pairs, base_vectors)}
    for pair, row in zip(perm_pairs, perm_vectors):
        mapped = tuple(sorted((back[pair[0]], back[pair[1]])))
        if base_vector_of[mapped] != tuple(row):
            raise VerificationError(
                f"permutation (seed {seed}) changed the similarity vector of "
                f"pair {mapped}: {base_vector_of[mapped]} vs {tuple(row)}"
            )
    # Dominance relation, expressed over pairs instead of vertex ids.
    base_index = {pair: k for k, pair in enumerate(base_pairs)}
    perm_to_base = [
        base_index[tuple(sorted((back[i], back[j])))] for i, j in perm_pairs
    ]
    base_edges = naive_dominance_edges(base_vectors)
    perm_edges = {
        (perm_to_base[u], perm_to_base[v])
        for u, v in naive_dominance_edges(perm_vectors)
    }
    if base_edges != perm_edges:
        raise VerificationError(
            f"permutation (seed {seed}) changed the dominance relation: "
            f"{len(base_edges)} vs {len(perm_edges)} edges"
        )
    if _partition_signature(base_clusters) != _partition_signature(perm_clusters, back):
        raise VerificationError(
            f"permutation (seed {seed}) changed the resolved partition: "
            f"{len(base_clusters)} vs {len(perm_clusters)} clusters"
        )


def check_duplicate_idempotence(
    table: Table, record_id: int = 0, config: PowerConfig | None = None
) -> None:
    """An exact duplicate record must join its source's cluster and leave
    the partition of the original records untouched."""
    config = config or PowerConfig(epsilon=None)
    source = table[record_id]
    augmented = Table.from_rows(
        name=f"{table.name}-dup",
        attributes=table.attributes,
        rows=[record.values for record in table] + [source.values],
        entity_ids=[record.entity_id for record in table] + [source.entity_id],
    )
    duplicate_id = len(table)
    _, _, base_clusters, cutoff = _monotone_resolution(table, config, cutoff=None)
    _, _, dup_clusters, _ = _monotone_resolution(augmented, config, cutoff=cutoff)
    dup_cluster = next(
        cluster for cluster in dup_clusters if duplicate_id in cluster
    )
    if record_id not in dup_cluster:
        raise VerificationError(
            f"duplicate of record {record_id} landed in cluster {dup_cluster} "
            "without its source"
        )
    stripped = {
        frozenset(member for member in cluster if member != duplicate_id)
        for cluster in dup_clusters
    }
    stripped.discard(frozenset())
    if stripped != _partition_signature(base_clusters):
        raise VerificationError(
            f"appending a duplicate of record {record_id} changed the "
            "partition of the original records"
        )


def check_cost_monotonicity(
    pairs,
    vectors: np.ndarray,
    selector_name: str = "power",
    seed: int = 0,
    budgets: tuple[int, ...] = (0, 2, 5, 10, 10_000),
) -> None:
    """More budget must never buy fewer questions or a smaller bill.

    Each budget gets a fresh selector and a fresh perfect crowd over the
    same graph; as the cap grows, questions asked and cost must be
    non-decreasing, and no run may overspend its cap.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    vertex_truth = monotone_truth(vectors)
    truth = {pair: vertex_truth[vertex] for vertex, pair in enumerate(pairs)}
    previous: tuple[int, int, int] | None = None
    for budget in sorted(budgets):
        graph = PairGraph(pairs, vectors)
        session = PerfectCrowd(truth).session()
        selector = SELECTORS[selector_name](seed=seed)
        result = selector.run(graph, session, budget=budget)
        if result.questions > budget:
            raise VerificationError(
                f"budget {budget} overspent: {result.questions} questions asked"
            )
        if previous is not None:
            prev_budget, prev_questions, prev_cost = previous
            if result.questions < prev_questions:
                raise VerificationError(
                    f"questions fell from {prev_questions} (budget {prev_budget}) "
                    f"to {result.questions} (budget {budget})"
                )
            if result.cost_cents < prev_cost:
                raise VerificationError(
                    f"cost fell from {prev_cost} (budget {prev_budget}) to "
                    f"{result.cost_cents} cents (budget {budget})"
                )
        previous = (budget, result.questions, result.cost_cents)
