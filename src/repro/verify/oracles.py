"""Differential oracles: brute-force references for the production paths.

Every optimized component of the pipeline has a deliberately naive twin in
this module — small, loop-heavy, obviously-correct Python that recomputes
the same answer from first principles:

* :func:`naive_dominance_edges` — O(n^2 m) strict-dominance edges, written
  independently of :mod:`repro.graph.construction` (no shared comparator).
* :func:`naive_transitive_closure` — BFS closure, used to certify that the
  dominance relation is its own transitive closure.
* :class:`NaivePairGraph` / :class:`NaiveGroupedGraph` — brute-force
  :class:`~repro.graph.dag.OrderedGraph` implementations.  Running the
  *same* selector against the naive and the production graph with identical
  crowds must produce identical runs, question for question — which
  exercises the blocked dominance kernel, the vectorized masks, and the
  grouped-bound arithmetic under every selector's real access pattern.
* :class:`ReferenceColoring` — a dict/set replay of the coloring engine's
  pin-and-vote semantics (§3.2/§5.3), cross-checked against the production
  :class:`~repro.graph.coloring.ColoringState` after each run.
* :class:`GreedyReferenceSelector` — a deterministic greedy selector used
  as an end-to-end reference policy.
* :func:`monotone_truth` — ground truth that respects the partial order by
  construction, so a perfect crowd plus correct inference must reproduce it
  *exactly* (the end-to-end oracle).

All oracles raise :class:`~repro.exceptions.VerificationError` with a
pinpointed counterexample on disagreement.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

import numpy as np

from ..crowd.platform import PerfectCrowd, SimulatedCrowd
from ..crowd.worker import WorkerPool
from ..data.ground_truth import Pair
from ..data.table import Table
from ..exceptions import VerificationError
from ..graph.coloring import Color, ColoringState
from ..graph.dag import OrderedGraph, PairGraph
from ..graph.grouped_graph import GroupedGraph
from ..selection import SELECTORS
from ..selection.base import QuestionSelector, SelectionResult
from ..similarity.vectors import SimilarityConfig, similarity_matrix

Edge = tuple[int, int]


# --------------------------------------------------------------------------- #
# Naive dominance relation
# --------------------------------------------------------------------------- #


def naive_dominance_edges(vectors: np.ndarray) -> set[Edge]:
    """Strict-dominance edges by definition: two nested Python loops.

    Independent of :mod:`repro.graph.construction` — no shared comparator,
    no numpy broadcasting — so a bug there cannot hide here.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    rows = [list(map(float, row)) for row in vectors]
    edges: set[Edge] = set()
    for u, row_u in enumerate(rows):
        for v, row_v in enumerate(rows):
            if u == v:
                continue
            if all(a >= b for a, b in zip(row_u, row_v)) and any(
                a > b for a, b in zip(row_u, row_v)
            ):
                edges.add((u, v))
    return edges


def naive_transitive_closure(edges: set[Edge], num_vertices: int) -> set[Edge]:
    """Reachability closure of *edges* via per-vertex BFS."""
    children: dict[int, list[int]] = {v: [] for v in range(num_vertices)}
    for u, v in edges:
        children[u].append(v)
    closure: set[Edge] = set()
    for source in range(num_vertices):
        seen = {source}
        queue = deque(children[source])
        while queue:
            vertex = queue.popleft()
            if vertex in seen:
                continue
            seen.add(vertex)
            closure.add((source, vertex))
            queue.extend(children[vertex])
    return closure


def _diff_edges(label_a: str, edges_a: set[Edge], label_b: str, edges_b: set[Edge]) -> None:
    if edges_a == edges_b:
        return
    missing = sorted(edges_a - edges_b)[:5]
    extra = sorted(edges_b - edges_a)[:5]
    raise VerificationError(
        f"{label_b} disagrees with {label_a}: "
        f"{len(edges_a - edges_b)} missing (e.g. {missing}), "
        f"{len(edges_b - edges_a)} extra (e.g. {extra})"
    )


def check_dominance_construction(vectors: np.ndarray) -> None:
    """All §4.1 construction algorithms must equal the naive edge set.

    Covers ``brute-force``, ``quicksort``, ``index`` (when m >= 2),
    ``vectorized``, ``blocked``, and the adjacency-list form of the blocked
    kernel (:func:`~repro.graph.construction.blocked_dominance_lists`).
    """
    from ..graph.construction import (
        CONSTRUCTION_ALGORITHMS,
        blocked_dominance_lists,
    )

    vectors = np.asarray(vectors, dtype=np.float64)
    reference = naive_dominance_edges(vectors)
    for name, algorithm in CONSTRUCTION_ALGORITHMS.items():
        if name == "index" and vectors.shape[1] < 2:
            continue
        _diff_edges("naive oracle", reference, f"construction[{name}]", algorithm(vectors))
    lists = blocked_dominance_lists(vectors, vectors, block_size=7)
    if len(lists) != vectors.shape[0]:
        raise VerificationError(
            f"blocked_dominance_lists returned {len(lists)} lists for "
            f"{vectors.shape[0]} vertices"
        )
    from_lists = {
        (u, int(v)) for u, children in enumerate(lists) for v in children
    }
    _diff_edges("naive oracle", reference, "blocked_dominance_lists", from_lists)


def check_transitive_closure(vectors: np.ndarray) -> None:
    """The dominance relation must be its own transitive closure."""
    edges = naive_dominance_edges(vectors)
    closure = naive_transitive_closure(edges, np.asarray(vectors).shape[0])
    _diff_edges("dominance edges", edges, "their transitive closure", closure)


# --------------------------------------------------------------------------- #
# Naive similarity oracles
# --------------------------------------------------------------------------- #


def check_batch_similarity(
    table: Table, pairs: Sequence[Pair], config: SimilarityConfig
) -> None:
    """The batch similarity matrix must be bit-identical to the scalar one."""
    from ..similarity.batch import batch_similarity_matrix

    reference = similarity_matrix(table, pairs, config)
    fast = batch_similarity_matrix(table, pairs, config)
    if reference.shape != fast.shape:
        raise VerificationError(
            f"batch similarity shape {fast.shape} != scalar {reference.shape}"
        )
    if len(pairs) and not np.array_equal(reference, fast):
        row, col = np.argwhere(reference != fast)[0]
        raise VerificationError(
            f"batch similarity differs from scalar at pair {pairs[row]} "
            f"attribute {col}: {fast[row, col]!r} != {reference[row, col]!r}"
        )


def check_join_methods(table: Table, threshold: float) -> None:
    """naive / prefix / sparse joins must produce the identical pair set."""
    from ..similarity.join import similar_pairs

    reference = similar_pairs(table, threshold, method="naive")
    for method in ("prefix", "sparse"):
        candidate = similar_pairs(table, threshold, method=method)
        _diff_edges(
            "naive join", set(reference), f"{method} join", set(candidate)
        )


# --------------------------------------------------------------------------- #
# Naive crowd aggregation oracle
# --------------------------------------------------------------------------- #


def check_crowd_aggregation(crowd: SimulatedCrowd, pairs: Sequence[Pair]) -> None:
    """The platform's cached answers must equal a naive recomputation.

    For every pair the oracle re-derives the worker assignment, the
    individual votes, and the (weighted) majority aggregate with plain
    Python loops, then compares answer, confidence, and the vote tuple
    against ``crowd.answer`` — twice, so a poisoned or bypassed answer
    cache is caught as well.
    """
    from ..data.ground_truth import canonical_pair

    for raw_pair in pairs:
        pair = canonical_pair(*raw_pair)
        truth = crowd.truth[pair]
        workers = crowd._select_workers(pair)
        difficulty = (
            1.0 if crowd.difficulty is None else crowd.difficulty.get(pair, 1.0)
        )
        votes = [worker.answer(pair, truth, difficulty) for worker in workers]
        if crowd.aggregation == "weighted":
            weights = [worker.accuracy for worker in workers]
            yes_weight = sum(
                weight for vote, weight in zip(votes, weights) if vote
            )
            total = sum(weights)
            expected_answer = yes_weight > total - yes_weight
            expected_confidence = max(yes_weight, total - yes_weight) / total
        else:
            yes = sum(votes)
            expected_answer = yes > len(votes) - yes
            expected_confidence = max(yes, len(votes) - yes) / len(votes)
        for attempt in ("first ask", "cached re-ask"):
            outcome = crowd.answer(pair)
            if (
                outcome.answer != expected_answer
                or outcome.confidence != expected_confidence
                or tuple(outcome.votes) != tuple(votes)
            ):
                raise VerificationError(
                    f"crowd aggregation for pair {pair} ({attempt}) disagrees "
                    f"with the naive recomputation: platform "
                    f"({outcome.answer}, {outcome.confidence:.4f}, {outcome.votes}) "
                    f"vs naive ({expected_answer}, {expected_confidence:.4f}, "
                    f"{tuple(votes)})"
                )


# --------------------------------------------------------------------------- #
# Naive graphs: brute-force OrderedGraph implementations
# --------------------------------------------------------------------------- #


class NaivePairGraph(PairGraph):
    """Brute-force twin of :class:`~repro.graph.dag.PairGraph`.

    Subclasses :class:`PairGraph` only to satisfy the ``isinstance`` checks
    scattered through the selectors (topological keys, error-tolerant base
    lookup); every dominance primitive is overridden with pure-Python
    comparisons, and ``_dominance_operands`` returns ``None`` so adjacency is
    built through the per-vertex reference loop instead of the blocked
    kernel.
    """

    def __init__(self, pairs: Sequence[Pair], vectors: np.ndarray) -> None:
        super().__init__(pairs, vectors)
        self._rows = [list(map(float, row)) for row in self.vectors]

    def _dominance_operands(self) -> None:  # type: ignore[override]
        return None

    @staticmethod
    def _dominates(row_u: list[float], row_v: list[float]) -> bool:
        return all(a >= b for a, b in zip(row_u, row_v)) and any(
            a > b for a, b in zip(row_u, row_v)
        )

    def descendant_mask(self, vertex: int) -> np.ndarray:
        self._check_vertex(vertex)
        row = self._rows[vertex]
        mask = np.zeros(len(self), dtype=bool)
        for other, other_row in enumerate(self._rows):
            if other != vertex and self._dominates(row, other_row):
                mask[other] = True
        return mask

    def ancestor_mask(self, vertex: int) -> np.ndarray:
        self._check_vertex(vertex)
        row = self._rows[vertex]
        mask = np.zeros(len(self), dtype=bool)
        for other, other_row in enumerate(self._rows):
            if other != vertex and self._dominates(other_row, row):
                mask[other] = True
        return mask


class NaiveGroupedGraph(OrderedGraph):
    """Brute-force twin of :class:`~repro.graph.grouped_graph.GroupedGraph`.

    Built from the same base graph and grouping, but group bounds and the
    Eq. 5-6 dominance test are recomputed with Python loops.
    """

    def __init__(self, base: NaivePairGraph | PairGraph, grouping: Sequence[Sequence[int]]) -> None:
        super().__init__(num_vertices=len(grouping))
        self.base = base
        self.grouping = [list(group) for group in grouping]
        vectors = np.asarray(base.vectors, dtype=np.float64)
        self._lower = [
            [min(float(vectors[member][k]) for member in group) for k in range(vectors.shape[1])]
            for group in self.grouping
        ]
        self._upper = [
            [max(float(vectors[member][k]) for member in group) for k in range(vectors.shape[1])]
            for group in self.grouping
        ]

    @property
    def num_attributes(self) -> int:
        return len(self._lower[0]) if self._lower else 0

    @property
    def lower_bounds(self) -> np.ndarray:
        """Per-group lower-bound vectors (matches :class:`GroupedGraph`)."""
        return np.asarray(self._lower, dtype=np.float64)

    @property
    def upper_bounds(self) -> np.ndarray:
        """Per-group upper-bound vectors (matches :class:`GroupedGraph`)."""
        return np.asarray(self._upper, dtype=np.float64)

    def _dominates(self, u: int, v: int) -> bool:
        lower_u, upper_v = self._lower[u], self._upper[v]
        return all(a >= b for a, b in zip(lower_u, upper_v)) and any(
            a > b for a, b in zip(lower_u, upper_v)
        )

    def descendant_mask(self, vertex: int) -> np.ndarray:
        self._check_vertex(vertex)
        mask = np.zeros(len(self), dtype=bool)
        for other in range(len(self)):
            if other != vertex and self._dominates(vertex, other):
                mask[other] = True
        return mask

    def ancestor_mask(self, vertex: int) -> np.ndarray:
        self._check_vertex(vertex)
        mask = np.zeros(len(self), dtype=bool)
        for other in range(len(self)):
            if other != vertex and self._dominates(other, vertex):
                mask[other] = True
        return mask

    def member_pairs(self, vertex: int) -> tuple[Pair, ...]:
        self._check_vertex(vertex)
        return tuple(self.base.pairs[member] for member in self.grouping[vertex])

    def representative_pair(self, vertex: int, rng: np.random.Generator) -> Pair:
        self._check_vertex(vertex)
        group = self.grouping[vertex]
        return self.base.pairs[group[int(rng.integers(0, len(group)))]]


# --------------------------------------------------------------------------- #
# Reference coloring: dict/set replay of the pin-and-vote engine
# --------------------------------------------------------------------------- #


class ReferenceColoring:
    """Pure-Python replay of :class:`~repro.graph.coloring.ColoringState`.

    Pinned answers never change; unpinned vertices take the majority of the
    GREEN/RED votes they received, ties RED; BLUE vertices are pinned and
    inert — the exact §3.2/§5.3 semantics, recomputed over a naive edge
    dictionary.
    """

    def __init__(self, edges: set[Edge], num_vertices: int) -> None:
        self.num_vertices = num_vertices
        self.parents: dict[int, set[int]] = {v: set() for v in range(num_vertices)}
        self.children: dict[int, set[int]] = {v: set() for v in range(num_vertices)}
        for u, v in edges:
            self.children[u].add(v)
            self.parents[v].add(u)
        self.pinned: dict[int, Color] = {}
        self.green_votes = [0] * num_vertices
        self.red_votes = [0] * num_vertices

    def apply(self, vertex: int, color: Color) -> None:
        self.pinned[vertex] = color
        if color == Color.GREEN:
            for ancestor in self.parents[vertex]:
                self.green_votes[ancestor] += 1
        elif color == Color.RED:
            for descendant in self.children[vertex]:
                self.red_votes[descendant] += 1
        # BLUE pins without voting, per mark_blue.

    def color_of(self, vertex: int) -> Color:
        pinned = self.pinned.get(vertex)
        if pinned is not None:
            return pinned
        greens, reds = self.green_votes[vertex], self.red_votes[vertex]
        if greens == 0 and reds == 0:
            return Color.UNCOLORED
        return Color.GREEN if greens > reds else Color.RED

    def colors(self) -> list[Color]:
        return [self.color_of(vertex) for vertex in range(self.num_vertices)]


def _graph_edges(graph: OrderedGraph) -> set[Edge]:
    """The graph's dominance relation recomputed naively from its own data."""
    if isinstance(graph, (PairGraph, NaivePairGraph)):
        return naive_dominance_edges(graph.vectors)
    if isinstance(graph, GroupedGraph):
        edges: set[Edge] = set()
        lower, upper = graph.lower_bounds, graph.upper_bounds
        for u in range(len(graph)):
            for v in range(len(graph)):
                if u == v:
                    continue
                if all(
                    float(lower[u][k]) >= float(upper[v][k])
                    for k in range(lower.shape[1])
                ) and any(
                    float(lower[u][k]) > float(upper[v][k])
                    for k in range(lower.shape[1])
                ):
                    edges.add((u, v))
        return edges
    if isinstance(graph, NaiveGroupedGraph):
        return {
            (u, v)
            for u in range(len(graph))
            for v in range(len(graph))
            if u != v and graph._dominates(u, v)
        }
    # Fallback: trust the masks (still exercises the mask/adjacency pairing).
    return {
        (u, int(v))
        for u in range(len(graph))
        for v in np.flatnonzero(graph.descendant_mask(u))
    }


def check_coloring_replay(graph: OrderedGraph, state: ColoringState) -> None:
    """Replay a finished run's pinned answers through :class:`ReferenceColoring`.

    The production state's final colors must match the replay vertex for
    vertex; any divergence means the vectorized vote propagation or the
    pinning rules drifted from the paper's semantics.
    """
    replay = ReferenceColoring(_graph_edges(graph), len(graph))
    for vertex in state.asked_order:
        replay.apply(vertex, Color(int(state.colors[vertex])))
    # force_color pins (histogram step) are pinned outside asked_order.
    for vertex in range(len(graph)):
        if state._pinned[vertex] and vertex not in replay.pinned:
            replay.pinned[vertex] = Color(int(state.colors[vertex]))
    expected = replay.colors()
    for vertex in range(len(graph)):
        actual = Color(int(state.colors[vertex]))
        if actual != expected[vertex]:
            raise VerificationError(
                f"coloring replay disagrees at vertex {vertex}: production "
                f"{actual.name}, reference {expected[vertex].name} "
                f"(green votes {replay.green_votes[vertex]}, "
                f"red votes {replay.red_votes[vertex]})"
            )


# --------------------------------------------------------------------------- #
# Reference selector + monotone end-to-end oracle
# --------------------------------------------------------------------------- #


class GreedyReferenceSelector(QuestionSelector):
    """Deterministic greedy reference policy.

    Asks the uncolored vertex with the most uncolored comparable partners
    (ancestors + descendants), lowest id on ties — an obviously-correct
    "maximize immediate inference" strategy used as an end-to-end reference
    run for the coloring engine and the crowd session plumbing.
    """

    name = "greedy-reference"

    def select(
        self, graph: OrderedGraph, state: ColoringState, rng: np.random.Generator
    ) -> list[int]:
        uncolored = state.uncolored_mask()
        best_vertex, best_score = -1, -1
        for vertex in np.flatnonzero(uncolored):
            vertex = int(vertex)
            score = int(
                np.count_nonzero(graph.ancestor_mask(vertex) & uncolored)
                + np.count_nonzero(graph.descendant_mask(vertex) & uncolored)
            )
            if score > best_score:
                best_vertex, best_score = vertex, score
        return [best_vertex]


def monotone_truth(vectors: np.ndarray, cutoff: float | None = None) -> dict[int, bool]:
    """Per-vertex truth that respects the partial order by construction.

    A vertex matches iff its mean attribute similarity reaches *cutoff*
    (default: the median).  Since ``u > v`` implies ``mean(u) >= mean(v)``,
    this truth is monotone along dominance edges, so a perfect crowd plus a
    correct inference engine must reproduce it *exactly* whatever the
    selector asks.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    means = vectors.mean(axis=1) if vectors.size else np.zeros(vectors.shape[0])
    if cutoff is None:
        cutoff = float(np.median(means)) if means.size else 0.5
    return {vertex: bool(means[vertex] >= cutoff) for vertex in range(vectors.shape[0])}


def _run_selector(
    selector_name: str,
    graph: OrderedGraph,
    truth: dict[Pair, bool],
    seed: int,
    band: str | None = None,
    incremental: bool = True,
) -> SelectionResult:
    if selector_name == "greedy-reference":
        selector = GreedyReferenceSelector(seed=seed, incremental=incremental)
    else:
        selector = SELECTORS[selector_name](seed=seed, incremental=incremental)
    if band is None:
        crowd: SimulatedCrowd = PerfectCrowd(truth)
    else:
        crowd = SimulatedCrowd(
            truth, pool=WorkerPool(accuracy_range=band, seed=seed), assignments=5
        )
    return selector.run(graph, crowd.session())


def _pair_truth_from_vertices(
    pairs: Sequence[Pair], vertex_truth: dict[int, bool]
) -> dict[Pair, bool]:
    return {pair: vertex_truth[vertex] for vertex, pair in enumerate(pairs)}


def check_selector_differential(
    selector_name: str,
    pairs: Sequence[Pair],
    vectors: np.ndarray,
    seed: int,
    epsilon: float | None = None,
    band: str | None = None,
) -> None:
    """One selector, two graphs: production vs brute-force must agree exactly.

    The same selector (same seed) runs once on the production graph
    (:class:`PairGraph`, optionally grouped) and once on its naive twin,
    each against an identical fresh crowd.  Labels, question counts,
    iteration counts, and final coloring must all be equal — any divergence
    means a production graph primitive (blocked kernel, vectorized mask,
    grouped bound) lied to the selector at some step.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    truth = _pair_truth_from_vertices(pairs, monotone_truth(vectors))
    production_base = PairGraph(pairs, vectors)
    naive_base = NaivePairGraph(pairs, vectors)
    production: OrderedGraph = production_base
    naive: OrderedGraph = naive_base
    if epsilon is not None:
        from ..graph.grouping import split_grouping

        grouping = split_grouping(vectors, epsilon)
        production = GroupedGraph(production_base, grouping)
        naive = NaiveGroupedGraph(naive_base, grouping)
    fast = _run_selector(selector_name, production, truth, seed, band=band)
    slow = _run_selector(selector_name, naive, truth, seed, band=band)
    label = f"selector[{selector_name}] seed={seed} epsilon={epsilon}"
    if fast.labels != slow.labels:
        diff = [
            pair
            for pair in set(fast.labels) | set(slow.labels)
            if fast.labels.get(pair) != slow.labels.get(pair)
        ][:5]
        raise VerificationError(
            f"{label}: production and naive graphs disagree on labels "
            f"(e.g. {diff})"
        )
    if (fast.questions, fast.iterations) != (slow.questions, slow.iterations):
        raise VerificationError(
            f"{label}: question/iteration counts diverge: production "
            f"({fast.questions}, {fast.iterations}) vs naive "
            f"({slow.questions}, {slow.iterations})"
        )
    if fast.state is not None and slow.state is not None and not np.array_equal(
        fast.state.colors, slow.state.colors
    ):
        vertex = int(np.flatnonzero(fast.state.colors != slow.state.colors)[0])
        raise VerificationError(
            f"{label}: final colors diverge at vertex {vertex}"
        )
    if fast.state is not None:
        check_coloring_replay(production, fast.state)


def check_selection_incremental(
    selector_name: str,
    pairs: Sequence[Pair],
    vectors: np.ndarray,
    seed: int,
    epsilon: float | None = None,
    band: str | None = None,
) -> None:
    """Incremental selection must be byte-identical to the scratch reference.

    The same selector (same seed, same crowd construction) runs once with
    the incremental engine (reachability index + warm-started path covers)
    and once forced onto the per-round scratch paths, on *fresh* graph
    instances so no index leaks across sides.  Questions asked — vertex for
    vertex, in order — labels, counts, and the final coloring must all be
    equal; any divergence means the warm-started matching or the packed
    propagation masks drifted from the reference.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    truth = _pair_truth_from_vertices(pairs, monotone_truth(vectors))

    def build() -> OrderedGraph:
        base = PairGraph(pairs, vectors)
        if epsilon is None:
            return base
        from ..graph.grouping import split_grouping

        return GroupedGraph(base, split_grouping(vectors, epsilon))

    fast = _run_selector(
        selector_name, build(), truth, seed, band=band, incremental=True
    )
    slow = _run_selector(
        selector_name, build(), truth, seed, band=band, incremental=False
    )
    label = f"selection-incremental[{selector_name}] seed={seed} epsilon={epsilon}"
    if fast.state is not None and slow.state is not None:
        if fast.state.asked_order != slow.state.asked_order:
            length = min(len(fast.state.asked_order), len(slow.state.asked_order))
            step = next(
                (
                    i
                    for i in range(length)
                    if fast.state.asked_order[i] != slow.state.asked_order[i]
                ),
                length,
            )
            raise VerificationError(
                f"{label}: asked vertices diverge at step {step}: incremental "
                f"{fast.state.asked_order[step : step + 3]} vs scratch "
                f"{slow.state.asked_order[step : step + 3]}"
            )
        if not np.array_equal(fast.state.colors, slow.state.colors):
            vertex = int(np.flatnonzero(fast.state.colors != slow.state.colors)[0])
            raise VerificationError(
                f"{label}: final colors diverge at vertex {vertex}"
            )
    if fast.labels != slow.labels:
        diff = [
            pair
            for pair in set(fast.labels) | set(slow.labels)
            if fast.labels.get(pair) != slow.labels.get(pair)
        ][:5]
        raise VerificationError(
            f"{label}: labels diverge between incremental and scratch "
            f"(e.g. {diff})"
        )
    if (fast.questions, fast.iterations) != (slow.questions, slow.iterations):
        raise VerificationError(
            f"{label}: question/iteration counts diverge: incremental "
            f"({fast.questions}, {fast.iterations}) vs scratch "
            f"({slow.questions}, {slow.iterations})"
        )


def check_selector_monotone_oracle(
    selector_name: str,
    pairs: Sequence[Pair],
    vectors: np.ndarray,
    seed: int,
) -> None:
    """Perfect crowd + monotone truth ⇒ the run must recover truth exactly.

    Runs on the ungrouped graph (grouped graphs answer one member per group,
    so exactness is only guaranteed per-vertex).  Catches inverted
    propagation, broken layering, and billing-free mutants that still
    mis-label.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    truth = _pair_truth_from_vertices(pairs, monotone_truth(vectors))
    graph = PairGraph(pairs, vectors)
    result = _run_selector(selector_name, graph, truth, seed)
    for pair, expected in truth.items():
        actual = result.labels.get(pair)
        if actual != expected:
            raise VerificationError(
                f"selector[{selector_name}] seed={seed}: perfect crowd on "
                f"monotone truth mislabeled pair {pair}: got {actual}, "
                f"expected {expected}"
            )


# --------------------------------------------------------------------------- #
# Sharded-resolution differential
# --------------------------------------------------------------------------- #


def check_shard_equivalence(
    table: Table,
    seed: int = 0,
    shard_counts: Sequence[int] = (2, 4),
    worker_band: str = "90",
) -> None:
    """The exact sharded resolver must be byte-identical to the serial one.

    Runs :class:`~repro.core.resolver.PowerResolver` once, then
    :class:`~repro.shard.ShardedResolver` in its exact lockstep mode for
    every shard count in *shard_counts* (inline, ``workers=0`` — so the
    differential attacks the task/merge decomposition itself, not
    multiprocessing luck), and demands identical labels, matches, question
    and iteration counts, billing, and clusters.

    This is the check that catches merge mutants: a merge that drops a
    slice's vote contribution, mis-tiles a chunk, or double-counts a shard
    changes at least one of these observables on any non-trivial table.
    """
    from ..core.config import PowerConfig
    from ..core.resolver import PowerResolver
    from ..shard.resolver import ShardedResolver

    serial = PowerResolver(PowerConfig(seed=seed)).resolve(
        table, worker_band=worker_band
    )
    for shards in shard_counts:
        sharded = ShardedResolver(
            PowerConfig(seed=seed, shards=int(shards)), workers=0
        ).resolve(table, worker_band=worker_band)
        label = f"shards={shards} on {table.name!r}"
        if sharded.candidate_pairs != serial.candidate_pairs:
            extra = set(sharded.candidate_pairs) - set(serial.candidate_pairs)
            missing = set(serial.candidate_pairs) - set(sharded.candidate_pairs)
            raise VerificationError(
                f"shard-equivalence[{label}]: candidate pairs diverge: "
                f"{len(extra)} extra, {len(missing)} missing "
                f"(range-join tiling must reproduce the serial join exactly)"
            )
        for field, sharded_value, serial_value in (
            ("questions", sharded.questions, serial.questions),
            ("iterations", sharded.iterations, serial.iterations),
            ("cost_cents", sharded.cost_cents, serial.cost_cents),
        ):
            if sharded_value != serial_value:
                raise VerificationError(
                    f"shard-equivalence[{label}]: {field} diverges: "
                    f"sharded {sharded_value} vs serial {serial_value}"
                )
        if sharded.selection.labels != serial.selection.labels:
            diff = [
                pair
                for pair in set(sharded.selection.labels)
                | set(serial.selection.labels)
                if sharded.selection.labels.get(pair)
                != serial.selection.labels.get(pair)
            ]
            raise VerificationError(
                f"shard-equivalence[{label}]: {len(diff)} pair labels "
                f"diverge (e.g. {sorted(diff)[:5]})"
            )
        if sharded.matches != serial.matches:
            raise VerificationError(
                f"shard-equivalence[{label}]: match sets diverge: "
                f"{len(sharded.matches - serial.matches)} extra, "
                f"{len(serial.matches - sharded.matches)} missing"
            )
        if sharded.clusters != serial.clusters:
            raise VerificationError(
                f"shard-equivalence[{label}]: clusters diverge "
                f"({len(sharded.clusters)} vs {len(serial.clusters)})"
            )
        sharded_state = sharded.selection.state
        serial_state = serial.selection.state
        if sharded_state is not None and serial_state is not None:
            if sharded_state.asked_order != serial_state.asked_order:
                raise VerificationError(
                    f"shard-equivalence[{label}]: question transcript order "
                    "diverges"
                )
            if not np.array_equal(sharded_state.colors, serial_state.colors):
                vertex = int(
                    np.flatnonzero(sharded_state.colors != serial_state.colors)[0]
                )
                raise VerificationError(
                    f"shard-equivalence[{label}]: final colors diverge at "
                    f"vertex {vertex}"
                )


# --------------------------------------------------------------------------- #
# Observability-transparency differential
# --------------------------------------------------------------------------- #


def _compare_runs(label: str, plain: SelectionResult, observed: SelectionResult) -> None:
    """Demand two selector runs are byte-identical in every semantic field."""
    if plain.state is not None and observed.state is not None:
        if plain.state.asked_order != observed.state.asked_order:
            length = min(
                len(plain.state.asked_order), len(observed.state.asked_order)
            )
            step = next(
                (
                    i
                    for i in range(length)
                    if plain.state.asked_order[i] != observed.state.asked_order[i]
                ),
                length,
            )
            raise VerificationError(
                f"{label}: question transcript diverges at step {step}: "
                f"plain {plain.state.asked_order[step : step + 3]} vs observed "
                f"{observed.state.asked_order[step : step + 3]}"
            )
        if not np.array_equal(plain.state.colors, observed.state.colors):
            vertex = int(
                np.flatnonzero(plain.state.colors != observed.state.colors)[0]
            )
            raise VerificationError(f"{label}: final colors diverge at vertex {vertex}")
    if plain.labels != observed.labels:
        diff = [
            pair
            for pair in set(plain.labels) | set(observed.labels)
            if plain.labels.get(pair) != observed.labels.get(pair)
        ][:5]
        raise VerificationError(f"{label}: labels diverge (e.g. {diff})")
    for field in ("questions", "iterations", "cost_cents"):
        if getattr(plain, field) != getattr(observed, field):
            raise VerificationError(
                f"{label}: {field} diverges: plain {getattr(plain, field)} vs "
                f"observed {getattr(observed, field)}"
            )


def check_observability_transparent(
    selector_name: str,
    pairs: Sequence[Pair],
    vectors: np.ndarray,
    seed: int,
    epsilon: float | None = None,
    band: str | None = None,
) -> None:
    """Instrumentation must be invisible: obs on and off, identical runs.

    The same selector (same seed, fresh graph and crowd per side) runs once
    with observability disabled and once under a fully enabled
    :class:`~repro.obs.Observability` (tracing + metrics).  The question
    transcript, final coloring, labels, question/iteration counts, and the
    bill must be byte-identical — the observability hooks' contract is to
    *read* the pipeline, never steer it.  The run with instrumentation on
    must also actually produce spans and metrics, so a silently-disabled
    tracer cannot make the check vacuous.

    The ``obs-perturbs-selection`` mutation mutant attacks exactly the
    :func:`~repro.obs.instrument.observe_round` seam this check certifies;
    no other battery step runs with observability enabled, so only this
    check can catch it — proving it has teeth.
    """
    from ..obs import Observability, activated
    from ..obs.trace import structure

    vectors = np.asarray(vectors, dtype=np.float64)
    truth = _pair_truth_from_vertices(pairs, monotone_truth(vectors))

    def build() -> OrderedGraph:
        base = PairGraph(pairs, vectors)
        if epsilon is None:
            return base
        from ..graph.grouping import split_grouping

        return GroupedGraph(base, split_grouping(vectors, epsilon))

    plain = _run_selector(selector_name, build(), truth, seed, band=band)
    obs = Observability(tracing=True, metrics=True)
    with activated(obs):
        observed = _run_selector(selector_name, build(), truth, seed, band=band)
    label = (
        f"observability-transparent[{selector_name}] seed={seed} "
        f"epsilon={epsilon}"
    )
    _compare_runs(label, plain, observed)
    spans = obs.tracer.export()
    names = [name for _, name in structure(spans)]
    if "selection.run" not in names:
        raise VerificationError(
            f"{label}: the instrumented run produced no selection.run span "
            f"(got {sorted(set(names))}) — the transparency check would be "
            "vacuous"
        )
    if not obs.registry.family("repro_selection_rounds_total"):
        raise VerificationError(
            f"{label}: the instrumented run recorded no selection metrics — "
            "the transparency check would be vacuous"
        )


def check_observability_transparent_table(
    table: Table, seed: int = 0, worker_band: str = "90"
) -> None:
    """End-to-end transparency: a full resolve with obs on equals obs off.

    Same contract as :func:`check_observability_transparent`, but through
    :meth:`~repro.core.resolver.PowerResolver.resolve` on a real table —
    covering the join, vectorize, construct, and cluster stage hooks as
    well as the selection loop.
    """
    from ..core.config import PowerConfig
    from ..core.resolver import PowerResolver
    from ..obs import Observability, activated

    plain = PowerResolver(PowerConfig(seed=seed)).resolve(
        table, worker_band=worker_band
    )
    obs = Observability(tracing=True, metrics=True)
    with activated(obs):
        observed = PowerResolver(PowerConfig(seed=seed)).resolve(
            table, worker_band=worker_band
        )
    label = f"observability-transparent[resolve] table={table.name!r} seed={seed}"
    _compare_runs(label, plain.selection, observed.selection)
    if plain.matches != observed.matches:
        raise VerificationError(
            f"{label}: match sets diverge: "
            f"{len(observed.matches - plain.matches)} extra, "
            f"{len(plain.matches - observed.matches)} missing"
        )
    if plain.clusters != observed.clusters:
        raise VerificationError(
            f"{label}: clusters diverge "
            f"({len(observed.clusters)} vs {len(plain.clusters)})"
        )
    if not obs.tracer.export():
        raise VerificationError(
            f"{label}: the instrumented resolve produced no trace — the "
            "transparency check would be vacuous"
        )


# --------------------------------------------------------------------------- #
# Plan-transparency differential
# --------------------------------------------------------------------------- #


def check_plan_transparency(
    table: Table, seed: int = 0, worker_band: str = "90"
) -> None:
    """Any plan — even an adversarially bad one — must be results-invisible.

    The cost planner's contract is that it only rewrites pure-performance
    knobs: a plan may make a run slower or faster, never different.  This
    check pins that contract end to end:

    1. **Production wiring.** ``PowerConfig(plan="auto")`` resolves the
       table through the full plan → apply → clone path and must be
       bit-identical to the static-defaults run in transcript, coloring,
       labels, question/iteration counts, billing, matches, and clusters.
       Non-vacuity: the planned run must actually carry its plan in
       ``selection.extras`` (a silently skipped planner would make the
       check meaningless).
    2. **Adversarial plans.** Hand-built plans that deliberately pick the
       *worst* settings (the sparse join on a tiny table, the scalar
       similarity path, scratch selection with the reachability index
       off, pointless shard counts) go through the same
       :func:`repro.plan.planner.apply_plan` seam and must still be
       bit-identical.  Speed is allowed to suffer; results are not.

    ``apply_plan`` is looked up on the module at call time on purpose:
    the ``plan-changes-results`` mutation mutant patches exactly that
    seam (a planner that flips a semantic knob such as ``epsilon``), and
    no other battery step runs a planned resolve — only this check can
    catch it.
    """
    from ..core.config import PowerConfig
    from ..core.resolver import PowerResolver
    from ..plan import planner as plan_planner

    baseline = PowerResolver(PowerConfig(seed=seed)).resolve(
        table, worker_band=worker_band
    )

    def compare(label: str, result) -> None:
        _compare_runs(label, baseline.selection, result.selection)
        if baseline.matches != result.matches:
            raise VerificationError(
                f"{label}: match sets diverge: "
                f"{len(result.matches - baseline.matches)} extra, "
                f"{len(baseline.matches - result.matches)} missing"
            )
        if baseline.clusters != result.clusters:
            raise VerificationError(
                f"{label}: clusters diverge "
                f"({len(result.clusters)} vs {len(baseline.clusters)})"
            )

    # Tier 1: the production plan="auto" path.
    auto = PowerResolver(PowerConfig(seed=seed, plan="auto")).resolve(
        table, worker_band=worker_band
    )
    label = f"plan-transparency[auto] table={table.name!r} seed={seed}"
    compare(label, auto)
    if "plan" not in auto.selection.extras:
        raise VerificationError(
            f"{label}: the planned run carries no plan in its extras — "
            "the planner never ran and the transparency check would be "
            "vacuous"
        )

    # Tier 2: adversarial plans through the apply_plan seam.
    stats = plan_planner.TableStats.from_table(
        table, threshold=PowerConfig().pruning_threshold, seed=seed
    )
    adversarial_knob_sets = (
        {"join_method": "sparse", "use_batch_similarity": False},
        {
            "join_method": "naive",
            "use_incremental_selection": False,
            "reachability_index": "off",
        },
        {
            "join_method": "prefix",
            "use_batch_similarity": True,
            "use_incremental_selection": True,
            "reachability_index": "auto",
            "shards": 3,
        },
    )
    for knobs in adversarial_knob_sets:
        plan = plan_planner.Plan(
            stats=stats,
            calibrated=False,
            decisions=tuple(
                plan_planner.PlanDecision(
                    knob=knob,
                    chosen=value,
                    prediction=None,
                    reason="adversarial transparency probe",
                )
                for knob, value in knobs.items()
            ),
        )
        config = plan_planner.apply_plan(PowerConfig(seed=seed), plan)
        for knob, value in knobs.items():
            if getattr(config, knob) != value:
                raise VerificationError(
                    f"plan-transparency: apply_plan dropped {knob}={value!r} "
                    "— the adversarial probe would be vacuous"
                )
        result = PowerResolver(config).resolve(table, worker_band=worker_band)
        compare(
            f"plan-transparency[{'/'.join(sorted(knobs))}] "
            f"table={table.name!r} seed={seed}",
            result,
        )


# --------------------------------------------------------------------------- #
# Streaming-resolution differential
# --------------------------------------------------------------------------- #


def _stream_chunks(table: Table, batches: int):
    """Split *table*'s records into *batches* contiguous, non-empty chunks."""
    records = list(table)
    size = max(1, -(-len(records) // batches))
    return [records[start : start + size] for start in range(0, len(records), size)]


def check_stream_equivalence(
    table: Table,
    seed: int = 0,
    batch_counts: Sequence[int] = (3,),
    worker_band: str = "90",
) -> None:
    """Streamed resolution must agree with one-shot, and survive a kill.

    Three tiers, each a theorem the streaming layer is built on:

    1. **Single-batch bit-identity.** A one-batch stream is the one-shot
       pipeline with extra bookkeeping, so *everything* must match: the
       candidate-pair universe, every pair label, the asked-pair set, the
       question/iteration counts, the pooled bill, and the clusters.
    2. **Multi-batch semantic equality.** Under a perfect crowd on monotone
       truth (ungrouped graphs — the regime where inference provably
       recovers truth exactly), a stream of batches must decide exactly
       the one-shot candidate-pair universe and produce identical labels,
       matches, and clusters.  This is the tier that catches a stale token
       index: a batch whose records never enter the index silently loses
       its candidate pairs, shrinking the decided universe.
    3. **Kill-resume bit-identity.** Checkpoint after every batch, kill
       the process after the first checkpoint (simulated by a torn
       manifest tail — the worst crash the journal contract allows), then
       restore and finish.  The resumed run must match the uninterrupted
       one bit-for-bit: labels, crowd transcripts, totals, and the final
       checkpoint's ``state_sha``, with no previously-paid pair re-asked.
    """
    import tempfile
    from pathlib import Path

    from ..core.config import PowerConfig
    from ..core.resolver import PowerResolver
    from ..data.ground_truth import pair_truth
    from ..stream import MANIFEST_NAME, StreamingResolver

    config = PowerConfig(seed=seed)

    # ---- Tier 1: one batch vs one shot, bit for bit ---------------------- #
    resolver = PowerResolver(config)
    pairs = resolver.candidate_pairs(table)
    truth = pair_truth(table, pairs)
    one_shot_crowd = SimulatedCrowd(
        truth,
        pool=WorkerPool(accuracy_range=worker_band, seed=seed),
        assignments=config.assignments,
    )
    one_shot_session = one_shot_crowd.session()
    one_shot = resolver.resolve(table, session=one_shot_session)

    stream = StreamingResolver(table.attributes, config=config, name=table.name)
    stream.add_batch(
        [record.values for record in table],
        entity_ids=[record.entity_id for record in table],
        worker_band=worker_band,
    )
    label = f"stream-equivalence[{table.name!r}] single-batch"
    if stream.labels != one_shot.selection.labels:
        diff = [
            pair
            for pair in set(stream.labels) | set(one_shot.selection.labels)
            if stream.labels.get(pair) != one_shot.selection.labels.get(pair)
        ]
        raise VerificationError(
            f"{label}: {len(diff)} pair labels diverge (e.g. {sorted(diff)[:5]})"
        )
    if stream.asked_pairs != one_shot_session.asked_pairs:
        extra = stream.asked_pairs - one_shot_session.asked_pairs
        missing = one_shot_session.asked_pairs - stream.asked_pairs
        raise VerificationError(
            f"{label}: asked-pair sets diverge: {len(extra)} extra, "
            f"{len(missing)} missing"
        )
    for field, streamed, serial in (
        ("questions", stream.total_questions, one_shot.questions),
        ("iterations", stream.total_iterations, one_shot.iterations),
        ("cost_cents", stream.cost_cents, one_shot.cost_cents),
    ):
        if streamed != serial:
            raise VerificationError(
                f"{label}: {field} diverges: streamed {streamed} vs "
                f"one-shot {serial}"
            )
    if stream.clusters() != one_shot.clusters:
        raise VerificationError(
            f"{label}: clusters diverge ({len(stream.clusters())} vs "
            f"{len(one_shot.clusters)})"
        )

    # ---- Tier 2: batched vs one shot under the exactness oracle ---------- #
    exact_config = PowerConfig(seed=seed, epsilon=None)
    exact_resolver = PowerResolver(exact_config)
    vectors = exact_resolver.similarity_vectors(table, pairs)
    oracle_truth = _pair_truth_from_vertices(pairs, monotone_truth(vectors))
    for batches in batch_counts:
        crowd = PerfectCrowd(oracle_truth, assignments=exact_config.assignments)
        serial = exact_resolver.resolve(table, session=crowd.session())
        streamed = StreamingResolver(
            table.attributes,
            config=exact_config,
            name=table.name,
            crowd=PerfectCrowd(oracle_truth, assignments=exact_config.assignments),
        )
        for chunk in _stream_chunks(table, batches):
            streamed.add_batch(
                [record.values for record in chunk],
                entity_ids=[record.entity_id for record in chunk],
            )
        label = f"stream-equivalence[{table.name!r}] batches={batches}"
        if set(streamed.labels) != set(serial.candidate_pairs):
            missing = set(serial.candidate_pairs) - set(streamed.labels)
            extra = set(streamed.labels) - set(serial.candidate_pairs)
            raise VerificationError(
                f"{label}: decided-pair universe diverges from the one-shot "
                f"candidate pairs: {len(missing)} missing, {len(extra)} extra "
                "(the incremental candidate sweep must cover every new×old "
                "and new×new pair the one-shot join finds)"
            )
        if streamed.labels != serial.selection.labels:
            diff = [
                pair
                for pair in streamed.labels
                if streamed.labels[pair] != serial.selection.labels.get(pair)
            ]
            raise VerificationError(
                f"{label}: labels diverge under a perfect crowd on monotone "
                f"truth (e.g. {sorted(diff)[:5]})"
            )
        if streamed.matches != serial.matches:
            raise VerificationError(
                f"{label}: match sets diverge: "
                f"{len(streamed.matches - serial.matches)} extra, "
                f"{len(serial.matches - streamed.matches)} missing"
            )
        if streamed.clusters() != serial.clusters:
            raise VerificationError(
                f"{label}: clusters diverge ({len(streamed.clusters())} vs "
                f"{len(serial.clusters)})"
            )

    # ---- Tier 3: kill after the first checkpoint, resume, finish --------- #
    batches = max(batch_counts) if batch_counts else 3
    chunks = _stream_chunks(table, batches)
    if len(chunks) >= 2:
        with tempfile.TemporaryDirectory(prefix="repro-stream-check-") as root:
            straight_dir = Path(root) / "uninterrupted"
            resumed_dir = Path(root) / "resumed"

            straight = StreamingResolver(
                table.attributes,
                config=config,
                name=table.name,
                checkpoint_dir=straight_dir,
            )
            for chunk in chunks:
                straight.add_batch(
                    [record.values for record in chunk],
                    entity_ids=[record.entity_id for record in chunk],
                    worker_band=worker_band,
                )
                straight_record = straight.checkpoint()

            victim = StreamingResolver(
                table.attributes,
                config=config,
                name=table.name,
                checkpoint_dir=resumed_dir,
            )
            victim.add_batch(
                [record.values for record in chunks[0]],
                entity_ids=[record.entity_id for record in chunks[0]],
                worker_band=worker_band,
            )
            victim.checkpoint()
            # The kill: the process dies mid-append, leaving a torn trailing
            # line on the manifest — the exact damage the journal repair
            # discipline truncates away on restore.
            with open(resumed_dir / MANIFEST_NAME, "ab") as manifest:
                manifest.write(b'{"type": "checkpoint", "ba')
            del victim

            resumed = StreamingResolver.restore(resumed_dir)
            paid_before = resumed.asked_pairs
            for chunk in chunks[1:]:
                resumed.add_batch(
                    [record.values for record in chunk],
                    entity_ids=[record.entity_id for record in chunk],
                    worker_band=worker_band,
                )
                resumed_record = resumed.checkpoint()

            label = f"stream-equivalence[{table.name!r}] kill-resume"
            re_paid = {
                pair
                for report in resumed.reports[1:]
                for pair in report["asked_pairs"]
            } & paid_before
            if re_paid:
                raise VerificationError(
                    f"{label}: {len(re_paid)} already-paid pairs were asked "
                    f"again after restore (e.g. {sorted(re_paid)[:5]})"
                )
            if resumed.labels != straight.labels:
                diff = [
                    pair
                    for pair in set(resumed.labels) | set(straight.labels)
                    if resumed.labels.get(pair) != straight.labels.get(pair)
                ]
                raise VerificationError(
                    f"{label}: labels diverge from the uninterrupted run "
                    f"(e.g. {sorted(diff)[:5]})"
                )
            if resumed.transcripts != straight.transcripts:
                raise VerificationError(
                    f"{label}: crowd transcripts diverge from the "
                    "uninterrupted run"
                )
            for field, resumed_value, straight_value in (
                ("total_questions", resumed.total_questions, straight.total_questions),
                ("total_iterations", resumed.total_iterations, straight.total_iterations),
                ("cost_cents", resumed.cost_cents, straight.cost_cents),
            ):
                if resumed_value != straight_value:
                    raise VerificationError(
                        f"{label}: {field} diverges: resumed {resumed_value} "
                        f"vs uninterrupted {straight_value}"
                    )
            if resumed_record["state_sha"] != straight_record["state_sha"]:
                raise VerificationError(
                    f"{label}: final checkpoint state_sha diverges: resumed "
                    f"{resumed_record['state_sha'][:12]} vs uninterrupted "
                    f"{straight_record['state_sha'][:12]}"
                )


# --------------------------------------------------------------------------- #
# Serve equivalence
# --------------------------------------------------------------------------- #


def check_serve_equivalence(
    table: Table,
    seed: int = 0,
    tenants: int = 3,
    batches: int = 2,
    worker_band: str = "90",
) -> None:
    """Resolution through the server must equal driving the stream directly.

    Two tiers, matching the two ways the serving layer could corrupt a
    session:

    1. **Concurrent interleaved tenants.** *tenants* sessions (distinct
       seeds, distinct batch counts) ingest simultaneously over real
       sockets against one server.  Worker answers depend only on
       ``(seed, worker_id, pair)`` and each session is a single-writer
       actor, so every tenant's final checkpoint ``state_sha`` must be
       bit-identical to a direct, serial :class:`StreamingResolver` run —
       no matter how the event loop interleaved them.
    2. **Evict/restore alternation.** Two tenants alternate batches
       against a registry capped at one resident session, forcing a full
       checkpoint → evict → restore cycle on *every* switch.  The final
       ``state_sha`` per tenant must still match the direct run — the
       tier that catches a registry handing back the wrong resolver
       after eviction (the ``serve-cross-session-leak`` mutant), since
       the tenants' states differ by construction.
    """
    import asyncio
    import tempfile
    from pathlib import Path

    from ..core.config import PowerConfig
    from ..serve import AsyncServeClient, ResolutionServer, ServeApp
    from ..stream import StreamingResolver

    def tenant_plan(count: int, base_batches: int):
        # Distinct seeds and batch counts: identical tenants could hide a
        # cross-wired registry (leaked state would be the right state).
        return [
            (f"tenant{index}", seed + index, base_batches + (index % 2))
            for index in range(count)
        ]

    def direct_sha(root: Path, name: str, tenant_seed: int, chunks) -> str:
        resolver = StreamingResolver(
            table.attributes,
            config=PowerConfig(seed=tenant_seed),
            name=name,
            checkpoint_dir=root / f"direct-{name}",
            worker_band=worker_band,
        )
        for chunk in chunks:
            resolver.add_batch(
                [record.values for record in chunk],
                entity_ids=[record.entity_id for record in chunk],
            )
        return resolver.checkpoint()["state_sha"]

    def encoded_config(tenant_seed: int) -> dict:
        from ..stream.service import _encode_config

        return _encode_config(PowerConfig(seed=tenant_seed))

    # ---- Tier 1: concurrent tenants over real sockets -------------------- #
    with tempfile.TemporaryDirectory(prefix="repro-serve-check-") as root:
        root = Path(root)
        plan = tenant_plan(tenants, batches)

        async def tier_concurrent() -> dict[str, str]:
            app = ServeApp(root / "served", max_sessions=tenants + 1)
            shas: dict[str, str] = {}
            async with ResolutionServer(app) as server:

                async def drive(name: str, tenant_seed: int, count: int):
                    async with AsyncServeClient(port=server.port) as client:
                        await client.create_session(
                            name,
                            list(table.attributes),
                            config=encoded_config(tenant_seed),
                            worker_band=worker_band,
                        )
                        for chunk in _stream_chunks(table, count):
                            await client.ingest(
                                name,
                                [list(record.values) for record in chunk],
                                [record.entity_id for record in chunk],
                            )
                        record = await client.checkpoint(name)
                        shas[name] = record["state_sha"]

                await asyncio.gather(
                    *(drive(name, s, count) for name, s, count in plan)
                )
            return shas

        served = asyncio.run(tier_concurrent())
        for name, tenant_seed, count in plan:
            expected = direct_sha(
                root, name, tenant_seed, _stream_chunks(table, count)
            )
            label = f"serve-equivalence[{table.name!r}] concurrent {name}"
            if served[name] != expected:
                raise VerificationError(
                    f"{label}: state_sha through the server "
                    f"({served[name][:12]}) diverges from the direct "
                    f"StreamingResolver run ({expected[:12]})"
                )

    # ---- Tier 2: forced evict/restore on every tenant switch ------------- #
    with tempfile.TemporaryDirectory(prefix="repro-serve-check-") as root:
        root = Path(root)
        alt_batches = max(2, batches)
        plan = [("alt0", seed, alt_batches), ("alt1", seed + 1, alt_batches)]
        chunk_lists = {
            name: _stream_chunks(table, count) for name, _, count in plan
        }

        async def tier_alternating() -> dict[str, str]:
            app = ServeApp(root / "served", max_sessions=1)

            async def call(op: str, **fields):
                response = await app.dispatch({"op": op, "id": 0, **fields})
                if not response.get("ok"):
                    raise VerificationError(
                        f"serve-equivalence[{table.name!r}] alternation: "
                        f"{op} failed: {response.get('message')}"
                    )
                return response

            for name, tenant_seed, _count in plan:
                await call(
                    "create_session",
                    session=name,
                    attributes=list(table.attributes),
                    config=encoded_config(tenant_seed),
                    worker_band=worker_band,
                )
            rounds = max(len(chunks) for chunks in chunk_lists.values())
            for index in range(rounds):
                for name, _seed, _count in plan:
                    if index >= len(chunk_lists[name]):
                        continue
                    chunk = chunk_lists[name][index]
                    await call(
                        "ingest",
                        session=name,
                        rows=[list(record.values) for record in chunk],
                        entity_ids=[record.entity_id for record in chunk],
                    )
            shas = {}
            for name, _seed, _count in plan:
                shas[name] = (await call("close", session=name))["state_sha"]
            if app.registry.evictions < 1 or app.registry.restores < 1:
                raise VerificationError(
                    f"serve-equivalence[{table.name!r}] alternation: the "
                    "schedule was supposed to force evict/restore cycles "
                    f"(evictions={app.registry.evictions}, "
                    f"restores={app.registry.restores})"
                )
            app.registry.shutdown()
            return shas

        served = asyncio.run(tier_alternating())
        for name, tenant_seed, _count in plan:
            expected = direct_sha(root, name, tenant_seed, chunk_lists[name])
            label = f"serve-equivalence[{table.name!r}] alternation {name}"
            if served[name] != expected:
                raise VerificationError(
                    f"{label}: state_sha after forced evict/restore cycles "
                    f"({served[name][:12]}) diverges from the direct run "
                    f"({expected[:12]}) — the registry is not restoring the "
                    "session it evicted"
                )
