"""Invariant checkers: structural laws the pipeline must never break.

Each checker is a plain function raising
:class:`~repro.exceptions.VerificationError` with a counterexample, so they
compose into test assertions, the ``repro verify`` battery, and the
always-on :class:`VerifyingSession` sanitizer alike.

Catalog:

* partial order — antisymmetry, irreflexivity, transitivity
  (:func:`check_partial_order`), DAG acyclicity (:func:`check_acyclicity`);
* topo layers — production layering equals naive Kahn peeling, every edge
  descends strictly (:func:`check_topo_layers`);
* path cover — disjoint, covering, chain-valid, and no larger than the
  greedy cover (:func:`check_path_cover`);
* grouped graph — partition validity and bound arithmetic
  (:func:`check_grouped_partition`);
* clustering — union-find components equal naive BFS components
  (:func:`check_cluster_union_find`);
* session — billing/answer-cache coherence (:func:`check_session_coherence`),
  also enforced after *every* batch by :class:`VerifyingSession`.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Iterable

import numpy as np

from ..crowd.aggregate import VoteOutcome
from ..crowd.platform import CrowdSession
from ..data.ground_truth import Pair, canonical_pair
from ..exceptions import VerificationError
from ..graph.coloring import ColoringState
from ..graph.dag import OrderedGraph
from ..graph.grouped_graph import GroupedGraph


# --------------------------------------------------------------------------- #
# Partial-order laws
# --------------------------------------------------------------------------- #


def _adjacency_sets(graph: OrderedGraph) -> list[set[int]]:
    return [set(int(v) for v in children) for children in graph.adjacency()]


def check_partial_order(graph: OrderedGraph) -> None:
    """Irreflexivity, antisymmetry, and transitivity of the dominance relation.

    Also cross-checks that ``adjacency()``, ``descendant_mask`` and
    ``ancestor_mask`` describe the *same* relation — the three production
    access paths must never drift apart.
    """
    children = _adjacency_sets(graph)
    n = len(graph)
    for u in range(n):
        if u in children[u]:
            raise VerificationError(f"reflexive dominance edge ({u}, {u})")
        for v in children[u]:
            if u in children[v]:
                raise VerificationError(
                    f"antisymmetry violated: both ({u}, {v}) and ({v}, {u}) present"
                )
    for u in range(n):
        for v in children[u]:
            missing = children[v] - children[u]
            if missing:
                raise VerificationError(
                    f"transitivity violated: ({u}, {v}) and ({v}, {sorted(missing)[0]}) "
                    f"present but not ({u}, {sorted(missing)[0]})"
                )
    for u in range(n):
        from_mask = set(np.flatnonzero(graph.descendant_mask(u)).tolist())
        if from_mask != children[u]:
            raise VerificationError(
                f"descendant_mask({u}) disagrees with adjacency(): "
                f"mask {sorted(from_mask)[:5]}... vs list {sorted(children[u])[:5]}..."
            )
        up_mask = set(np.flatnonzero(graph.ancestor_mask(u)).tolist())
        up_list = {v for v in range(n) if u in children[v]}
        if up_mask != up_list:
            raise VerificationError(
                f"ancestor_mask({u}) disagrees with transposed adjacency"
            )


def check_acyclicity(graph: OrderedGraph) -> None:
    """The dominance relation must be a DAG (iterative three-color DFS)."""
    children = _adjacency_sets(graph)
    state = [0] * len(graph)  # 0 unseen, 1 on stack, 2 done
    for root in range(len(graph)):
        if state[root]:
            continue
        stack: list[tuple[int, Iterable[int]]] = [(root, iter(children[root]))]
        state[root] = 1
        while stack:
            vertex, iterator = stack[-1]
            advanced = False
            for child in iterator:
                if state[child] == 1:
                    raise VerificationError(
                        f"dominance graph has a cycle through ({vertex}, {child})"
                    )
                if state[child] == 0:
                    state[child] = 1
                    stack.append((child, iter(children[child])))
                    advanced = True
                    break
            if not advanced:
                state[vertex] = 2
                stack.pop()


# --------------------------------------------------------------------------- #
# Topological layering
# --------------------------------------------------------------------------- #


def naive_kahn_layers(graph: OrderedGraph, active: np.ndarray | None = None) -> list[list[int]]:
    """Kahn level sets by literal peeling (the obviously-correct version)."""
    n = len(graph)
    if active is None:
        active = np.ones(n, dtype=bool)
    children = _adjacency_sets(graph)
    remaining = {v for v in range(n) if active[v]}
    indegree = {v: 0 for v in remaining}
    for u in remaining:
        for v in children[u]:
            if v in remaining:
                indegree[v] += 1
    layers: list[list[int]] = []
    while remaining:
        level = sorted(v for v in remaining if indegree[v] == 0)
        if not level:
            raise VerificationError("Kahn peeling stalled: the sub-DAG has a cycle")
        layers.append(level)
        for u in level:
            remaining.discard(u)
            for v in children[u]:
                if v in remaining:
                    indegree[v] -= 1
    return layers


def check_topo_layers(graph: OrderedGraph, active: np.ndarray | None = None) -> None:
    """Production layering must equal naive Kahn peeling, level for level,
    and every edge inside the active set must descend strictly."""
    from ..graph.topo import topological_layers

    produced = [sorted(int(v) for v in layer) for layer in topological_layers(graph, active)]
    expected = naive_kahn_layers(graph, active)
    if produced != expected:
        level = next(
            (
                index
                for index in range(max(len(produced), len(expected)))
                if index >= len(produced)
                or index >= len(expected)
                or produced[index] != expected[index]
            ),
            0,
        )
        raise VerificationError(
            f"topological_layers disagrees with Kahn peeling at level {level}: "
            f"production {produced[level] if level < len(produced) else '<missing>'} "
            f"vs naive {expected[level] if level < len(expected) else '<missing>'}"
        )
    layer_of = {
        vertex: index for index, layer in enumerate(produced) for vertex in layer
    }
    children = _adjacency_sets(graph)
    for u, level in layer_of.items():
        for v in children[u]:
            if v in layer_of and layer_of[v] <= level:
                raise VerificationError(
                    f"edge ({u}, {v}) does not descend: layers "
                    f"{level} -> {layer_of[v]}"
                )


# --------------------------------------------------------------------------- #
# Path covers (the Single/Multi-Path substrate)
# --------------------------------------------------------------------------- #


def check_path_cover(graph: OrderedGraph) -> None:
    """The minimum path cover must be disjoint, covering, chain-valid, and
    no larger than the greedy cover (Dilworth minimality upper bound)."""
    from ..graph.matching import greedy_path_cover, minimum_path_cover

    adjacency = [list(int(v) for v in children) for children in graph.adjacency()]
    paths = minimum_path_cover(adjacency)
    children = [set(row) for row in adjacency]
    seen: set[int] = set()
    for path in paths:
        if not path:
            raise VerificationError("path cover contains an empty path")
        for vertex in path:
            if vertex in seen:
                raise VerificationError(
                    f"path cover is not vertex-disjoint: {vertex} appears twice"
                )
            seen.add(vertex)
        for a, b in zip(path, path[1:]):
            if b not in children[a]:
                raise VerificationError(
                    f"path cover step ({a}, {b}) is not a dominance edge"
                )
    if seen != set(range(len(graph))):
        missing = sorted(set(range(len(graph))) - seen)[:5]
        raise VerificationError(f"path cover misses vertices {missing}")
    greedy = greedy_path_cover(adjacency)
    if len(paths) > len(greedy):
        raise VerificationError(
            f"matching cover uses {len(paths)} paths but greedy found "
            f"{len(greedy)}: the matching is not maximum"
        )


# --------------------------------------------------------------------------- #
# Grouped-graph partition validity
# --------------------------------------------------------------------------- #


def check_grouped_partition(grouped: GroupedGraph) -> None:
    """Groups must partition the base vertices; bounds must be exact
    member-wise min/max; group dominance must follow Eqs. 5-6 from bounds."""
    base_size = len(grouped.base)
    seen: set[int] = set()
    for index, group in enumerate(grouped.grouping):
        if not group:
            raise VerificationError(f"group {index} is empty")
        for member in group:
            if not 0 <= member < base_size:
                raise VerificationError(
                    f"group {index} member {member} is not a base vertex"
                )
            if member in seen:
                raise VerificationError(
                    f"base vertex {member} appears in more than one group"
                )
            seen.add(member)
    if seen != set(range(base_size)):
        missing = sorted(set(range(base_size)) - seen)[:5]
        raise VerificationError(f"grouping misses base vertices {missing}")
    vectors = grouped.base.vectors
    for index, group in enumerate(grouped.grouping):
        member_rows = vectors[group]
        if not np.array_equal(grouped.lower_bounds[index], member_rows.min(axis=0)):
            raise VerificationError(f"group {index} lower bound is not the member min")
        if not np.array_equal(grouped.upper_bounds[index], member_rows.max(axis=0)):
            raise VerificationError(f"group {index} upper bound is not the member max")
    for u in range(len(grouped)):
        mask = grouped.descendant_mask(u)
        for v in range(len(grouped)):
            if u == v:
                continue
            expected = bool(
                (grouped.lower_bounds[u] >= grouped.upper_bounds[v]).all()
                and (grouped.lower_bounds[u] > grouped.upper_bounds[v]).any()
            )
            if bool(mask[v]) != expected:
                raise VerificationError(
                    f"group dominance ({u}, {v}) is {bool(mask[v])} but "
                    f"Eqs. 5-6 on the bounds say {expected}"
                )


# --------------------------------------------------------------------------- #
# Clustering vs union-find agreement
# --------------------------------------------------------------------------- #


def check_cluster_union_find(num_records: int, matches: Iterable[Pair]) -> None:
    """``clusters_from_matches`` must equal naive BFS connected components."""
    from ..core.clustering import clusters_from_matches

    matches = [canonical_pair(*pair) for pair in matches]
    produced = clusters_from_matches(num_records, matches)
    neighbors: dict[int, set[int]] = {v: set() for v in range(num_records)}
    for i, j in matches:
        neighbors[i].add(j)
        neighbors[j].add(i)
    seen: set[int] = set()
    expected: list[list[int]] = []
    for root in range(num_records):
        if root in seen:
            continue
        component = []
        queue = deque([root])
        seen.add(root)
        while queue:
            vertex = queue.popleft()
            component.append(vertex)
            for other in neighbors[vertex]:
                if other not in seen:
                    seen.add(other)
                    queue.append(other)
        expected.append(sorted(component))
    if sorted(map(tuple, produced)) != sorted(map(tuple, expected)):
        raise VerificationError(
            f"union-find clusters disagree with BFS components: "
            f"{len(produced)} vs {len(expected)} clusters"
        )


# --------------------------------------------------------------------------- #
# Coloring-state sanity
# --------------------------------------------------------------------------- #


def check_coloring_state(state: ColoringState) -> None:
    """Pinned flags, asked order, and color values must stay coherent."""
    colors = state.colors
    if colors.min() < 0 or colors.max() > 3:
        raise VerificationError(f"illegal color value in {np.unique(colors)}")
    for vertex in state.asked_order:
        if not state._pinned[vertex]:
            raise VerificationError(f"asked vertex {vertex} is not pinned")
        if colors[vertex] == 0:
            raise VerificationError(f"asked vertex {vertex} is uncolored")


# --------------------------------------------------------------------------- #
# Session coherence + the VerifyingSession sanitizer
# --------------------------------------------------------------------------- #


def check_session_coherence(session: CrowdSession) -> None:
    """The pinned billing semantics of :class:`CrowdSession` must hold.

    * ``iterations == len(batch_sizes)`` and every batch is non-empty;
    * distinct questions never exceed the total questions submitted;
    * ``hits == ceil(questions / pairs_per_hit) * assignments`` (whole-run
      pooled, ceiling once, zero when nothing was asked);
    * ``cost_cents == hits * cents_per_hit``.
    """
    if session.iterations != len(session.batch_sizes):
        raise VerificationError(
            f"iterations ({session.iterations}) != number of batches "
            f"({len(session.batch_sizes)})"
        )
    if any(size < 1 for size in session.batch_sizes):
        raise VerificationError("a recorded batch has size < 1")
    questions = session.questions_asked
    if questions > sum(session.batch_sizes):
        raise VerificationError(
            f"distinct questions ({questions}) exceed submitted questions "
            f"({sum(session.batch_sizes)})"
        )
    if questions == 0:
        expected_hits = 0
    else:
        expected_hits = (
            math.ceil(questions / session.pairs_per_hit) * session.crowd.assignments
        )
    if session.hits != expected_hits:
        raise VerificationError(
            f"billing drifted: hits = {session.hits}, but "
            f"ceil({questions} / {session.pairs_per_hit}) * "
            f"{session.crowd.assignments} = {expected_hits}"
        )
    expected_cost = expected_hits * session.cents_per_hit
    if session.cost_cents != expected_cost:
        raise VerificationError(
            f"cost_cents = {session.cost_cents}, expected {expected_cost}"
        )


def _outcomes_equal(a: VoteOutcome, b: VoteOutcome) -> bool:
    return (
        a.answer == b.answer
        and a.confidence == b.confidence
        and tuple(a.votes) == tuple(b.votes)
    )


class VerifyingSession:
    """Opt-in sanitizer: a crowd session that audits itself at every answer.

    Wraps any :class:`CrowdSession`-compatible object (including the
    engine's ``EngineSession``) and re-validates, after *every* batch:

    * **billing coherence** — the pinned pooled-ceiling formula of
      :func:`check_session_coherence`;
    * **answer-cache coherence** — re-asking a pair must return the exact
      same :class:`VoteOutcome` the session returned the first time, and
      must not grow ``questions_asked``;
    * **monotonic ledgers** — ``questions_asked`` and ``iterations`` never
      decrease, and each batch raises ``iterations`` by exactly one;
    * **answer shape** — every asked pair is answered, confidences live in
      [0, 1].

    Violations raise :class:`~repro.exceptions.VerificationError`
    immediately, at the first corrupted answer, instead of surfacing as a
    mysteriously wrong F1 three stages later.  The wrapper is a structural
    drop-in: attribute access falls through to the inner session, so
    selectors, resolvers, and the engine treat it as the session itself.
    """

    def __init__(self, inner: CrowdSession) -> None:
        self._inner = inner
        self._answers_seen: dict[Pair, VoteOutcome] = {}

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    # -- the audited protocol ------------------------------------------- #

    def ask(self, pair: Pair) -> VoteOutcome:
        return self.ask_batch([pair])[canonical_pair(*pair)]

    def ask_batch(self, pairs: Iterable[Pair]) -> dict[Pair, VoteOutcome]:
        batch = [canonical_pair(*pair) for pair in pairs]
        questions_before = self._inner.questions_asked
        iterations_before = self._inner.iterations
        new_pairs = {
            pair for pair in batch if pair not in self._inner.asked_pairs
        }
        answers = self._inner.ask_batch(batch)
        if batch:
            if self._inner.iterations != iterations_before + 1:
                raise VerificationError(
                    f"a non-empty batch moved iterations from "
                    f"{iterations_before} to {self._inner.iterations}"
                )
        elif answers:
            raise VerificationError("an empty batch produced answers")
        # Engine sessions may settle some new pairs via the machine fallback
        # (unbilled, uncounted), so the distinct-question ledger may grow by
        # *at most* the new pairs — and must never shrink or overshoot.
        ceiling = questions_before + len(new_pairs)
        if not questions_before <= self._inner.questions_asked <= ceiling:
            raise VerificationError(
                f"questions_asked moved {questions_before} -> "
                f"{self._inner.questions_asked}; batch added {len(new_pairs)} "
                f"new distinct pairs so at most {ceiling} was expected"
            )
        for pair in batch:
            outcome = answers.get(pair)
            if outcome is None:
                raise VerificationError(f"asked pair {pair} received no answer")
            if not 0.0 <= outcome.confidence <= 1.0:
                raise VerificationError(
                    f"pair {pair} answered with confidence {outcome.confidence}"
                )
            previous = self._answers_seen.get(pair)
            if previous is None:
                self._answers_seen[pair] = outcome
            elif not _outcomes_equal(previous, outcome):
                raise VerificationError(
                    f"answer-cache incoherence: pair {pair} first answered "
                    f"{previous}, re-answered {outcome}"
                )
        check_session_coherence(self._inner)
        return answers
