"""Correctness verification for the Power/Power+ reproduction.

Three complementary pillars, all raising
:class:`~repro.exceptions.VerificationError` with a counterexample:

* **differential oracles** (:mod:`.oracles`) — brute-force twins of every
  optimized path: dominance construction, batch similarity, similarity
  joins, crowd aggregation, a naive graph pair that any selector must treat
  identically to the production graphs, a coloring replay, and a monotone
  ground truth under which a perfect crowd must recover the truth exactly;
* **invariant checkers** (:mod:`.invariants`) — partial-order laws, DAG
  acyclicity, topological layering vs naive Kahn peeling, path-cover
  validity, grouped-partition arithmetic, union-find vs BFS clustering,
  and crowd-session billing coherence, plus the opt-in
  :class:`VerifyingSession` sanitizer that audits a live session at every
  answer;
* **metamorphic properties** (:mod:`.metamorphic`) — record-permutation
  invariance, duplicate idempotence, and cost monotonicity under budget
  growth.

:mod:`.mutation` proves the suite has teeth by seeding known bugs and
demanding every one is detected; :mod:`.battery` packages everything as the
``repro verify`` command.
"""

from .battery import BatteryConfig, random_instance, run_battery, subsample_table
from .invariants import (
    VerifyingSession,
    check_acyclicity,
    check_cluster_union_find,
    check_coloring_state,
    check_grouped_partition,
    check_partial_order,
    check_path_cover,
    check_session_coherence,
    check_topo_layers,
    naive_kahn_layers,
)
from .metamorphic import (
    check_cost_monotonicity,
    check_duplicate_idempotence,
    check_permutation_invariance,
)
from .mutation import MUTANTS, run_detection_battery, run_mutation_selftest
from .oracles import (
    GreedyReferenceSelector,
    NaiveGroupedGraph,
    NaivePairGraph,
    ReferenceColoring,
    check_batch_similarity,
    check_coloring_replay,
    check_crowd_aggregation,
    check_dominance_construction,
    check_join_methods,
    check_selection_incremental,
    check_selector_differential,
    check_selector_monotone_oracle,
    check_serve_equivalence,
    check_stream_equivalence,
    check_transitive_closure,
    monotone_truth,
    naive_dominance_edges,
    naive_transitive_closure,
)
from .report import CheckResult, VerificationReport, run_check

__all__ = [
    "BatteryConfig",
    "CheckResult",
    "GreedyReferenceSelector",
    "MUTANTS",
    "NaiveGroupedGraph",
    "NaivePairGraph",
    "ReferenceColoring",
    "VerificationReport",
    "VerifyingSession",
    "check_acyclicity",
    "check_batch_similarity",
    "check_cluster_union_find",
    "check_coloring_replay",
    "check_coloring_state",
    "check_cost_monotonicity",
    "check_crowd_aggregation",
    "check_dominance_construction",
    "check_duplicate_idempotence",
    "check_grouped_partition",
    "check_join_methods",
    "check_partial_order",
    "check_path_cover",
    "check_permutation_invariance",
    "check_selection_incremental",
    "check_selector_differential",
    "check_selector_monotone_oracle",
    "check_serve_equivalence",
    "check_session_coherence",
    "check_stream_equivalence",
    "check_topo_layers",
    "check_transitive_closure",
    "monotone_truth",
    "naive_dominance_edges",
    "naive_kahn_layers",
    "naive_transitive_closure",
    "random_instance",
    "run_battery",
    "run_check",
    "run_detection_battery",
    "run_mutation_selftest",
    "subsample_table",
]
