"""Graph export for visualisation (Graphviz DOT).

The paper's Fig. 1 draws the partial-order graph as its Hasse diagram with
transitive edges omitted; :func:`to_dot` produces exactly that picture for
any :class:`~repro.graph.dag.OrderedGraph`, optionally painting the
coloring state (GREEN/RED/BLUE) so a run can be inspected visually with any
Graphviz viewer::

    dot -Tsvg graph.dot -o graph.svg
"""

from __future__ import annotations

from pathlib import Path

from .graph.analysis import transitive_reduction
from .graph.coloring import Color, ColoringState
from .graph.dag import OrderedGraph

_FILL = {
    Color.UNCOLORED: "white",
    Color.GREEN: "palegreen",
    Color.RED: "lightcoral",
    Color.BLUE: "lightblue",
}


def _vertex_label(graph: OrderedGraph, vertex: int) -> str:
    pairs = graph.member_pairs(vertex)
    names = [f"p{i + 1},{j + 1}" for i, j in pairs[:4]]
    if len(pairs) > 4:
        names.append(f"... +{len(pairs) - 4}")
    return "\\n".join(names)


def to_dot(
    graph: OrderedGraph,
    state: ColoringState | None = None,
    name: str = "partial_order",
    reduce_edges: bool = True,
) -> str:
    """Render *graph* as a Graphviz DOT digraph.

    Args:
        graph: the (grouped) partial-order graph.
        state: optional coloring to paint vertices with.
        name: DOT graph name.
        reduce_edges: draw the Hasse diagram (default, like the paper's
            Fig. 1) instead of the full transitive relation.
    """
    lines = [f"digraph {name} {{", "  rankdir=TB;", '  node [shape=box, style=filled];']
    for vertex in range(len(graph)):
        color = state.color_of(vertex) if state is not None else Color.UNCOLORED
        asked = state is not None and vertex in set(state.asked_order)
        attributes = [
            f'label="{_vertex_label(graph, vertex)}"',
            f'fillcolor="{_FILL[color]}"',
        ]
        if asked:
            attributes.append("penwidth=2")
        lines.append(f"  v{vertex} [{', '.join(attributes)}];")
    if reduce_edges:
        edges = transitive_reduction(graph)
    else:
        edges = [
            (u, int(v)) for u in range(len(graph)) for v in graph.adjacency()[u]
        ]
    for u, v in sorted(edges):
        lines.append(f"  v{u} -> v{v};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def save_dot(
    graph: OrderedGraph,
    path: str | Path,
    state: ColoringState | None = None,
    **kwargs,
) -> Path:
    """Write :func:`to_dot` output to *path*; returns the path."""
    path = Path(path)
    path.write_text(to_dot(graph, state=state, **kwargs), encoding="utf-8")
    return path
