"""Exception hierarchy for the power-er library.

All library-raised exceptions derive from :class:`PowerError` so callers can
catch every library failure with a single ``except`` clause while still being
able to distinguish configuration mistakes from data problems.
"""

from __future__ import annotations


class PowerError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(PowerError):
    """An invalid parameter or inconsistent configuration was supplied."""


class DataError(PowerError):
    """A table, record, or pair set violates a structural requirement."""


class GraphError(PowerError):
    """A graph operation was attempted on an invalid or inconsistent graph."""


class CrowdError(PowerError):
    """The simulated crowd was asked something it cannot answer."""


class SelectionError(PowerError):
    """A question-selection algorithm reached an invalid state."""


class EngineError(PowerError):
    """The crowd-orchestration engine reached an invalid state (illegal HIT
    transition, corrupt journal header, misconfigured runtime)."""


class JournalError(EngineError):
    """The answer journal is unusable (unreadable header, version mismatch)."""


class SimulatedCrash(EngineError):
    """Raised by the engine's test-only ``crash_after`` knob to abort a run
    mid-flight, leaving a partial journal behind for crash-resume tests."""


class ObservabilityError(PowerError):
    """The tracing/metrics subsystem was misused (mismatched histogram
    boundaries in a merge, a metric re-registered under a different type,
    an unbalanced span stack, a profiler started off the main thread)."""


class ServeError(PowerError):
    """The resolution service reached an invalid state (session registry
    inconsistency, actor failure, misconfigured server)."""


class ProtocolError(ServeError):
    """A serve-protocol request is malformed or speaks an unsupported
    version; carries the machine-readable ``code`` the wire response uses."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class OverloadedError(ServeError):
    """The server shed a request under admission control; ``retry_after``
    is the seconds a well-behaved client should wait before retrying."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class VerificationError(PowerError):
    """A correctness check of :mod:`repro.verify` failed: a production path
    disagreed with its brute-force oracle, or an invariant was violated."""
