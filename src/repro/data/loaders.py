"""CSV round-trip for tables.

The format is plain CSV with a header row.  If an ``entity_id`` column is
present it is split off as ground truth; all other columns become string
attributes.  This lets users bring their own datasets to the resolver and
lets the benchmark suite cache generated datasets on disk.
"""

from __future__ import annotations

import csv
from pathlib import Path

from ..exceptions import DataError
from .table import Table

ENTITY_COLUMN = "entity_id"


def save_csv(table: Table, path: str | Path) -> None:
    """Write *table* to *path*, appending an ``entity_id`` column if known."""
    path = Path(path)
    with_truth = table.has_ground_truth()
    header = list(table.attributes) + ([ENTITY_COLUMN] if with_truth else [])
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for record in table:
            row = list(record.values)
            if with_truth:
                row.append(str(record.entity_id))
            writer.writerow(row)


def load_csv(path: str | Path, name: str | None = None) -> Table:
    """Read a table from *path*; an ``entity_id`` column becomes ground truth."""
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{path} is empty") from None
        entity_index = header.index(ENTITY_COLUMN) if ENTITY_COLUMN in header else None
        attributes = [
            column for index, column in enumerate(header) if index != entity_index
        ]
        table = Table(name=name or path.stem, attributes=tuple(attributes))
        for line_number, row in enumerate(reader, start=2):
            if len(row) != len(header):
                raise DataError(
                    f"{path}:{line_number}: expected {len(header)} columns, got {len(row)}"
                )
            entity_id: int | None = None
            if entity_index is not None:
                try:
                    entity_id = int(row[entity_index])
                except ValueError:
                    raise DataError(
                        f"{path}:{line_number}: entity_id {row[entity_index]!r} "
                        "is not an integer"
                    ) from None
            values = tuple(
                value for index, value in enumerate(row) if index != entity_index
            )
            table.append(values, entity_id=entity_id)
    return table
