"""Synthetic stand-ins for the paper's three real-world datasets.

The original download URLs (Restaurant, Cora, ACMPub — see §7.1) are not
reachable in this offline environment, so each generator synthesises a table
with the published shape:

* ``restaurant()`` — 858 records, 752 entities, 4 attributes, easy matching
  (mostly clean pairs; workers rarely err — the "easy" dataset of §7.2).
* ``cora()`` — 997 records, 191 entities, 8 attributes, dirty strings and
  large clusters (the "hard" dataset where error tolerance matters).
* ``acmpub(scale)`` — 66 879 records / 5 347 entities at ``scale=1.0``; the
  default benchmark scale is reduced so the full suite runs on a laptop.

Duplicates are derived from a clean entity record via the perturbation
families of :mod:`repro.data.perturb`, which mirror the variation visible in
the paper's Table 1.  All generation is deterministic under ``seed``.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from . import vocab
from .perturb import HEAVY_PERTURBATIONS, LIGHT_PERTURBATIONS, Perturbation, perturb
from .table import Table

EntityFactory = Callable[[np.random.Generator], tuple[str, ...]]


def _cluster_sizes(
    num_entities: int, num_records: int, rng: np.random.Generator, skew: float
) -> list[int]:
    """Split *num_records* into *num_entities* cluster sizes (each >= 1).

    ``skew`` in [0, 1]: 0 spreads the surplus records uniformly; 1 prefers
    already-large clusters (rich-get-richer), producing the long-tailed
    cluster-size profile of bibliographic data such as Cora.
    """
    if num_entities < 1:
        raise ConfigurationError(f"need at least one entity, got {num_entities}")
    if num_records < num_entities:
        raise ConfigurationError(
            f"need at least as many records ({num_records}) as entities ({num_entities})"
        )
    sizes = np.ones(num_entities, dtype=np.int64)
    for _ in range(num_records - num_entities):
        weights = sizes.astype(np.float64) ** skew if skew > 0 else np.ones(num_entities)
        weights /= weights.sum()
        sizes[int(rng.choice(num_entities, p=weights))] += 1
    return [int(size) for size in sizes]


def synthesize(
    name: str,
    attributes: Sequence[str],
    entity_factory: EntityFactory,
    num_entities: int,
    num_records: int,
    seed: int,
    cluster_skew: float = 0.0,
    intensity: float = 0.45,
    pool: tuple[Perturbation, ...] = LIGHT_PERTURBATIONS,
    keep_first_clean: bool = True,
) -> Table:
    """Generate a table of perturbed duplicates with ground-truth entity ids.

    Args:
        name: dataset name stored on the table.
        attributes: schema; must match the arity of *entity_factory*'s output.
        entity_factory: draws one clean entity's attribute values.
        num_entities / num_records: published dataset shape to reproduce.
        seed: RNG seed; identical seeds give identical tables.
        cluster_skew: long-tail parameter for cluster sizes (see above).
        intensity: perturbation intensity for duplicate records.
        pool: perturbation family (light for clean data, heavy for dirty).
        keep_first_clean: if True the first record of each cluster is the
            unperturbed entity, as in real data where one canonical record
            usually exists.
    """
    rng = np.random.default_rng(seed)
    sizes = _cluster_sizes(num_entities, num_records, rng, cluster_skew)
    table = Table(name=name, attributes=tuple(attributes))
    rows: list[tuple[int, tuple[str, ...]]] = []
    seen: set[tuple[str, ...]] = set()
    for entity_id, size in enumerate(sizes):
        clean = entity_factory(rng)
        if len(clean) != len(table.attributes):
            raise ConfigurationError(
                f"entity factory produced {len(clean)} values for "
                f"{len(table.attributes)} attributes"
            )
        # Entities must be distinct; redraw on (rare) collisions.
        attempts = 0
        while clean in seen:
            clean = entity_factory(rng)
            attempts += 1
            if attempts > 100:
                raise ConfigurationError(
                    "entity factory keeps producing duplicates; vocabulary too small "
                    f"for {num_entities} entities"
                )
        seen.add(clean)
        for copy_index in range(size):
            if copy_index == 0 and keep_first_clean:
                values = clean
            else:
                values = tuple(
                    perturb(value, rng, intensity=intensity, pool=pool)
                    for value in clean
                )
            rows.append((entity_id, values))
    # Shuffle so clusters are not contiguous in record-id order.
    order = rng.permutation(len(rows))
    for position in order:
        entity_id, values = rows[int(position)]
        table.append(values, entity_id=entity_id)
    return table


def _choice(rng: np.random.Generator, options: Sequence[str]) -> str:
    return options[int(rng.integers(0, len(options)))]


def _restaurant_entity(rng: np.random.Generator) -> tuple[str, str, str, str]:
    name = f"{_choice(rng, vocab.RESTAURANT_NAME_HEADS)} {_choice(rng, vocab.RESTAURANT_NAME_TAILS)}"
    address = (
        f"{int(rng.integers(1, 9999))} "
        f"{_choice(rng, vocab.STREET_NAMES)} {_choice(rng, vocab.STREET_SUFFIXES)}"
    )
    city = _choice(rng, vocab.CITIES)
    flavor = _choice(rng, vocab.CUISINES)
    if rng.random() < 0.3:
        flavor = f"{flavor} {_choice(rng, vocab.CUISINES)}"
    return (name, address, city, flavor)


def restaurant(seed: int = 7) -> Table:
    """Synthetic Restaurant dataset: 858 records, 752 entities, 4 attributes."""
    return synthesize(
        name="restaurant",
        attributes=("name", "address", "city", "flavor"),
        entity_factory=_restaurant_entity,
        num_entities=752,
        num_records=858,
        seed=seed,
        cluster_skew=0.0,
        intensity=0.4,
        pool=LIGHT_PERTURBATIONS,
    )


def _person_name(rng: np.random.Generator) -> str:
    return f"{_choice(rng, vocab.FIRST_NAMES)} {_choice(rng, vocab.LAST_NAMES)}"


def _paper_title(rng: np.random.Generator) -> str:
    pattern = _choice(rng, vocab.TITLE_PATTERNS)
    return pattern.format(
        adj=_choice(rng, vocab.TITLE_ADJECTIVES),
        topic=_choice(rng, vocab.TITLE_TOPICS),
        context=_choice(rng, vocab.TITLE_CONTEXTS),
    )


def _cora_entity(rng: np.random.Generator) -> tuple[str, ...]:
    authors = " and ".join(_person_name(rng) for _ in range(int(rng.integers(1, 4))))
    title = _paper_title(rng)
    journal = _choice(rng, vocab.JOURNALS)
    year = str(int(rng.integers(1975, 2016)))
    start = int(rng.integers(1, 800))
    pages = f"{start}-{start + int(rng.integers(8, 30))}"
    publisher = _choice(rng, vocab.PUBLISHERS)
    pub_type = _choice(rng, vocab.PUBLICATION_TYPES)
    editor = _person_name(rng)
    return (authors, title, journal, year, pages, publisher, pub_type, editor)


def cora(seed: int = 11) -> Table:
    """Synthetic Cora dataset: 997 records, 191 entities, 8 attributes, dirty."""
    return synthesize(
        name="cora",
        attributes=(
            "author", "title", "journal", "year",
            "pages", "publisher", "type", "editor",
        ),
        entity_factory=_cora_entity,
        num_entities=191,
        num_records=997,
        seed=seed,
        cluster_skew=0.8,
        intensity=0.6,
        pool=HEAVY_PERTURBATIONS,
    )


def _acmpub_entity(rng: np.random.Generator) -> tuple[str, str, str, str]:
    authors = ", ".join(_person_name(rng) for _ in range(int(rng.integers(1, 5))))
    title = _paper_title(rng)
    conference = f"{_choice(rng, vocab.CONFERENCES)} {int(rng.integers(1990, 2016))}"
    year = conference.rsplit(" ", 1)[1]
    return (authors, title, conference, year)


def acmpub(scale: float = 0.09, seed: int = 13) -> Table:
    """Synthetic ACMPub dataset (66 879 records / 5 347 entities at scale 1.0).

    The default ``scale=0.09`` yields roughly 6 000 records so the benchmark
    suite stays laptop-sized; pass ``scale=1.0`` for the published size.
    """
    if not 0.0 < scale <= 1.0:
        raise ConfigurationError(f"scale must be in (0, 1], got {scale}")
    num_records = max(20, round(66_879 * scale))
    num_entities = max(4, round(5_347 * scale))
    return synthesize(
        name="acmpub",
        attributes=("author", "title", "conference", "year"),
        entity_factory=_acmpub_entity,
        num_entities=num_entities,
        num_records=num_records,
        seed=seed,
        cluster_skew=0.5,
        intensity=0.5,
        pool=HEAVY_PERTURBATIONS,
    )


DATASETS: dict[str, Callable[[], Table]] = {
    "restaurant": restaurant,
    "cora": cora,
    "acmpub": acmpub,
}


def load_dataset(name: str, **kwargs) -> Table:
    """Load one of the three benchmark datasets by name."""
    try:
        factory = DATASETS[name]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise ConfigurationError(f"unknown dataset {name!r}; known: {known}") from None
    return factory(**kwargs)


def _product_entity(rng: np.random.Generator) -> tuple[str, str, str, str]:
    line = _choice(rng, vocab.PRODUCT_LINES)
    modifier = _choice(rng, vocab.PRODUCT_MODIFIERS)
    kind = _choice(rng, vocab.PRODUCT_TYPES)
    title = f"{line} {modifier} {kind}"
    brand = _choice(rng, vocab.PRODUCT_BRANDS)
    price = f"{int(rng.integers(40, 2500))}.{int(rng.integers(0, 100)):02d}"
    return (title, brand, kind, price)


def products(num_entities: int = 400, num_records: int = 540, seed: int = 17) -> Table:
    """Synthetic product-catalog dataset (an e-commerce matching scenario).

    Not one of the paper's datasets — provided for the comparison-shopping
    use case its introduction motivates ("comparison shopping"): listings of
    the same product from different sellers, with the title noise typical of
    marketplaces (reordered tokens, dropped modifiers, seller suffixes).
    """
    return synthesize(
        name="products",
        attributes=("title", "brand", "category", "price"),
        entity_factory=_product_entity,
        num_entities=num_entities,
        num_records=num_records,
        seed=seed,
        cluster_skew=0.3,
        intensity=0.5,
        pool=HEAVY_PERTURBATIONS,
    )


DATASETS["products"] = products
