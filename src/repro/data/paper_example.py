"""The paper's running example: Table 1 records and Table 2 similarities.

The eleven restaurant records of Table 1 and the eighteen similar-pair
similarity vectors of Table 2 are reproduced verbatim.  They drive the
worked examples throughout the paper (graph of Fig. 1, groups of Figs. 3-4,
question-selection walkthroughs of Figs. 5-7, and the error-tolerance
example of §6 / Appendix C), so the test suite validates our algorithms
against the published numbers on exactly this input.

Pairs are keyed by 0-based record ids: the paper's ``p_12`` is ``(0, 1)``.
"""

from __future__ import annotations

import numpy as np

from ..data.ground_truth import Pair
from .table import Table

PAPER_ATTRIBUTES = ("name", "address", "city", "flavor")

# (name, address, city, flavor, entity_id) — Table 1 plus its stated truth:
# r1-r3 are one entity, r4-r7 another, r8-r11 four singletons.
_PAPER_ROWS = [
    ("ritz-carlton restaurant (atlanta)", "181 w. peachtree st.", "atlanta", "european french", 0),
    ("ritz-carlton restaurant", "181 peachtree dr", "atlanta", "european(french)", 0),
    ("ritz-carlton restaurant Georgia", "181 peachtree st.", "city of atlanta", "european France", 0),
    ("cafe ritz-carlton buckhead", "3434 peachtree rd.", "city of atlanta", "american", 1),
    ("cafe ritz-carlton (buckhead)", "3434 peachtree rd.", "city of atlanta", "american", 1),
    ("dining room ritz-carlton buckhead", "3434 peachtree ave.", "atlanta", "international", 1),
    ("dining room ritz-carlton (buckhead)", "3434 peachtree ave.", "atlanta", "international", 1),
    ("cafe claude", "201 83rd st.", "new york", "cafe", 2),
    ("cafe bizou (american)", "13 54th st.", "new york", "american food", 3),
    ("gotham bar & grill", "12th rd.", "new york", "american(new)", 4),
    ("mesa grill", "102 5th rd.", "new york", "southwestern", 5),
]

# Table 2: the eighteen similar pairs and their per-attribute similarities
# (edit similarity on name/flavor, Jaccard on address/city; tau = 0.2).
PAPER_SIMILARITIES: dict[Pair, tuple[float, float, float, float]] = {
    (0, 1): (0.72, 0.4, 1.0, 0.88),
    (0, 2): (0.75, 0.75, 0.33, 0.8),
    (1, 2): (0.77, 0.5, 0.33, 0.69),
    (1, 3): (0.51, 0.2, 0.33, 0.0),
    (1, 4): (0.53, 0.2, 0.33, 0.0),
    (1, 5): (0.42, 0.2, 1.0, 0.0),
    (1, 6): (0.45, 0.2, 1.0, 0.0),
    (2, 3): (0.39, 0.2, 1.0, 0.0),
    (2, 4): (0.39, 0.2, 1.0, 0.0),
    (2, 6): (0.28, 0.2, 0.33, 0.0),
    (3, 4): (0.92, 1.0, 1.0, 1.0),
    (3, 5): (0.69, 0.5, 0.33, 0.0),
    (3, 6): (0.65, 0.5, 0.33, 0.0),
    (4, 5): (0.63, 0.5, 0.33, 0.0),
    (4, 6): (0.71, 0.5, 0.33, 0.0),
    (5, 6): (0.94, 1.0, 1.0, 1.0),
    (7, 8): (0.33, 0.2, 1.0, 0.0),
    (9, 10): (0.5, 0.25, 1.0, 0.0),
}

# The attribute weights of Eq. 7 computed in Appendix C from the GREEN pairs
# P^g = {p13, p67, p45, p23, p46, p56, p47, p57} (published, rounded).
PAPER_ATTRIBUTE_WEIGHTS = (0.32, 0.28, 0.21, 0.19)
PAPER_GREEN_TRAINING_PAIRS: tuple[Pair, ...] = (
    (0, 2), (5, 6), (3, 4), (1, 2), (3, 5), (4, 5), (3, 6), (4, 6),
)

# Figure 18: weighted similarities under the Appendix-C weights (published,
# rounded to two decimals).
PAPER_WEIGHTED_SIMILARITIES: dict[Pair, float] = {
    (0, 1): 0.72, (0, 2): 0.68, (1, 2): 0.60, (1, 3): 0.28, (1, 4): 0.29,
    (1, 5): 0.40, (1, 6): 0.41, (2, 3): 0.39, (2, 4): 0.39, (2, 6): 0.21,
    (3, 4): 0.97, (3, 5): 0.43, (3, 6): 0.42, (4, 5): 0.41, (4, 6): 0.44,
    (5, 6): 0.98, (7, 8): 0.37, (9, 10): 0.44,
}

# The nine groups produced by the Split algorithm with eps = 0.1, as printed
# in the paper's Figs. 3-4.  Note: seven groups follow mechanically from
# Algorithm 2; for the remaining vertices {p26, p27, p34, p35, p89, p10_11}
# the figure's partition ({p27, p10_11} | {p26, p34, p35, p89}) implies a
# split point of 0.445 on attribute 1 — the midpoint of the *parent* range —
# whereas the recomputed node range [0.33, 0.5] shown elsewhere in Fig. 4
# gives midpoint 0.415 and the partition ({p26, p27, p10_11} | {p34, p35,
# p89}).  Our implementation recomputes ranges per node (as Algorithm 2's
# N.l/N.u notation specifies), so tests assert 9 valid groups with the seven
# uncontested groups matching exactly.
PAPER_SPLIT_GROUPS: tuple[frozenset[Pair], ...] = (
    frozenset({(5, 6), (3, 4)}),
    frozenset({(0, 1)}),
    frozenset({(0, 2)}),
    frozenset({(1, 2)}),
    frozenset({(9, 10), (1, 6)}),
    frozenset({(4, 6), (3, 6), (3, 5), (4, 5)}),
    frozenset({(1, 3), (1, 4)}),
    frozenset({(1, 5), (2, 3), (7, 8), (2, 4)}),
    frozenset({(2, 6)}),
)


def paper_table() -> Table:
    """The eleven records of Table 1 with their ground-truth entity ids."""
    return Table.from_rows(
        name="paper-example",
        attributes=PAPER_ATTRIBUTES,
        rows=[row[:4] for row in _PAPER_ROWS],
        entity_ids=[row[4] for row in _PAPER_ROWS],
    )


def paper_pairs() -> list[Pair]:
    """The eighteen similar pairs of Table 2, in sorted order."""
    return sorted(PAPER_SIMILARITIES)


def paper_vectors() -> np.ndarray:
    """Table 2 similarity vectors, row-aligned with :func:`paper_pairs`."""
    return np.array([PAPER_SIMILARITIES[pair] for pair in paper_pairs()])
