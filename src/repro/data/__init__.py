"""Data substrate: table model, ground truth, generators, paper example."""

from .generators import DATASETS, acmpub, cora, load_dataset, products, restaurant, synthesize
from .ground_truth import (
    Pair,
    canonical_pair,
    entity_clusters,
    num_entities,
    pair_truth,
    true_match_pairs,
)
from .loaders import load_csv, save_csv
from .paper_example import (
    PAPER_ATTRIBUTE_WEIGHTS,
    PAPER_SIMILARITIES,
    PAPER_SPLIT_GROUPS,
    PAPER_WEIGHTED_SIMILARITIES,
    paper_pairs,
    paper_table,
    paper_vectors,
)
from .table import Record, Table

__all__ = [
    "DATASETS",
    "PAPER_ATTRIBUTE_WEIGHTS",
    "PAPER_SIMILARITIES",
    "PAPER_SPLIT_GROUPS",
    "PAPER_WEIGHTED_SIMILARITIES",
    "Pair",
    "Record",
    "Table",
    "acmpub",
    "canonical_pair",
    "cora",
    "entity_clusters",
    "load_csv",
    "load_dataset",
    "num_entities",
    "pair_truth",
    "products",
    "paper_pairs",
    "paper_table",
    "paper_vectors",
    "restaurant",
    "save_csv",
    "synthesize",
    "true_match_pairs",
]
