"""String perturbations used to derive duplicate records from a clean entity.

The perturbation families mirror the variation visible in the paper's Table 1
sample: parenthesised qualifiers (``"cafe ritz-carlton (buckhead)"``),
dropped or added tokens (``"ritz-carlton restaurant Georgia"``), suffix swaps
(``"st." -> "dr"``), typos, abbreviations, and case/punctuation noise.

Every function takes and returns a plain string plus a ``numpy.random.
Generator`` so duplicate generation is fully deterministic under a seed.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

Perturbation = Callable[[str, np.random.Generator], str]

_LETTERS = "abcdefghijklmnopqrstuvwxyz"

ABBREVIATIONS = {
    "street": "st.",
    "st.": "st",
    "avenue": "ave.",
    "ave.": "ave",
    "road": "rd.",
    "rd.": "rd",
    "boulevard": "blvd.",
    "drive": "dr.",
    "restaurant": "rest.",
    "international": "intl",
    "american": "amer.",
    "department": "dept.",
    "proceedings": "proc.",
    "conference": "conf.",
    "journal": "j.",
    "transactions": "trans.",
}


def typo(text: str, rng: np.random.Generator) -> str:
    """Apply one random character edit (substitute, delete, insert, swap)."""
    if len(text) < 2:
        return text
    position = int(rng.integers(0, len(text)))
    operation = rng.choice(["substitute", "delete", "insert", "swap"])
    letter = _LETTERS[int(rng.integers(0, len(_LETTERS)))]
    if operation == "substitute":
        return text[:position] + letter + text[position + 1 :]
    if operation == "delete":
        return text[:position] + text[position + 1 :]
    if operation == "insert":
        return text[:position] + letter + text[position:]
    if position == len(text) - 1:
        position -= 1
    return text[:position] + text[position + 1] + text[position] + text[position + 2 :]


def drop_token(text: str, rng: np.random.Generator) -> str:
    """Remove one random word token (never emptying the string)."""
    tokens = text.split()
    if len(tokens) < 2:
        return text
    victim = int(rng.integers(0, len(tokens)))
    return " ".join(token for index, token in enumerate(tokens) if index != victim)


def parenthesize_token(text: str, rng: np.random.Generator) -> str:
    """Wrap the final token in parentheses, as in ``"cafe ritz (buckhead)"``."""
    tokens = text.split()
    if len(tokens) < 2 or tokens[-1].startswith("("):
        return text
    return " ".join(tokens[:-1]) + f" ({tokens[-1]})"


def strip_punctuation(text: str, rng: np.random.Generator) -> str:
    """Drop periods, commas, parentheses and apostrophes."""
    return "".join(ch for ch in text if ch not in ".,()'&")


def abbreviate(text: str, rng: np.random.Generator) -> str:
    """Replace one known long form with its abbreviation (or vice versa)."""
    tokens = text.split()
    candidates = [i for i, token in enumerate(tokens) if token in ABBREVIATIONS]
    if not candidates:
        return text
    index = candidates[int(rng.integers(0, len(candidates)))]
    tokens[index] = ABBREVIATIONS[tokens[index]]
    return " ".join(tokens)


def swap_tokens(text: str, rng: np.random.Generator) -> str:
    """Swap two adjacent tokens (e.g. reversed author name order)."""
    tokens = text.split()
    if len(tokens) < 2:
        return text
    position = int(rng.integers(0, len(tokens) - 1))
    tokens[position], tokens[position + 1] = tokens[position + 1], tokens[position]
    return " ".join(tokens)


def initialize_first_token(text: str, rng: np.random.Generator) -> str:
    """Reduce the first token to an initial (``"john smith" -> "j. smith"``)."""
    tokens = text.split()
    if not tokens or len(tokens[0]) < 2:
        return text
    tokens[0] = tokens[0][0] + "."
    return " ".join(tokens)


def append_qualifier(text: str, rng: np.random.Generator) -> str:
    """Append a short qualifier token, as in ``"... restaurant georgia"``."""
    qualifiers = ["inc", "co", "ltd", "the", "new", "old", "city"]
    return f"{text} {qualifiers[int(rng.integers(0, len(qualifiers)))]}"


def truncate(text: str, rng: np.random.Generator) -> str:
    """Cut the string after a random token boundary (keeping >= 1 token)."""
    tokens = text.split()
    if len(tokens) < 2:
        return text
    keep = int(rng.integers(1, len(tokens)))
    return " ".join(tokens[:keep])


LIGHT_PERTURBATIONS: tuple[Perturbation, ...] = (
    typo,
    parenthesize_token,
    strip_punctuation,
    abbreviate,
)

HEAVY_PERTURBATIONS: tuple[Perturbation, ...] = LIGHT_PERTURBATIONS + (
    drop_token,
    swap_tokens,
    initialize_first_token,
    append_qualifier,
    truncate,
)


def perturb(
    text: str,
    rng: np.random.Generator,
    intensity: float = 0.5,
    pool: Sequence[Perturbation] = LIGHT_PERTURBATIONS,
) -> str:
    """Apply 0-3 random perturbations from *pool*, scaled by *intensity*.

    ``intensity`` in [0, 1] controls the expected number of edits; 0 returns
    the string unchanged, 1 applies roughly three edits.
    """
    if not 0.0 <= intensity <= 1.0:
        raise ValueError(f"intensity must be in [0, 1], got {intensity}")
    edits = int(rng.binomial(3, intensity))
    result = text
    for _ in range(edits):
        operation = pool[int(rng.integers(0, len(pool)))]
        result = operation(result, rng)
    return result if result.strip() else text
