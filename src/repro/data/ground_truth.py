"""Ground-truth helpers: entity clusters and gold match pairs."""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable

from ..exceptions import DataError
from .table import Table

Pair = tuple[int, int]


def canonical_pair(i: int, j: int) -> Pair:
    """Return the pair ``(min(i, j), max(i, j))``; reject self-pairs."""
    if i == j:
        raise DataError(f"a pair must join two distinct records, got ({i}, {j})")
    return (i, j) if i < j else (j, i)


def entity_clusters(table: Table) -> dict[int, list[int]]:
    """Map each entity id to the sorted list of record ids referring to it."""
    if not table.has_ground_truth():
        raise DataError(f"table {table.name!r} has records without entity ids")
    clusters: dict[int, list[int]] = defaultdict(list)
    for record in table:
        clusters[record.entity_id].append(record.record_id)
    return {entity: sorted(members) for entity, members in clusters.items()}


def true_match_pairs(table: Table) -> set[Pair]:
    """All record pairs that refer to the same entity (the gold positives)."""
    matches: set[Pair] = set()
    for members in entity_clusters(table).values():
        for a_index, i in enumerate(members):
            for j in members[a_index + 1 :]:
                matches.add((i, j))
    return matches


def pair_truth(table: Table, pairs: Iterable[Pair]) -> dict[Pair, bool]:
    """For each pair, whether its two records refer to the same entity."""
    if not table.has_ground_truth():
        raise DataError(f"table {table.name!r} has records without entity ids")
    truth: dict[Pair, bool] = {}
    for i, j in pairs:
        pair = canonical_pair(i, j)
        truth[pair] = table[pair[0]].entity_id == table[pair[1]].entity_id
    return truth


def num_entities(table: Table) -> int:
    """Number of distinct entities in the table."""
    return len(entity_clusters(table))
