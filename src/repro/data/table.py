"""Record/table model (paper Definition 1).

A :class:`Table` holds ``n`` records over ``m`` named attributes.  Each record
optionally carries the identifier of the real-world entity it refers to; when
present, these identifiers are the ground truth used by the simulated crowd
and the evaluation metrics.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from ..exceptions import DataError


@dataclass(frozen=True)
class Record:
    """One row of a table.

    Attributes:
        record_id: position of the record in its table (0-based, stable).
        values: one string value per table attribute.
        entity_id: ground-truth entity identifier, or ``None`` if unknown.
    """

    record_id: int
    values: tuple[str, ...]
    entity_id: int | None = None

    def __getitem__(self, attribute_index: int) -> str:
        return self.values[attribute_index]


@dataclass
class Table:
    """A collection of records sharing a schema.

    Attributes:
        name: human-readable dataset name (e.g. ``"restaurant"``).
        attributes: attribute names, in column order.
        records: the rows; ``records[i].record_id == i`` always holds.
    """

    name: str
    attributes: tuple[str, ...]
    records: list[Record] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.attributes = tuple(self.attributes)
        for position, record in enumerate(self.records):
            self._validate(position, record)

    def _validate(self, position: int, record: Record) -> None:
        if record.record_id != position:
            raise DataError(
                f"record at position {position} has record_id {record.record_id}"
            )
        if len(record.values) != len(self.attributes):
            raise DataError(
                f"record {record.record_id} has {len(record.values)} values, "
                f"expected {len(self.attributes)}"
            )

    @classmethod
    def from_rows(
        cls,
        name: str,
        attributes: Sequence[str],
        rows: Iterable[Sequence[str]],
        entity_ids: Sequence[int] | None = None,
    ) -> "Table":
        """Build a table from raw rows, assigning record ids by position."""
        table = cls(name=name, attributes=tuple(attributes))
        for index, row in enumerate(rows):
            entity = entity_ids[index] if entity_ids is not None else None
            table.append(tuple(str(value) for value in row), entity_id=entity)
        return table

    def append(self, values: tuple[str, ...], entity_id: int | None = None) -> Record:
        """Append a record, assigning the next record id; return it."""
        record = Record(record_id=len(self.records), values=values, entity_id=entity_id)
        self._validate(record.record_id, record)
        self.records.append(record)
        return record

    @property
    def num_attributes(self) -> int:
        return len(self.attributes)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def __getitem__(self, record_id: int) -> Record:
        return self.records[record_id]

    def has_ground_truth(self) -> bool:
        """True when every record carries an entity id."""
        return all(record.entity_id is not None for record in self.records)

    def record_text(self, record_id: int) -> str:
        """All attribute values of a record joined into one string.

        Used for record-level similarity in the pruning step (§7.1).
        """
        return " ".join(self.records[record_id].values)

    def project(self, attribute_indexes: Sequence[int], name: str | None = None) -> "Table":
        """Return a new table keeping only the given attribute columns.

        Used by the Fig. 34 experiment, which varies the number of attributes.
        """
        indexes = list(attribute_indexes)
        if not indexes:
            raise DataError("projection needs at least one attribute")
        for index in indexes:
            if not 0 <= index < self.num_attributes:
                raise DataError(f"attribute index {index} out of range")
        projected = Table(
            name=name or f"{self.name}[{len(indexes)} attrs]",
            attributes=tuple(self.attributes[i] for i in indexes),
        )
        for record in self.records:
            projected.append(
                tuple(record.values[i] for i in indexes), entity_id=record.entity_id
            )
        return projected
