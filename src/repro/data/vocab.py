"""Vocabularies backing the synthetic dataset generators.

The word lists are deliberately sized so generated entities collide at
realistic rates: distinct restaurants frequently share cuisine/city tokens and
distinct papers share title words, which is what makes the entity-resolution
problem non-trivial (near-duplicates across *different* entities).
"""

from __future__ import annotations

RESTAURANT_NAME_HEADS = [
    "ritz-carlton", "cafe claude", "cafe bizou", "gotham", "mesa", "la folie",
    "chez panisse", "spago", "nobu", "le bernardin", "union square", "gramercy",
    "blue ribbon", "carmine's", "patsy's", "il mulino", "palm", "smith & wollensky",
    "morton's", "ruth's chris", "benihana", "p.f. chang's", "olive garden",
    "cheesecake factory", "daniel", "jean-georges", "per se", "masa", "bouley",
    "aureole", "tavern on the green", "balthazar", "pastis", "odeon", "raoul's",
    "lucky strike", "felix", "lupa", "babbo", "esca", "otto", "del posto",
    "eleven madison", "craft", "colicchio", "hearth", "prune", "momofuku",
    "ippudo", "katz's", "second avenue", "russ & daughters", "barney greengrass",
    "zabar's", "citarella", "fairway", "dean & deluca", "borgne", "brigtsen's",
    "commander's palace", "galatoire's", "antoine's", "arnaud's", "brennan's",
    "emeril's", "nola", "bayona", "herbsaint", "cochon", "peche", "shaya",
]

RESTAURANT_NAME_TAILS = [
    "restaurant", "cafe", "grill", "bar & grill", "dining room", "bistro",
    "brasserie", "kitchen", "tavern", "steakhouse", "trattoria", "osteria",
    "cantina", "diner", "eatery", "chophouse", "oyster bar", "pizzeria",
]

STREET_NAMES = [
    "peachtree", "main", "broadway", "market", "mission", "valencia", "castro",
    "fillmore", "divisadero", "haight", "gough", "polk", "hyde", "larkin",
    "van ness", "lombard", "columbus", "grant", "stockton", "powell", "mason",
    "taylor", "jones", "leavenworth", "sutter", "bush", "pine", "california",
    "sacramento", "clay", "washington", "jackson", "pacific", "union", "green",
    "vallejo", "magazine", "canal", "royal", "bourbon", "chartres", "decatur",
    "5th", "12th", "54th", "83rd", "lexington", "madison", "park", "amsterdam",
]

STREET_SUFFIXES = ["st.", "ave.", "rd.", "blvd.", "dr.", "ln.", "way", "pl."]

CITIES = [
    "atlanta", "new york", "san francisco", "los angeles", "chicago",
    "new orleans", "boston", "seattle", "portland", "austin", "houston",
    "philadelphia", "washington", "miami", "denver", "las vegas",
]

CUISINES = [
    "american", "french", "italian", "japanese", "chinese", "mexican", "thai",
    "indian", "mediterranean", "greek", "spanish", "korean", "vietnamese",
    "cajun", "creole", "southern", "southwestern", "seafood", "steakhouse",
    "cafe", "international", "european", "fusion", "barbecue", "vegetarian",
]

FIRST_NAMES = [
    "john", "david", "michael", "james", "robert", "william", "richard",
    "thomas", "mary", "jennifer", "linda", "susan", "karen", "lisa", "nancy",
    "wei", "jian", "ming", "yong", "hong", "anil", "raj", "priya", "hiroshi",
    "kenji", "yuki", "pierre", "jean", "marie", "hans", "klaus", "anna",
    "sergey", "ivan", "olga", "carlos", "jose", "maria", "luigi", "giovanni",
]

LAST_NAMES = [
    "smith", "johnson", "williams", "brown", "jones", "miller", "davis",
    "garcia", "wilson", "anderson", "thomas", "taylor", "moore", "jackson",
    "martin", "lee", "thompson", "white", "harris", "clark", "lewis",
    "chen", "wang", "li", "zhang", "liu", "yang", "huang", "wu", "zhou",
    "kumar", "patel", "singh", "sharma", "tanaka", "suzuki", "yamamoto",
    "mueller", "schmidt", "fischer", "weber", "dubois", "moreau", "rossi",
    "ferrari", "ivanov", "petrov", "kim", "park", "choi", "nguyen", "tran",
]

TITLE_TOPICS = [
    "query optimization", "entity resolution", "data integration",
    "crowdsourcing", "transaction processing", "index structures",
    "stream processing", "graph mining", "machine learning", "deep learning",
    "information retrieval", "natural language", "knowledge bases",
    "data cleaning", "schema matching", "record linkage", "similarity joins",
    "approximate queries", "distributed systems", "concurrency control",
    "main memory databases", "column stores", "spatial databases",
    "temporal databases", "probabilistic databases", "privacy preservation",
    "access control", "data provenance", "workflow management", "web search",
]

TITLE_PATTERNS = [
    "{adj} {topic} in {context}",
    "towards {adj} {topic}",
    "{topic}: a {adj} approach",
    "efficient algorithms for {topic}",
    "{adj} techniques for {topic} in {context}",
    "on the complexity of {topic}",
    "scaling {topic} to {context}",
    "a survey of {topic}",
    "{topic} with {context}",
    "rethinking {topic} for {context}",
]

TITLE_ADJECTIVES = [
    "scalable", "efficient", "adaptive", "robust", "incremental", "parallel",
    "distributed", "online", "approximate", "cost-effective", "practical",
    "declarative", "interactive", "unified", "principled",
]

TITLE_CONTEXTS = [
    "large-scale systems", "the cloud", "relational databases", "big data",
    "social networks", "sensor networks", "the web", "modern hardware",
    "multi-core architectures", "heterogeneous data", "dynamic workloads",
]

JOURNALS = [
    "acm transactions on database systems", "the vldb journal",
    "ieee transactions on knowledge and data engineering",
    "information systems", "data and knowledge engineering",
    "journal of the acm", "acm computing surveys", "sigmod record",
]

CONFERENCES = [
    "sigmod", "vldb", "icde", "edbt", "cidr", "kdd", "www", "cikm", "wsdm",
    "pods", "icdt", "sigir", "aaai", "ijcai", "nips", "icml",
]

PUBLISHERS = [
    "acm press", "ieee computer society", "morgan kaufmann", "springer",
    "elsevier", "mit press", "addison-wesley", "prentice hall",
]

PUBLICATION_TYPES = ["article", "inproceedings", "techreport", "book", "phdthesis"]


PRODUCT_BRANDS = [
    "lenovo", "samsung", "apple", "sony", "dell", "asus", "acer", "lg",
    "logitech", "bose", "anker", "jbl", "canon", "nikon", "hp", "garmin",
]

PRODUCT_LINES = [
    "thinkpad x1", "galaxy s21", "airpods pro", "bravia xr", "xps 13",
    "zenbook duo", "predator helios", "gram 17", "mx master", "quietcomfort",
    "powercore", "charge 5", "eos r6", "z fc", "spectre x360", "fenix 7",
]

PRODUCT_TYPES = [
    "laptop", "smartphone", "earbuds", "tv", "ultrabook", "monitor",
    "gaming laptop", "notebook", "mouse", "headphones", "power bank",
    "speaker", "camera", "mirrorless camera", "convertible", "smartwatch",
]

PRODUCT_MODIFIERS = [
    "gen 2", "2nd generation", "pro", "plus", "max", "ultra", "se", "lite",
    "2023", "refurbished", "international version", "bundle",
]
