"""power-er: cost-effective crowdsourced entity resolution via partial orders.

A from-scratch reproduction of Chai, Li, Li, Deng & Feng, *Cost-Effective
Crowdsourced Entity Resolution: A Partial-Order Approach* (SIGMOD 2016),
including the Power/Power+ framework, the Trans/ACD/GCER baselines, a
simulated crowdsourcing platform, and synthetic stand-ins for the paper's
three evaluation datasets.

Quickstart:
    >>> from repro import PowerResolver, PowerConfig, restaurant
    >>> result = PowerResolver(PowerConfig(seed=1)).resolve(restaurant())
    >>> print(result.questions, result.quality.f_measure)
"""

from .baselines import ACDResolver, BASELINES, GCERResolver, TransResolver
from .core import (
    PowerConfig,
    PowerResolver,
    QualityReport,
    ResolutionResult,
    clusters_from_matches,
    pairwise_quality,
)
from .crowd import LatencyModel, PerfectCrowd, SimulatedCrowd, WorkerPool
from .data import Table, acmpub, cora, load_csv, load_dataset, restaurant, save_csv
from .engine import (
    FAULT_PROFILES,
    BudgetGuard,
    CrowdEngine,
    EngineConfig,
    EngineSession,
    FaultProfile,
    Journal,
    RetryPolicy,
    Telemetry,
)
from .shard import ShardedResolver, ShardExecutor
from .selection import (
    ErrorPolicy,
    MultiPathSelector,
    RandomSelector,
    SELECTORS,
    SinglePathSelector,
    TopoSortSelector,
)
from .similarity import (
    SimilarityConfig,
    batch_similarity_matrix,
    similar_pairs,
    similarity_matrix,
)

__version__ = "1.0.0"

__all__ = [
    "ACDResolver",
    "BASELINES",
    "BudgetGuard",
    "CrowdEngine",
    "EngineConfig",
    "EngineSession",
    "ErrorPolicy",
    "FAULT_PROFILES",
    "FaultProfile",
    "GCERResolver",
    "Journal",
    "LatencyModel",
    "MultiPathSelector",
    "PerfectCrowd",
    "RetryPolicy",
    "Telemetry",
    "PowerConfig",
    "PowerResolver",
    "QualityReport",
    "RandomSelector",
    "ResolutionResult",
    "SELECTORS",
    "ShardExecutor",
    "ShardedResolver",
    "SimilarityConfig",
    "SimulatedCrowd",
    "SinglePathSelector",
    "Table",
    "TopoSortSelector",
    "TransResolver",
    "WorkerPool",
    "acmpub",
    "batch_similarity_matrix",
    "clusters_from_matches",
    "cora",
    "load_csv",
    "load_dataset",
    "pairwise_quality",
    "restaurant",
    "save_csv",
    "similar_pairs",
    "similarity_matrix",
    "__version__",
]
