"""Question selection: Random, SinglePath, MultiPath, Power (+error tolerance)."""

from .base import QuestionSelector, SelectionResult
from .error_tolerant import (
    ErrorPolicy,
    resolve_blue_pairs,
    resolve_undecided_vertices,
)
from .histograms import (
    MatchHistogram,
    attribute_weights,
    build_histogram,
    weighted_similarities,
)
from .multi_path import MultiPathSelector
from .random_selector import RandomSelector
from .single_path import SinglePathSelector
from .topo_sort import TopoSortSelector

SELECTORS = {
    "random": RandomSelector,
    "single-path": SinglePathSelector,
    "multi-path": MultiPathSelector,
    "power": TopoSortSelector,
}

__all__ = [
    "ErrorPolicy",
    "MatchHistogram",
    "MultiPathSelector",
    "QuestionSelector",
    "RandomSelector",
    "SELECTORS",
    "SelectionResult",
    "SinglePathSelector",
    "TopoSortSelector",
    "attribute_weights",
    "build_histogram",
    "resolve_blue_pairs",
    "resolve_undecided_vertices",
    "weighted_similarities",
]
