"""Attribute weights, weighted similarity, and histograms (paper §6).

After the crowd loop, GREEN pairs act as positive training data: each
attribute's weight is its share of total similarity mass over the GREEN
pairs (Eq. 7), every pair gets a weighted similarity (Eq. 8), and histograms
over the already-colored pairs estimate, per similarity range, the
probability that a pair is a match.  BLUE (low-confidence) pairs are then
colored by the probability of the bin they fall into.

Both binning schemes that appear in the paper are provided: the running
example of Appendix C uses five equi-*width* bins of width 0.2, while §6 and
the experiments (§E.3, "we build 20 histograms") describe equi-*depth* bins.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError


def attribute_weights(green_vectors: np.ndarray, num_attributes: int) -> np.ndarray:
    """Eq. 7: each attribute's share of similarity mass over GREEN pairs.

    With no GREEN pairs (or zero total mass) the weights fall back to
    uniform — there is no signal to prefer one attribute.
    """
    if green_vectors.size == 0:
        return np.full(num_attributes, 1.0 / num_attributes)
    totals = green_vectors.sum(axis=0)
    mass = totals.sum()
    if mass <= 0:
        return np.full(num_attributes, 1.0 / num_attributes)
    return totals / mass


def weighted_similarities(vectors: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Eq. 8: per-pair weighted similarity ``s_hat = sum_k w_k * s^k``."""
    vectors = np.asarray(vectors, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if vectors.ndim != 2 or vectors.shape[1] != weights.shape[0]:
        raise ConfigurationError(
            f"vectors {vectors.shape} incompatible with weights {weights.shape}"
        )
    return vectors @ weights


@dataclass
class MatchHistogram:
    """Bins over weighted similarity with per-bin match probabilities.

    Attributes:
        boundaries: ascending inner bin boundaries; bin ``i`` covers
            ``(boundaries[i-1], boundaries[i]]`` with implicit outer bounds.
        probabilities: estimated P(match) per bin; bins that received no
            training pairs inherit the nearest non-empty bin's estimate.
        counts: training pairs per bin, for diagnostics.
    """

    boundaries: np.ndarray
    probabilities: np.ndarray
    counts: np.ndarray

    def bin_of(self, value: float) -> int:
        return min(bisect_right(list(self.boundaries), value), len(self.probabilities) - 1)

    def probability(self, value: float) -> float:
        """Estimated probability that a pair with this ``s_hat`` is a match."""
        return float(self.probabilities[self.bin_of(value)])

    def classify(self, value: float) -> bool:
        """The paper's rule: GREEN when the bin probability exceeds 0.5."""
        return self.probability(value) > 0.5


def _fill_empty_bins(probabilities: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Give empty bins the estimate of the nearest non-empty bin.

    Weighted similarity is monotone evidence, so the nearest-neighbour fill
    preserves the (roughly) increasing shape of the match probability.
    """
    filled = probabilities.copy()
    non_empty = np.flatnonzero(counts > 0)
    if non_empty.size == 0:
        return np.full_like(filled, 0.5)
    for index in np.flatnonzero(counts == 0):
        nearest = non_empty[np.argmin(np.abs(non_empty - index))]
        filled[index] = probabilities[nearest]
    return filled


def build_histogram(
    values: np.ndarray,
    is_match: np.ndarray,
    num_bins: int = 20,
    binning: str = "equi-depth",
) -> MatchHistogram:
    """Fit a match-probability histogram from colored pairs.

    Args:
        values: weighted similarities of the GREEN/RED training pairs.
        is_match: True where the pair was colored GREEN.
        num_bins: the paper's experiments use 20.
        binning: ``"equi-depth"`` (paper §6) or ``"equi-width"``
            (the Appendix C example).
    """
    values = np.asarray(values, dtype=np.float64)
    is_match = np.asarray(is_match, dtype=bool)
    if values.shape != is_match.shape:
        raise ConfigurationError(
            f"values {values.shape} and labels {is_match.shape} must align"
        )
    if num_bins < 1:
        raise ConfigurationError(f"num_bins must be >= 1, got {num_bins}")
    if values.size == 0:
        return MatchHistogram(
            boundaries=np.array([]),
            probabilities=np.array([0.5]),
            counts=np.array([0]),
        )
    if binning == "equi-width":
        low, high = 0.0, 1.0
        boundaries = np.linspace(low, high, num_bins + 1)[1:-1]
    elif binning == "equi-depth":
        quantiles = np.linspace(0, 1, num_bins + 1)[1:-1]
        boundaries = np.unique(np.quantile(values, quantiles))
    else:
        raise ConfigurationError(
            f"binning must be 'equi-depth' or 'equi-width', got {binning!r}"
        )
    # side="right" gives [lo, hi) bins, matching Appendix C's h4 = [0.6, 0.8).
    bins = np.searchsorted(boundaries, values, side="right")
    actual_bins = len(boundaries) + 1
    counts = np.bincount(bins, minlength=actual_bins)
    greens = np.bincount(bins, weights=is_match.astype(np.float64), minlength=actual_bins)
    with np.errstate(invalid="ignore", divide="ignore"):
        probabilities = np.where(counts > 0, greens / np.maximum(counts, 1), 0.0)
    probabilities = _fill_empty_bins(probabilities, counts)
    return MatchHistogram(
        boundaries=np.asarray(boundaries), probabilities=probabilities, counts=counts
    )
