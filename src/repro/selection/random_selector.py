"""The Random baseline selector (paper Appendix E.2.1).

Asks one uniformly random uncolored vertex per iteration.  Inference from
the partial order still applies — only the *choice* of question is naive —
so this isolates the value of the paper's boundary-seeking strategies.
"""

from __future__ import annotations

import numpy as np

from ..graph.coloring import ColoringState
from ..graph.dag import OrderedGraph
from .base import QuestionSelector


class RandomSelector(QuestionSelector):
    """Serial baseline: ask a random uncolored vertex each iteration."""

    name = "random"

    def select(
        self, graph: OrderedGraph, state: ColoringState, rng: np.random.Generator
    ) -> list[int]:
        uncolored = state.uncolored()
        return [int(rng.choice(uncolored))]
