"""The topological-sorting selector — the paper's **Power** (§5.3.2, Alg. 4).

Each iteration topologically sorts the uncolored vertices into Kahn level
sets ``L_1 .. L_|L|`` and asks the middle level in one parallel batch.  The
middle is where boundary vertices concentrate: top levels are
high-similarity (likely GREEN, so asking them deduces little downward) and
bottom levels likely RED.  Unlike Multi-Path, the asked vertices are
mutually independent (same level, hence incomparable), so no question can
have made another redundant.

An optional ``layer_position`` knob supports the ablation bench: 0.0 asks
the first layer, 1.0 the last, 0.5 (default) the paper's middle layer.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from ..graph.coloring import ColoringState
from ..graph.dag import OrderedGraph
from ..graph.topo import topological_layers
from .base import QuestionSelector
from .error_tolerant import ErrorPolicy


class TopoSortSelector(QuestionSelector):
    """Parallel selector asking one topological level per iteration."""

    name = "power"

    def __init__(
        self,
        error_policy: ErrorPolicy | None = None,
        seed: int = 0,
        layer_position: float = 0.5,
        incremental: bool = True,
        reachability_bytes: int | None = None,
    ) -> None:
        super().__init__(
            error_policy=error_policy,
            seed=seed,
            incremental=incremental,
            reachability_bytes=reachability_bytes,
        )
        if not 0.0 <= layer_position <= 1.0:
            raise ConfigurationError(
                f"layer_position must be in [0, 1], got {layer_position}"
            )
        self.layer_position = layer_position

    def select(
        self, graph: OrderedGraph, state: ColoringState, rng: np.random.Generator
    ) -> list[int]:
        layers = topological_layers(graph, state.uncolored_mask())
        # ceil(|L| * position) clamped to a valid 1-based level, matching the
        # paper's L_{ceil(|L|/2)} at the default position 0.5.
        level = min(
            len(layers) - 1,
            max(0, int(np.ceil(len(layers) * self.layer_position)) - 1),
        )
        return [int(vertex) for vertex in layers[level]]
