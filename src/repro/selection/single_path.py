"""The SinglePath selector (paper §5.2, Algorithm 3).

Serial strategy with the paper's optimality guarantee: decompose the
uncolored sub-DAG into the minimal number of vertex-disjoint paths (via
maximum bipartite matching — Dilworth/Fulkerson, Theorem 2), then
binary-search the longest path for its GREEN/RED boundary, asking one
mid-vertex at a time (``O(B log |V|)`` questions overall).

Every answer still propagates over the whole graph, so vertices on other
paths are frequently colored for free; the decomposition is recomputed over
whatever remains once the current path is settled.
"""

from __future__ import annotations

import numpy as np

from ..graph.coloring import Color, ColoringState
from ..graph.dag import OrderedGraph
from ..graph.matching import (
    IncrementalPathCover,
    greedy_path_cover,
    minimum_path_cover,
    restricted_adjacency,
)
from .base import QuestionSelector


def cover_paths(
    selector: QuestionSelector, graph: OrderedGraph, active
) -> list[list[int]]:
    """Minimum path cover of the active sub-DAG, in original vertex ids.

    Routes through the selector's warm-started
    :class:`~repro.graph.matching.IncrementalPathCover` when the graph has a
    reachability index (byte-identical to the reference decomposition, just
    without rebuilding the matching from scratch every round); otherwise
    falls back to ``restricted_adjacency`` + ``minimum_path_cover``.
    """
    if selector.incremental and graph.reachability is not None:
        if selector._engine is None or selector._engine.index is not graph.reachability:
            selector._engine = IncrementalPathCover(
                graph.reachability, graph.adjacency()
            )
        return selector._engine.cover(active)
    sub_adjacency, original_ids = restricted_adjacency(graph.adjacency(), active)
    paths = minimum_path_cover(sub_adjacency)
    return [[int(original_ids[v]) for v in path] for path in paths]


class SinglePathSelector(QuestionSelector):
    """Serial selector: binary search on minimal disjoint paths.

    Args:
        cover: ``"matching"`` (default — the paper's maximum-matching
            Dilworth decomposition) or ``"greedy"`` (cheap chain peeling;
            exists for the path-decomposition ablation bench).
    """

    name = "single-path"

    def __init__(
        self,
        error_policy=None,
        seed: int = 0,
        cover: str = "matching",
        incremental: bool = True,
        reachability_bytes: int | None = None,
    ) -> None:
        super().__init__(
            error_policy=error_policy,
            seed=seed,
            incremental=incremental,
            reachability_bytes=reachability_bytes,
        )
        if cover not in ("matching", "greedy"):
            raise ValueError(f"cover must be 'matching' or 'greedy', got {cover!r}")
        self.cover = cover

    def reset(self) -> None:
        self._path: list[int] | None = None
        self._lo = 0
        self._hi = -1
        self._engine: IncrementalPathCover | None = None

    def _selection_stats(self) -> dict | None:
        return dict(self._engine.stats) if self._engine is not None else None

    def _recompute(self, graph: OrderedGraph, state: ColoringState) -> None:
        """Decompose the uncolored sub-DAG and adopt the longest path."""
        active = state.uncolored_mask()
        if self.cover == "matching":
            paths = cover_paths(self, graph, active)
            longest = max(paths, key=len)
            self._path = list(longest)
        else:
            sub_adjacency, original_ids = restricted_adjacency(
                graph.adjacency(), active
            )
            paths = greedy_path_cover(sub_adjacency)
            longest = max(paths, key=len)
            self._path = [int(original_ids[v]) for v in longest]
        self._lo = 0
        self._hi = len(self._path) - 1

    def select(
        self, graph: OrderedGraph, state: ColoringState, rng: np.random.Generator
    ) -> list[int]:
        while True:
            if self._path is None or self._lo > self._hi:
                self._recompute(graph, state)
            # Binary search for the boundary: vertices above it are GREEN,
            # below it RED.  Vertices colored meanwhile (by propagation from
            # other answers) steer the search without costing a question.
            while self._lo <= self._hi:
                mid = (self._lo + self._hi) // 2
                color = state.color_of(self._path[mid])
                if color == Color.UNCOLORED:
                    return [self._path[mid]]
                if color == Color.GREEN:
                    # The boundary lies strictly below the GREEN vertex.
                    self._lo = mid + 1
                elif color == Color.RED:
                    self._hi = mid - 1
                else:  # BLUE: no inference either way; exclude and continue.
                    self._hi = mid - 1
            self._path = None
            # The path is settled; loop to decompose what remains.
