"""Question-selection framework (paper §5).

A :class:`QuestionSelector` decides *which* uncolored vertices to ask next;
the shared :meth:`QuestionSelector.run` loop asks them through a
:class:`~repro.crowd.platform.CrowdSession`, feeds the answers to the
coloring engine, and keeps going until every vertex is colored.  Each call
to :meth:`QuestionSelector.select` is one *iteration* — the paper's latency
unit — and the time spent inside ``select`` is the "assignment time" of
Fig. 30.

Selectors are written against :class:`~repro.graph.dag.OrderedGraph`, so
the same code serves grouped and non-grouped graphs.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..crowd.platform import CrowdSession
from ..data.ground_truth import Pair
from ..exceptions import SelectionError
from ..graph.coloring import ColoringState
from ..graph.dag import OrderedGraph
from ..obs import instrument as obs_instrument
from .error_tolerant import (
    ErrorPolicy,
    resolve_blue_pairs,
    resolve_undecided_vertices,
)


@dataclass
class SelectionResult:
    """Everything an experiment needs from one selector run.

    Attributes:
        name: selector name (``"single-path"``, ``"power"``, ...).
        labels: final match decision per record pair.
        questions: distinct pairs sent to the crowd.
        iterations: crowd round trips (the latency proxy).
        assignment_time: seconds spent choosing questions (Fig. 30 metric).
        state: the final coloring, for inspection (None for baselines that
            do not use the partial-order graph).
        cost_cents: monetary cost under the session's HIT pricing.
    """

    name: str
    labels: dict[Pair, bool]
    questions: int
    iterations: int
    assignment_time: float
    state: ColoringState | None
    cost_cents: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def matches(self) -> set[Pair]:
        """Pairs the run declared to refer to the same entity."""
        return {pair for pair, same in self.labels.items() if same}


class QuestionSelector(ABC):
    """Base class: the ask/color loop shared by every selection strategy.

    Args:
        error_policy: when given, runs in the paper's Power+ mode — answers
            below the confidence threshold color the vertex BLUE (no
            inference), and BLUE pairs are settled by the §6 histogram step
            after the loop.
        seed: seed for tie-breaking randomness (representative pairs,
            random selection).
        incremental: when True (default), ``run`` builds the graph's
            packed-bitset reachability index up front, switching color
            propagation — and, for the path-cover selectors, the per-round
            decomposition — onto the incremental fast paths.  The fast
            paths are byte-identical to the reference (same questions, same
            order, same coloring); False forces the reference paths.
        reachability_bytes: byte budget for the reachability index (None =
            the module default); graphs over budget stay on the reference
            paths even with ``incremental=True``.
    """

    name: str = "selector"

    def __init__(
        self,
        error_policy: ErrorPolicy | None = None,
        seed: int = 0,
        incremental: bool = True,
        reachability_bytes: int | None = None,
    ) -> None:
        self.error_policy = error_policy
        self.seed = seed
        self.incremental = incremental
        self.reachability_bytes = reachability_bytes
        self._propagate_seconds = 0.0

    @abstractmethod
    def select(
        self, graph: OrderedGraph, state: ColoringState, rng: np.random.Generator
    ) -> list[int]:
        """Choose the uncolored vertices to ask in this iteration."""

    def reset(self) -> None:
        """Clear any per-run internal state; called at the top of ``run``."""

    def _selection_stats(self) -> dict | None:
        """Per-run engine counters for telemetry (selector-specific)."""
        return None

    def run(
        self,
        graph: OrderedGraph,
        session: CrowdSession,
        budget: int | None = None,
    ) -> SelectionResult:
        """Color the whole graph, asking the crowd through *session*.

        Args:
            graph: the (grouped) partial-order graph.
            session: the crowd ledger for this run.
            budget: optional cap on questions.  When it runs out before the
                graph is fully colored, the remaining vertices are settled
                with the §6 histogram over whatever was colored so far —
                turning the selector into an anytime algorithm with an
                explicit cost/quality dial.
        """
        if budget is not None and budget < 0:
            raise SelectionError(f"budget must be >= 0, got {budget}")
        obs = obs_instrument.current()
        tracer = obs.tracer
        self.reset()
        self._propagate_seconds = 0.0
        if self.incremental:
            with tracer.span("selection.build_reachability", selector=self.name):
                graph.build_reachability(self.reachability_bytes)
        rng = np.random.default_rng(self.seed)
        state = ColoringState(graph)
        assignment_time = 0.0
        rounds = 0
        guard = 0
        per_round: list[dict] = []
        with tracer.span(
            "selection.run", selector=self.name, vertices=len(graph)
        ) as run_span:
            while not state.is_complete():
                remaining = (
                    None if budget is None else budget - session.questions_asked
                )
                if remaining is not None and remaining <= 0:
                    break
                guard += 1
                if guard > 10 * len(graph) + 10:
                    raise SelectionError(
                        f"{self.name}: no progress after {guard} iterations"
                    )
                with tracer.span("selection.round", round=rounds) as round_span:
                    propagate_before = self._propagate_seconds
                    colored_before = len(state.uncolored())
                    started = time.perf_counter()
                    vertices = self.select(graph, state, rng)
                    cover_seconds = time.perf_counter() - started
                    assignment_time += cover_seconds
                    vertices = [v for v in vertices if state.colors[v] == 0]
                    if not vertices:
                        raise SelectionError(
                            f"{self.name}: selected no uncolored vertices while "
                            f"{len(state.uncolored())} remain"
                        )
                    if remaining is not None:
                        vertices = vertices[:remaining]
                    vertices = obs_instrument.observe_round(
                        obs, self.name, rounds, vertices, cover_seconds
                    )
                    self._ask(graph, state, session, vertices, rng)
                    newly_colored = colored_before - len(state.uncolored())
                    round_span.set_attribute("asked", len(vertices))
                    round_span.set_attribute("colored", newly_colored)
                    per_round.append(
                        {
                            "round": rounds,
                            "asked": len(vertices),
                            "colored": newly_colored,
                            "cover_seconds": cover_seconds,
                            "propagate_seconds": self._propagate_seconds
                            - propagate_before,
                        }
                    )
                rounds += 1
            with tracer.span("selection.settle"):
                labels = state.pair_labels()
                fallback_policy = self.error_policy or ErrorPolicy()
                if self.error_policy is not None:
                    labels.update(
                        resolve_blue_pairs(graph, state, self.error_policy)
                    )
                uncolored = state.uncolored()
                if uncolored.size:
                    labels.update(
                        resolve_undecided_vertices(
                            graph, state, uncolored, fallback_policy
                        )
                    )
            run_span.set_attribute("rounds", rounds)
            run_span.set_attribute("questions", session.questions_asked)
        telemetry = {
            "cover_seconds": assignment_time,
            "propagate_seconds": self._propagate_seconds,
            "rounds": rounds,
            "incremental": self.incremental and graph.reachability is not None,
            "per_round": per_round,
        }
        engine_stats = self._selection_stats()
        if engine_stats is not None:
            telemetry["engine"] = engine_stats
        obs_instrument.record_selection_metrics(obs, self.name, telemetry)
        return SelectionResult(
            name=self.name,
            labels=labels,
            questions=session.questions_asked,
            iterations=session.iterations,
            assignment_time=assignment_time,
            state=state,
            cost_cents=session.cost_cents,
            extras={"selection": telemetry},
        )

    def _ask(
        self,
        graph: OrderedGraph,
        state: ColoringState,
        session: CrowdSession,
        vertices: list[int],
        rng: np.random.Generator,
    ) -> None:
        """Send one batch to the crowd and apply the answers."""
        questions = {
            vertex: graph.representative_pair(vertex, rng) for vertex in vertices
        }
        answers = session.ask_batch(questions.values())
        threshold = (
            self.error_policy.confidence_threshold if self.error_policy else None
        )
        started = time.perf_counter()
        for vertex, pair in questions.items():
            outcome = answers[pair]
            if threshold is not None and outcome.confidence < threshold:
                state.mark_blue(vertex)
            else:
                state.apply_answer(vertex, outcome.answer)
        self._propagate_seconds += time.perf_counter() - started
