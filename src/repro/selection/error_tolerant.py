"""The Power+ error-tolerance layer (paper §6, Algorithm 5).

Two error sources exist: workers answer wrongly, and a wrong answer is then
*amplified* by partial-order inference.  Power+ breaks the amplification:

1. During the loop, an answer with confidence below the threshold (paper:
   0.8) colors its vertex BLUE — accepted as asked, but with no inference to
   ancestors or descendants.  (Handled in ``QuestionSelector._ask``.)
2. After the loop, the confidently-colored GREEN/RED pairs train the Eq. 7
   attribute weights and a match-probability histogram over Eq. 8 weighted
   similarities; every pair living in a BLUE vertex is then colored by its
   bin's probability (GREEN iff > 0.5).

This module implements step 2; :class:`ErrorPolicy` carries the knobs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.ground_truth import Pair
from ..exceptions import ConfigurationError
from ..graph.coloring import Color, ColoringState
from ..graph.dag import OrderedGraph, PairGraph
from .histograms import attribute_weights, build_histogram, weighted_similarities


@dataclass(frozen=True)
class ErrorPolicy:
    """Configuration of the Power+ error-tolerant mode.

    Attributes:
        confidence_threshold: answers below this confidence become BLUE
            (paper default 0.8).
        num_bins: histogram bins for the §6 coloring step (paper: 20).
        binning: ``"equi-depth"`` (§6) or ``"equi-width"`` (Appendix C).
    """

    confidence_threshold: float = 0.8
    num_bins: int = 20
    binning: str = "equi-depth"

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence_threshold <= 1.0:
            raise ConfigurationError(
                f"confidence_threshold must be in [0, 1], got {self.confidence_threshold}"
            )
        if self.num_bins < 1:
            raise ConfigurationError(f"num_bins must be >= 1, got {self.num_bins}")
        if self.binning not in ("equi-depth", "equi-width"):
            raise ConfigurationError(f"unknown binning {self.binning!r}")


def _base_graph(graph: OrderedGraph) -> PairGraph:
    """The pair-level graph underlying *graph* (itself if non-grouped)."""
    base = getattr(graph, "base", graph)
    if not isinstance(base, PairGraph):
        raise ConfigurationError(
            f"cannot find a pair-level graph under {type(graph).__name__}"
        )
    return base


def _member_vertex_indexes(
    graph: OrderedGraph, base: PairGraph, vertices: np.ndarray
) -> list[int]:
    """Base-graph vertex indexes of all pairs living in *vertices*."""
    pair_index = {pair: index for index, pair in enumerate(base.pairs)}
    members: list[int] = []
    for vertex in vertices:
        for pair in graph.member_pairs(int(vertex)):
            members.append(pair_index[pair])
    return members


def resolve_undecided_vertices(
    graph: OrderedGraph,
    state: ColoringState,
    vertices: np.ndarray,
    policy: ErrorPolicy,
) -> dict[Pair, bool]:
    """Color the pairs of *vertices* from the GREEN/RED histogram (§6).

    The vertices are typically BLUE (low-confidence answers), but the same
    machinery settles still-uncolored vertices when a question budget runs
    out before the graph is fully colored.
    """
    if vertices.size == 0:
        return {}
    base = _base_graph(graph)
    green_members = _member_vertex_indexes(graph, base, state.vertices_with(Color.GREEN))
    red_members = _member_vertex_indexes(graph, base, state.vertices_with(Color.RED))
    undecided_members = _member_vertex_indexes(graph, base, vertices)

    weights = attribute_weights(
        base.vectors[green_members], num_attributes=base.num_attributes
    )
    undecided_values = weighted_similarities(base.vectors[undecided_members], weights)
    if not green_members:
        # Without a single GREEN training pair the histogram would label
        # everything RED regardless of similarity (every trained bin is
        # pure-RED and empty bins inherit it).  Fall back to thresholding
        # the weighted similarity — the pure machine-side prior.
        return {
            base.pairs[member]: bool(value > 0.5)
            for member, value in zip(undecided_members, undecided_values)
        }
    trained = green_members + red_members
    training_values = weighted_similarities(base.vectors[trained], weights)
    training_labels = np.array(
        [True] * len(green_members) + [False] * len(red_members)
    )
    histogram = build_histogram(
        training_values, training_labels, num_bins=policy.num_bins, binning=policy.binning
    )
    return {
        base.pairs[member]: histogram.classify(float(value))
        for member, value in zip(undecided_members, undecided_values)
    }


def resolve_blue_pairs(
    graph: OrderedGraph, state: ColoringState, policy: ErrorPolicy
) -> dict[Pair, bool]:
    """Color the pairs of BLUE vertices from the GREEN/RED histogram (§6).

    Returns:
        Match decision per BLUE pair; empty when nothing is BLUE.
    """
    return resolve_undecided_vertices(graph, state, state.blue_vertices(), policy)
