"""The Multi-Path parallel selector (paper §5.3.1, Algorithm 7).

Each iteration decomposes the uncolored sub-DAG into the minimal set of
vertex-disjoint paths and asks the mid-vertex of *every* path in one batch.
Conflicting inferences across paths are resolved by the coloring engine's
majority voting, exactly as §5.3.1 prescribes.
"""

from __future__ import annotations

import numpy as np

from ..graph.coloring import ColoringState
from ..graph.dag import OrderedGraph
from ..graph.matching import IncrementalPathCover
from .base import QuestionSelector
from .single_path import cover_paths


class MultiPathSelector(QuestionSelector):
    """Parallel selector: ask all path mid-vertices per iteration."""

    name = "multi-path"

    def reset(self) -> None:
        self._engine: IncrementalPathCover | None = None

    def _selection_stats(self) -> dict | None:
        return dict(self._engine.stats) if self._engine is not None else None

    def select(
        self, graph: OrderedGraph, state: ColoringState, rng: np.random.Generator
    ) -> list[int]:
        paths = cover_paths(self, graph, state.uncolored_mask())
        mids = {path[len(path) // 2] for path in paths}
        return sorted(mids)
