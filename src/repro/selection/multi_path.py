"""The Multi-Path parallel selector (paper §5.3.1, Algorithm 7).

Each iteration decomposes the uncolored sub-DAG into the minimal set of
vertex-disjoint paths and asks the mid-vertex of *every* path in one batch.
Conflicting inferences across paths are resolved by the coloring engine's
majority voting, exactly as §5.3.1 prescribes.
"""

from __future__ import annotations

import numpy as np

from ..graph.coloring import ColoringState
from ..graph.dag import OrderedGraph
from ..graph.matching import minimum_path_cover, restricted_adjacency
from .base import QuestionSelector


class MultiPathSelector(QuestionSelector):
    """Parallel selector: ask all path mid-vertices per iteration."""

    name = "multi-path"

    def select(
        self, graph: OrderedGraph, state: ColoringState, rng: np.random.Generator
    ) -> list[int]:
        active = state.uncolored_mask()
        sub_adjacency, original_ids = restricted_adjacency(graph.adjacency(), active)
        paths = minimum_path_cover(sub_adjacency)
        mids = {int(original_ids[path[len(path) // 2]]) for path in paths}
        return sorted(mids)
