"""Admission control: bounded queues, token buckets, explicit shedding.

A multi-tenant server has exactly three honest answers to "more work than
capacity": queue it (bounded, or memory dies), slow it down (rate limit),
or refuse it *with a price* — the ``retry_after`` seconds after which the
client should try again.  This module implements all three as plain
objects the server composes per session:

* :class:`TokenBucket` — classic leaky-bucket rate limiter over an
  injectable clock (:class:`~repro.obs.clock.ManualClock` in tests makes
  the refill arithmetic exactly assertable).  ``retry_after`` is the time
  until the bucket holds one full token again.
* :class:`AdmissionController` — the per-session gate the server consults
  before enqueueing an ingest: draining beats rate beats queue depth, and
  every refusal is an :class:`~repro.exceptions.OverloadedError` carrying
  the ``retry_after`` the protocol surfaces verbatim.  Queue-depth
  refusals price the wait from an exponentially-weighted average of
  recent batch times, so the hint tracks the actual service rate instead
  of a constant.

Shedding is load *control*, not failure: a shed request was never
enqueued, touched no session state, and cost no crowd money — the
invariants the admission tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import ConfigurationError, OverloadedError
from ..obs.clock import MonotonicClock

#: Fallback per-item service-time estimate before any batch has finished.
DEFAULT_BATCH_SECONDS = 0.1

#: retry_after handed out while the server is draining for shutdown.
DRAIN_RETRY_AFTER = 5.0


@dataclass
class TokenBucket:
    """A token-bucket rate limiter: ``rate`` tokens/second, ``burst`` cap.

    ``rate <= 0`` disables limiting (every :meth:`admit` succeeds).  The
    bucket starts full, so a client gets its burst immediately and is then
    throttled to the sustained rate.
    """

    rate: float
    burst: float = 1.0
    clock: object = field(default_factory=MonotonicClock)

    def __post_init__(self) -> None:
        if self.rate > 0 and self.burst < 1:
            raise ConfigurationError(
                f"burst must be >= 1 when rate limiting, got {self.burst}"
            )
        self._tokens = float(self.burst)
        self._last = self.clock.wall()

    def _refill(self) -> None:
        now = self.clock.wall()
        self._tokens = min(
            float(self.burst), self._tokens + (now - self._last) * self.rate
        )
        self._last = now

    def admit(self) -> bool:
        """Take one token if available; False means rate-limited."""
        if self.rate <= 0:
            return True
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until the bucket holds one full token again."""
        if self.rate <= 0:
            return 0.0
        self._refill()
        deficit = max(0.0, 1.0 - self._tokens)
        return deficit / self.rate


class AdmissionController:
    """One session's gate: drain flag, token bucket, queue depth.

    Args:
        rate: sustained ingests/second (``0`` disables rate limiting).
        burst: bucket capacity (instantaneous ingest burst).
        queue_depth: maximum ingests waiting in the session's queue; the
            actor works one at a time, so total in-flight per session is
            ``queue_depth + 1``.
        clock: injectable time source for the bucket.
        initial_batch_seconds: seed for the service-time EWMA — a
            calibrated prediction from the cost planner when available
            (:func:`repro.plan.hooks.predicted_batch_seconds`), so the
            very first queue-full refusal is priced from measured host
            speed instead of the blind :data:`DEFAULT_BATCH_SECONDS`.
            ``None`` keeps the static default.
    """

    def __init__(
        self,
        rate: float = 0.0,
        burst: float = 4.0,
        queue_depth: int = 4,
        clock=None,
        initial_batch_seconds: float | None = None,
    ) -> None:
        if queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {queue_depth}"
            )
        if initial_batch_seconds is not None and initial_batch_seconds <= 0:
            raise ConfigurationError(
                "initial_batch_seconds must be positive or None, "
                f"got {initial_batch_seconds}"
            )
        self.queue_depth = queue_depth
        self.bucket = TokenBucket(
            rate=rate, burst=burst, clock=clock or MonotonicClock()
        )
        self._batch_seconds_ewma = (
            DEFAULT_BATCH_SECONDS
            if initial_batch_seconds is None
            else initial_batch_seconds
        )

    def observe_batch_seconds(self, seconds: float) -> None:
        """Fold one finished batch's wall time into the service estimate."""
        self._batch_seconds_ewma = (
            0.7 * self._batch_seconds_ewma + 0.3 * max(0.0, seconds)
        )

    @property
    def batch_seconds_estimate(self) -> float:
        return self._batch_seconds_ewma

    def admit(self, queued: int, draining: bool = False) -> None:
        """Admit one ingest or raise :class:`OverloadedError` with a price.

        Args:
            queued: the session queue's current length.
            draining: the server-wide shutdown flag; wins over everything.
        """
        if draining:
            raise OverloadedError(
                "server is draining for shutdown; retry against the "
                "restarted server",
                retry_after=DRAIN_RETRY_AFTER,
            )
        if queued >= self.queue_depth:
            # Price the wait: the whole queue plus the in-flight item must
            # clear before a retry can even be enqueued.
            wait = (queued + 1) * self._batch_seconds_ewma
            raise OverloadedError(
                f"session queue is full ({queued}/{self.queue_depth})",
                retry_after=max(0.05, wait),
            )
        if not self.bucket.admit():
            raise OverloadedError(
                "session rate limit exceeded",
                retry_after=max(0.01, self.bucket.retry_after()),
            )


__all__ = [
    "DEFAULT_BATCH_SECONDS",
    "DRAIN_RETRY_AFTER",
    "AdmissionController",
    "TokenBucket",
]
