"""Session registry: many durable tenants, bounded resident memory.

Each tenant session is one :class:`~repro.stream.StreamingResolver` owned
by a **single-writer actor** — an asyncio task that drains the session's
work queue one item at a time, so per-session operations execute in
exactly the order they were admitted no matter how many connections
submit them.  CPU-heavy batch work runs off the event loop in a shared
thread pool (and, above ``shard_threshold``, fans out further through the
shard process executor — the resolver's own routing); the loop itself
only ever schedules, admits, and sheds.

Resident memory is bounded by LRU eviction: when more than
``max_resident`` sessions are live, the least-recently-touched idle one
is drained, checkpointed to its PR-8 snapshot directory, and dropped from
memory.  The next touch transparently restores it with
:meth:`StreamingResolver.restore` — bit-identically, by the snapshot
contract — so the set of *sessions* is effectively unbounded while the
set of *resolvers in memory* never exceeds the cap.  The
``check_serve_equivalence`` battery step certifies the whole cycle:
ingesting through the registry (evictions included) must reach the same
``state_sha`` as driving a :class:`StreamingResolver` directly.

Deadlock discipline: an operation holds only its own session's lock; the
evictor skips victims whose lock is held (they are mid-touch and
therefore MRU anyway), so no task ever waits on two locks.
"""

from __future__ import annotations

import asyncio
import re
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..core.config import PowerConfig
from ..exceptions import ProtocolError, ServeError
from ..obs import instrument as obs_instrument
from ..stream.service import StreamingResolver, _decode_config
from ..stream.snapshot import SnapshotStore
from .admission import AdmissionController

_SESSION_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Actor shutdown sentinel (queued after the last real work item).
_STOP = object()


@dataclass
class SessionSpec:
    """Everything needed to build a fresh session's resolver."""

    attributes: tuple[str, ...]
    config: PowerConfig = field(default_factory=PowerConfig)
    worker_band: str | tuple[float, float] = "90"
    shard_threshold: int | None = None
    shard_workers: int = 0
    pairs_per_hit: int = 10
    cents_per_hit: int = 10
    index_mode: str = "extend"

    @classmethod
    def from_request(cls, request: dict[str, Any]) -> "SessionSpec":
        """Decode a ``create_session`` request's optional fields."""
        config = request.get("config")
        band = request.get("worker_band", "90")
        if isinstance(band, list):
            band = tuple(band)
        return cls(
            attributes=tuple(str(a) for a in request["attributes"]),
            config=_decode_config(config) if config else PowerConfig(),
            worker_band=band,
            shard_threshold=request.get("shard_threshold"),
            shard_workers=int(request.get("shard_workers", 0)),
            pairs_per_hit=int(request.get("pairs_per_hit", 10)),
            cents_per_hit=int(request.get("cents_per_hit", 10)),
            index_mode=str(request.get("index_mode", "extend")),
        )


@dataclass
class _WorkItem:
    kind: str
    payload: dict[str, Any]
    future: asyncio.Future


@dataclass
class _Live:
    """One resident session: resolver + queue + actor + admission gate."""

    name: str
    resolver: StreamingResolver
    queue: asyncio.Queue
    admission: AdmissionController
    task: asyncio.Task | None = None


class SessionRegistry:
    """The server's session table: create, route, evict, restore, drain.

    Args:
        checkpoint_root: directory holding one snapshot subdirectory per
            session (the eviction/restore store and the drain target).
        max_resident: LRU cap on concurrently in-memory resolvers.
        rate / burst / queue_depth: per-session admission knobs
            (see :class:`~repro.serve.admission.AdmissionController`).
        crowd_latency: simulated crowd round-trip seconds awaited per
            ingested batch (models the human-latency regime real
            crowdsourced ER serves under; ``0`` disables — results are
            identical either way, only timing changes).
        executor_workers: thread-pool size for off-loop batch work.
        obs: observability handle for ``repro_serve_*`` session metrics
            (defaults to the process-wide handle at call time).
        batch_seconds_seed: initial service-time estimate for every
            session's admission EWMA (``None`` = the static default; the
            server passes the cost planner's calibrated prediction when a
            host profile exists).
    """

    def __init__(
        self,
        checkpoint_root: str | Path,
        max_resident: int = 8,
        rate: float = 0.0,
        burst: float = 4.0,
        queue_depth: int = 4,
        crowd_latency: float = 0.0,
        executor_workers: int = 4,
        obs=None,
        batch_seconds_seed: float | None = None,
    ) -> None:
        if max_resident < 1:
            raise ServeError(f"max_resident must be >= 1, got {max_resident}")
        self.checkpoint_root = Path(checkpoint_root)
        self.checkpoint_root.mkdir(parents=True, exist_ok=True)
        self.max_resident = max_resident
        self._admission_knobs = (rate, burst, queue_depth)
        self._batch_seconds_seed = batch_seconds_seed
        self.crowd_latency = crowd_latency
        self._pool = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="serve-batch"
        )
        self._obs = obs
        self._live: OrderedDict[str, _Live] = OrderedDict()
        self._locks: dict[str, asyncio.Lock] = {}
        self.sessions_opened = 0
        self.evictions = 0
        self.restores = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def resident(self) -> int:
        return len(self._live)

    def resident_names(self) -> list[str]:
        return list(self._live)

    def known_sessions(self) -> list[str]:
        """Every session resident or restorable from the checkpoint root."""
        names = set(self._live)
        if self.checkpoint_root.exists():
            for child in self.checkpoint_root.iterdir():
                if (child / "MANIFEST.jsonl").exists():
                    names.add(child.name)
        return sorted(names)

    def session_dir(self, name: str) -> Path:
        if not _SESSION_NAME.match(name or ""):
            raise ProtocolError(
                "bad_session",
                f"session name {name!r} must match {_SESSION_NAME.pattern}",
            )
        return self.checkpoint_root / name

    def _lock(self, name: str) -> asyncio.Lock:
        return self._locks.setdefault(name, asyncio.Lock())

    def _record_gauges(self) -> None:
        obs = self._obs or obs_instrument.current()
        obs_instrument.record_serve_sessions(
            obs, resident=self.resident, known=len(self.known_sessions())
        )

    def _record_event(self, event: str) -> None:
        obs = self._obs or obs_instrument.current()
        obs_instrument.record_serve_event(obs, event)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def create(self, name: str, spec: SessionSpec) -> dict[str, Any]:
        """Create (or attach to) a session; returns its status summary."""
        directory = self.session_dir(name)
        async with self._lock(name):
            live = self._live.get(name)
            created = False
            if live is None:
                if SnapshotStore(directory).exists():
                    live = await self._restore(name)
                else:
                    resolver = StreamingResolver(
                        spec.attributes,
                        config=spec.config,
                        name=name,
                        checkpoint_dir=directory,
                        worker_band=spec.worker_band,
                        shard_threshold=spec.shard_threshold,
                        shard_workers=spec.shard_workers,
                        pairs_per_hit=spec.pairs_per_hit,
                        cents_per_hit=spec.cents_per_hit,
                        index_mode=spec.index_mode,
                    )
                    live = self._adopt(name, resolver)
                    self.sessions_opened += 1
                    created = True
            else:
                self._live.move_to_end(name)
            resolver = live.resolver
            if tuple(resolver.table.attributes) != tuple(spec.attributes):
                raise ProtocolError(
                    "bad_request",
                    f"session {name!r} has schema "
                    f"{list(resolver.table.attributes)}, request says "
                    f"{list(spec.attributes)}",
                )
        await self._enforce_residency(keep=name)
        self._record_gauges()
        return {
            "session": name,
            "created": created,
            "batches": resolver.batches,
            "records": len(resolver.table),
        }

    async def submit(
        self, name: str, kind: str, payload: dict[str, Any], draining: bool = False
    ) -> Any:
        """Admit one work item onto *name*'s actor and await its result.

        ``ingest`` passes through admission control (queue depth, rate,
        drain flag) and can raise :class:`OverloadedError`; the cheap read
        ops are always admitted so health stays observable under load.
        """
        async with self._lock(name):
            live = await self._touch(name)
            if kind == "ingest":
                live.admission.admit(live.queue.qsize(), draining=draining)
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            live.queue.put_nowait(_WorkItem(kind, payload, future))
        await self._enforce_residency(keep=name)
        return await future

    async def close(self, name: str) -> dict[str, Any]:
        """Drain, final-checkpoint, and forget *name* (snapshot remains)."""
        async with self._lock(name):
            live = self._live.pop(name, None)
            if live is None:
                # Not resident: the on-disk snapshot *is* the final state.
                store = SnapshotStore(self.session_dir(name))
                if not store.exists():
                    raise ProtocolError(
                        "unknown_session", f"no session named {name!r}"
                    )
                from ..stream.snapshot import load_snapshot

                _, checkpoint = load_snapshot(store)
                return {
                    "session": name,
                    "batch": checkpoint["batch"],
                    "state_sha": checkpoint["state_sha"],
                }
            record = await self._retire(live)
        self._record_gauges()
        return {
            "session": name,
            "batch": record["batch"],
            "state_sha": record["state_sha"],
        }

    async def drain_all(self) -> list[dict[str, Any]]:
        """Checkpoint and retire every live session (SIGTERM path)."""
        drained = []
        for name in list(self._live):
            async with self._lock(name):
                live = self._live.pop(name, None)
                if live is None:
                    continue
                record = await self._retire(live)
            self._record_event("drain_checkpoints")
            drained.append(
                {
                    "session": name,
                    "batch": record["batch"],
                    "state_sha": record["state_sha"],
                }
            )
        self._record_gauges()
        return drained

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    # Residency management
    # ------------------------------------------------------------------ #

    def _adopt(self, name: str, resolver: StreamingResolver) -> _Live:
        rate, burst, queue_depth = self._admission_knobs
        live = _Live(
            name=name,
            resolver=resolver,
            queue=asyncio.Queue(),
            admission=AdmissionController(
                rate=rate,
                burst=burst,
                queue_depth=queue_depth,
                initial_batch_seconds=self._batch_seconds_seed,
            ),
        )
        live.task = asyncio.get_running_loop().create_task(self._actor(live))
        self._live[name] = live
        self._live.move_to_end(name)
        return live

    async def _touch(self, name: str) -> _Live:
        """The resident session, restoring it from its snapshot if needed."""
        live = self._live.get(name)
        if live is not None:
            self._live.move_to_end(name)
            return live
        return await self._restore(name)

    async def _restore(self, name: str) -> _Live:
        directory = self.session_dir(name)
        if not SnapshotStore(directory).exists():
            raise ProtocolError("unknown_session", f"no session named {name!r}")
        resolver = await asyncio.get_running_loop().run_in_executor(
            self._pool, self._restore_resolver, name
        )
        self.restores += 1
        self._record_event("restores")
        return self._adopt(name, resolver)

    def _restore_resolver(self, name: str) -> StreamingResolver:
        """Rebuild one session's resolver from its last complete snapshot.

        The seam the ``serve-cross-session-leak`` mutant attacks: handing
        back any resolver other than the one decoded from *this* session's
        snapshot store silently cross-wires tenants.
        """
        return StreamingResolver.restore(self.session_dir(name))

    async def _enforce_residency(self, keep: str) -> None:
        """Evict LRU sessions until at most ``max_resident`` are live.

        Skips *keep* (the session just touched) and any session whose lock
        is currently held (mid-touch — and therefore about to be MRU);
        holding only one lock at a time keeps the registry deadlock-free.
        """
        while len(self._live) > self.max_resident:
            victim = next(
                (
                    name
                    for name in self._live
                    if name != keep and not self._lock(name).locked()
                ),
                None,
            )
            if victim is None:
                return
            async with self._lock(victim):
                live = self._live.pop(victim, None)
                if live is None:
                    continue
                await self._retire(live)
            self.evictions += 1
            self._record_event("evictions")
            self._record_gauges()

    async def _retire(self, live: _Live) -> dict[str, Any]:
        """Stop a session's actor after its queue drains, then checkpoint.

        Queued work is *paid-for* work in flight; eviction and drain both
        complete it before snapshotting, so no admitted batch (and no
        crowd answer it bought) is ever lost to memory management.
        """
        live.queue.put_nowait(_STOP)
        await live.task
        return await asyncio.get_running_loop().run_in_executor(
            self._pool, live.resolver.checkpoint
        )

    # ------------------------------------------------------------------ #
    # The single-writer actor
    # ------------------------------------------------------------------ #

    async def _actor(self, live: _Live) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await live.queue.get()
            try:
                if item is _STOP:
                    return
                started = time.perf_counter()
                try:
                    result = await self._execute(loop, live, item)
                except Exception as error:  # noqa: BLE001 - forwarded to caller
                    if not item.future.done():
                        item.future.set_exception(error)
                else:
                    if item.kind == "ingest":
                        live.admission.observe_batch_seconds(
                            time.perf_counter() - started
                        )
                        if self.crowd_latency > 0:
                            # The simulated crowd round trip: wall time only,
                            # never state (the answers are already folded in).
                            await asyncio.sleep(self.crowd_latency)
                    if not item.future.done():
                        item.future.set_result(result)
            finally:
                live.queue.task_done()

    async def _execute(self, loop, live: _Live, item: _WorkItem) -> Any:
        resolver = live.resolver
        if item.kind == "ingest":
            rows = [tuple(str(v) for v in row) for row in item.payload["rows"]]
            entity_ids = item.payload.get("entity_ids")
            report = await loop.run_in_executor(
                self._pool,
                lambda: resolver.add_batch(rows, entity_ids=entity_ids),
            )
            return {
                key: report[key]
                for key in (
                    "batch",
                    "new_records",
                    "new_pairs",
                    "questions",
                    "iterations",
                    "clusters",
                    "batch_token",
                )
            }
        if item.kind == "query_clusters":
            return {
                "clusters": resolver.clusters(),
                "records": len(resolver.table),
                "batches": resolver.batches,
                "questions": resolver.total_questions,
                "cost_cents": resolver.cost_cents,
            }
        if item.kind == "checkpoint":
            record = await loop.run_in_executor(self._pool, resolver.checkpoint)
            return {
                "batch": record["batch"],
                "records": record["records"],
                "questions": record["questions"],
                "cost_cents": record["cost_cents"],
                "state_sha": record["state_sha"],
            }
        raise ServeError(f"unknown work kind {item.kind!r}")


__all__ = ["SessionRegistry", "SessionSpec"]
