"""The asyncio resolution server: protocol edge, dispatch, drain.

Two layers, separable on purpose:

* :class:`ServeApp` — the transport-free core.  ``dispatch`` takes one
  decoded request dict and returns one response dict, routing session ops
  through the :class:`~repro.serve.sessions.SessionRegistry` and serving
  ``healthz``/``metrics`` from its own :class:`~repro.obs.Observability`
  handle (``repro_serve_*`` families via ``to_prometheus``).  Tests and
  the verification battery drive this layer directly — and through real
  sockets — interchangeably, because it is the only place decisions are
  made.
* :class:`ResolutionServer` — the TCP front end.  One JSON line in, one
  out; each request line is handled in its own task with responses
  serialized by a per-connection write lock, so a connection can pipeline
  many in-flight requests (the ``id`` echo pairs them back up).  The same
  listener answers plain HTTP ``GET /healthz`` and ``GET /metrics`` so a
  scraper needs no protocol client.

Graceful drain (SIGTERM/SIGINT): flip the draining flag — admission now
sheds new work with an explicit ``retry_after`` — let every session's
queue run dry, checkpoint each one to the snapshot store, and only then
stop.  Queued batches are paid-for crowd answers; the drain contract is
that none of them is ever lost to a shutdown.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path
from typing import Any

from ..exceptions import OverloadedError, PowerError, ProtocolError
from ..obs import instrument as obs_instrument
from ..obs.export import to_prometheus
from ..obs.instrument import Observability
from .admission import DRAIN_RETRY_AFTER
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    decode_request,
    encode,
    error_response,
    ok_response,
)
from .sessions import SessionRegistry, SessionSpec

#: Batch-row count the planner prices when seeding the admission EWMA —
#: the typical client ingest batch (the smokes and bench use 200).
PLAN_SEED_BATCH_ROWS = 200


class ServeApp:
    """The transport-free server core: one request dict in, one out.

    Args:
        checkpoint_root: per-session snapshot directory root.
        max_sessions: LRU cap on resident resolvers.
        rate / burst / queue_depth: per-session admission knobs.
        crowd_latency: simulated crowd round-trip seconds per ingest.
        obs: observability handle; defaults to a metrics-only private
            handle so hosting the app never globally installs anything
            (the CLI activates a process-wide handle separately).
        batch_seconds_seed: initial admission EWMA estimate per session;
            ``None`` (default) asks the cost planner for a calibrated
            prediction when a host profile exists and otherwise keeps
            the static default.  Only refusal pricing moves — results
            are identical either way.
    """

    def __init__(
        self,
        checkpoint_root: str | Path,
        max_sessions: int = 8,
        rate: float = 0.0,
        burst: float = 4.0,
        queue_depth: int = 4,
        crowd_latency: float = 0.0,
        obs: Observability | None = None,
        batch_seconds_seed: float | None = None,
    ) -> None:
        if batch_seconds_seed is None:
            from ..plan import hooks as plan_hooks

            batch_seconds_seed = plan_hooks.predicted_batch_seconds(
                PLAN_SEED_BATCH_ROWS
            )
        self.obs = obs or Observability(tracing=False, metrics=True)
        self.registry = SessionRegistry(
            checkpoint_root,
            max_resident=max_sessions,
            rate=rate,
            burst=burst,
            queue_depth=queue_depth,
            crowd_latency=crowd_latency,
            obs=self.obs,
            batch_seconds_seed=batch_seconds_seed,
        )
        self.draining = False
        self.started_monotonic = time.monotonic()
        # Seed the session gauges so /metrics is non-empty from request one.
        self.registry._record_gauges()

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #

    async def handle_line(self, line: bytes | str) -> dict[str, Any]:
        """Decode one wire line and dispatch it; never raises."""
        try:
            request = decode_request(line)
        except ProtocolError as error:
            # Undecodable requests still count: op is unknown by definition.
            obs_instrument.record_serve_request(
                self.obs, "invalid", 0.0, "error"
            )
            request_id = None
            try:
                parsed = json.loads(
                    line.decode("utf-8", "replace")
                    if isinstance(line, bytes)
                    else line
                )
                if isinstance(parsed, dict):
                    request_id = parsed.get("id")
            except (ValueError, TypeError):
                pass
            return error_response(request_id, error.code, str(error))
        return await self.dispatch(request)

    async def dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        """Route one validated request; always returns a response dict."""
        op = request["op"]
        request_id = request.get("id")
        started = time.perf_counter()
        status = "ok"
        with self.obs.tracer.span("serve.request", op=op):
            try:
                result = await self._handle(op, request)
                response = ok_response(request_id, **result)
            except OverloadedError as error:
                status = "shed"
                response = error_response(
                    request_id,
                    "overloaded",
                    str(error),
                    retry_after=error.retry_after,
                )
            except ProtocolError as error:
                status = "error"
                response = error_response(request_id, error.code, str(error))
            except PowerError as error:
                status = "error"
                response = error_response(request_id, "error", str(error))
        obs_instrument.record_serve_request(
            self.obs, op, time.perf_counter() - started, status
        )
        return response

    async def _handle(self, op: str, request: dict[str, Any]) -> dict[str, Any]:
        if op == "healthz":
            return self.healthz()
        if op == "metrics":
            return {"metrics": to_prometheus(self.obs.registry)}
        if self.draining:
            # Session state is being checkpointed for shutdown; every
            # session op is refused with the drain price, not queued.
            raise OverloadedError(
                "server is draining for shutdown",
                retry_after=DRAIN_RETRY_AFTER,
            )
        session = request["session"]
        if op == "create_session":
            return await self.registry.create(
                session, SessionSpec.from_request(request)
            )
        if op == "ingest":
            return await self.registry.submit(
                session,
                "ingest",
                {
                    "rows": request["rows"],
                    "entity_ids": request.get("entity_ids"),
                },
                draining=self.draining,
            )
        if op == "query_clusters":
            return await self.registry.submit(session, "query_clusters", {})
        if op == "checkpoint":
            return await self.registry.submit(session, "checkpoint", {})
        if op == "close":
            return await self.registry.close(session)
        raise ProtocolError("unknown_op", f"unknown op {op!r}")

    def healthz(self) -> dict[str, Any]:
        return {
            "status": "draining" if self.draining else "ok",
            "protocol": PROTOCOL_VERSION,
            "resident": self.registry.resident,
            "known_sessions": len(self.registry.known_sessions()),
            "uptime_seconds": round(
                time.monotonic() - self.started_monotonic, 3
            ),
        }

    async def drain(self) -> list[dict[str, Any]]:
        """Shed new work, finish queued work, checkpoint every session."""
        self.draining = True
        drained = await self.registry.drain_all()
        self.registry.shutdown()
        return drained


class ResolutionServer:
    """TCP front end for a :class:`ServeApp`: JSON lines plus HTTP probes."""

    def __init__(
        self, app: ServeApp, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def __aenter__(self) -> "ResolutionServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ConnectionResetError,
                    asyncio.IncompleteReadError,
                ):
                    break
                if not line:
                    break
                stripped = line.strip()
                if not stripped:
                    continue
                if stripped.startswith(b"GET ") or stripped.startswith(b"HEAD "):
                    await self._answer_http(stripped, reader, writer)
                    return
                # Pipelining: every request line gets its own task; the
                # write lock keeps response lines whole, the id echo lets
                # the client pair them back up out of order.
                task = asyncio.get_running_loop().create_task(
                    self._serve_line(line, writer, write_lock)
                )
                pending.add(task)
                task.add_done_callback(pending.discard)
        finally:
            # A disconnect must never abandon admitted work: the session
            # actors finish regardless, we only stop writing responses.
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            # close() is fire-and-forget on purpose: awaiting wait_closed()
            # here can outlive the event loop at shutdown.
            writer.close()

    async def _serve_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        response = await self.app.handle_line(line)
        async with write_lock:
            if writer.is_closing():
                return
            try:
                writer.write(encode(response))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _answer_http(
        self,
        request_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Minimal HTTP/1.0 for scrapers: /healthz and /metrics only."""
        try:
            while True:
                header = await reader.readline()
                if not header or header in (b"\r\n", b"\n"):
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        parts = request_line.split()
        path = parts[1].decode("latin-1") if len(parts) >= 2 else "/"
        if path == "/healthz":
            payload = self.app.healthz()
            status = "200 OK" if payload["status"] == "ok" else "503 Service Unavailable"
            body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
            content_type = "application/json"
        elif path == "/metrics":
            body = to_prometheus(self.app.obs.registry).encode("utf-8")
            status = "200 OK"
            content_type = "text/plain; version=0.0.4"
        else:
            body = b"only /healthz and /metrics are served over HTTP\n"
            status = "404 Not Found"
            content_type = "text/plain"
        writer.write(
            (
                f"HTTP/1.0 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
            + body
        )
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        writer.close()


async def run_server(
    app: ServeApp,
    host: str = "127.0.0.1",
    port: int = 0,
    shutdown: asyncio.Event | None = None,
    ready: "asyncio.Future | None" = None,
) -> list[dict[str, Any]]:
    """Serve until *shutdown* is set, then drain; returns drain records.

    The caller owns signal wiring (the CLI maps SIGTERM/SIGINT onto the
    event); tests set the event directly.
    """
    server = ResolutionServer(app, host=host, port=port)
    await server.start()
    if ready is not None and not ready.done():
        ready.set_result(server.port)
    event = shutdown or asyncio.Event()
    try:
        await event.wait()
        return await app.drain()
    finally:
        await server.stop()


__all__ = ["ResolutionServer", "ServeApp", "run_server"]
