"""Serve-protocol clients: async (pipelining) and sync (simple).

:class:`AsyncServeClient` multiplexes one connection: a background reader
task pairs response lines back to in-flight requests by the ``id`` echo,
so a load generator can keep many ingests outstanding — which is exactly
how the throughput benchmark pressures admission control.
:class:`ServeClient` is the blocking convenience wrapper the CLI and
scripts use: one socket, one request at a time.

Both speak the versioned protocol from :mod:`repro.serve.protocol` and
re-raise server refusals as typed exceptions —
:class:`~repro.exceptions.OverloadedError` (with the server's
``retry_after``) for load sheds, :class:`~repro.exceptions.ServeError`
for everything else — so callers branch on types, not string codes.
"""

from __future__ import annotations

import asyncio
import socket
import time
from typing import Any

from ..exceptions import OverloadedError, ProtocolError, ServeError
from .protocol import decode_response, encode


def _raise_for(response: dict[str, Any]) -> dict[str, Any]:
    """A success response's payload, or the typed refusal it encodes."""
    if response.get("ok"):
        return response
    code = response.get("error", "error")
    message = response.get("message", "server error")
    if code == "overloaded":
        raise OverloadedError(
            message, retry_after=float(response.get("retry_after", 0.05))
        )
    raise ServeError(f"{code}: {message}")


class AsyncServeClient:
    """One multiplexed connection to a resolution server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._next_id = 0
        self._inflight: dict[int, asyncio.Future] = {}
        self._reader_task: asyncio.Task | None = None
        self._write_lock = asyncio.Lock()

    async def connect(self) -> "AsyncServeClient":
        from .protocol import MAX_LINE_BYTES

        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_LINE_BYTES
        )
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )
        return self

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        for future in self._inflight.values():
            if not future.done():
                future.set_exception(ServeError("connection closed"))
        self._inflight.clear()

    async def __aenter__(self) -> "AsyncServeClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def _read_loop(self) -> None:
        assert self._reader is not None
        while True:
            line = await self._reader.readline()
            if not line:
                break
            try:
                response = decode_response(line)
            except ProtocolError:
                continue
            future = self._inflight.pop(response.get("id"), None)
            if future is not None and not future.done():
                future.set_result(response)
        for future in self._inflight.values():
            if not future.done():
                future.set_exception(ServeError("server closed the connection"))
        self._inflight.clear()

    async def request(self, op: str, **fields: Any) -> dict[str, Any]:
        """Send one request and await its raw response (no raising)."""
        from .protocol import PROTOCOL_VERSION

        if self._writer is None:
            raise ServeError("client is not connected")
        self._next_id += 1
        request_id = self._next_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[request_id] = future
        message = {"v": PROTOCOL_VERSION, "id": request_id, "op": op, **fields}
        async with self._write_lock:
            self._writer.write(encode(message))
            await self._writer.drain()
        return await future

    async def call(self, op: str, **fields: Any) -> dict[str, Any]:
        """Send one request; raise typed errors on refusal."""
        return _raise_for(await self.request(op, **fields))

    # Convenience verbs ------------------------------------------------- #

    async def create_session(
        self, session: str, attributes: list[str], **fields: Any
    ) -> dict[str, Any]:
        return await self.call(
            "create_session",
            session=session,
            attributes=list(attributes),
            **fields,
        )

    async def ingest(
        self,
        session: str,
        rows: list[list[str]],
        entity_ids: list[int] | None = None,
    ) -> dict[str, Any]:
        fields: dict[str, Any] = {"session": session, "rows": rows}
        if entity_ids is not None:
            fields["entity_ids"] = list(entity_ids)
        return await self.call("ingest", **fields)

    async def ingest_with_retry(
        self,
        session: str,
        rows: list[list[str]],
        entity_ids: list[int] | None = None,
        max_attempts: int = 50,
    ) -> dict[str, Any]:
        """Ingest, honoring ``retry_after`` backpressure until admitted."""
        for _ in range(max_attempts):
            try:
                return await self.ingest(session, rows, entity_ids)
            except OverloadedError as error:
                await asyncio.sleep(max(0.01, error.retry_after))
        raise OverloadedError(
            f"still shed after {max_attempts} attempts", retry_after=1.0
        )

    async def query_clusters(self, session: str) -> dict[str, Any]:
        return await self.call("query_clusters", session=session)

    async def checkpoint(self, session: str) -> dict[str, Any]:
        return await self.call("checkpoint", session=session)

    async def close_session(self, session: str) -> dict[str, Any]:
        return await self.call("close", session=session)

    async def healthz(self) -> dict[str, Any]:
        return await self.call("healthz")

    async def metrics(self) -> str:
        return (await self.call("metrics"))["metrics"]


class ServeClient:
    """Blocking client: one socket, one request in flight at a time."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout: float = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._file = None
        self._next_id = 0

    def connect(self, retries: int = 50, delay: float = 0.1) -> "ServeClient":
        """Connect, retrying briefly (the spawned-server startup window)."""
        last_error: Exception | None = None
        for _ in range(max(1, retries)):
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
                self._file = self._sock.makefile("rwb")
                return self
            except OSError as error:
                last_error = error
                time.sleep(delay)
        raise ServeError(
            f"cannot connect to {self.host}:{self.port}: {last_error}"
        )

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, op: str, **fields: Any) -> dict[str, Any]:
        from .protocol import PROTOCOL_VERSION

        if self._file is None:
            raise ServeError("client is not connected")
        self._next_id += 1
        message = {
            "v": PROTOCOL_VERSION,
            "id": self._next_id,
            "op": op,
            **fields,
        }
        self._file.write(encode(message))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServeError("server closed the connection")
        return decode_response(line)

    def call(self, op: str, **fields: Any) -> dict[str, Any]:
        return _raise_for(self.request(op, **fields))


__all__ = ["AsyncServeClient", "ServeClient"]
