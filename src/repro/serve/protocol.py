"""The serve wire protocol: versioned JSON lines, both directions.

One request per line, one response per line, UTF-8 JSON with a trailing
newline.  Every message carries the schema version under ``"v"``; a
request speaking a version this build does not is rejected with a clear
error — the same discipline the snapshot manifest enforces
(:mod:`repro.stream.snapshot` refuses unknown ``version`` records instead
of misreading a future layout).  Responses echo the request's ``"id"``
verbatim, which is what lets one connection pipeline many in-flight
requests and still match answers to questions.

Request shape::

    {"v": 1, "id": 7, "op": "ingest", "session": "tenant-a",
     "rows": [["moe's", "nyc", "bbq"], ...], "entity_ids": [3, ...]}

Response shape::

    {"v": 1, "id": 7, "ok": true, ...op-specific fields}
    {"v": 1, "id": 7, "ok": false, "error": "overloaded",
     "message": "...", "retry_after": 0.25}

The op vocabulary is closed (:data:`OPS`); validation happens here, at the
edge, so the session actors behind the protocol only ever see well-formed
requests.  ``retry_after`` is present exactly when ``error`` is
``"overloaded"`` — the admission controller's explicit backpressure signal,
as opposed to silently queueing without bound.
"""

from __future__ import annotations

import json
from typing import Any

from ..exceptions import ProtocolError

#: Bump when the request/response schema changes incompatibly.
PROTOCOL_VERSION = 1

#: Upper bound on one protocol line (requests carry whole record batches).
MAX_LINE_BYTES = 8 * 1024 * 1024

#: The closed op vocabulary and each op's required fields.
OPS: dict[str, tuple[str, ...]] = {
    "create_session": ("session", "attributes"),
    "ingest": ("session", "rows"),
    "query_clusters": ("session",),
    "checkpoint": ("session",),
    "close": ("session",),
    "healthz": (),
    "metrics": (),
}

#: Optional per-op fields (anything else is rejected as unknown).
OPTIONAL_FIELDS: dict[str, tuple[str, ...]] = {
    "create_session": (
        "config",
        "worker_band",
        "shard_threshold",
        "shard_workers",
        "pairs_per_hit",
        "cents_per_hit",
        "index_mode",
    ),
    "ingest": ("entity_ids",),
}

_COMMON_FIELDS = ("v", "id", "op")


def encode(message: dict[str, Any]) -> bytes:
    """One protocol line: compact JSON plus the terminating newline."""
    return (
        json.dumps(message, separators=(",", ":"), ensure_ascii=False) + "\n"
    ).encode("utf-8")


def decode_request(line: bytes | str) -> dict[str, Any]:
    """Parse and validate one request line.

    Raises :class:`~repro.exceptions.ProtocolError` with a machine-readable
    ``code`` on malformed JSON, a non-object payload, an unsupported
    protocol version, an unknown op, or missing/unknown fields.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        request = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(
            "bad_json", f"request is not valid JSON: {error}"
        ) from None
    if not isinstance(request, dict):
        raise ProtocolError(
            "bad_request", f"request must be a JSON object, got {type(request).__name__}"
        )
    version = request.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "unsupported_version",
            f"protocol version {version!r} is not supported "
            f"(this build speaks version {PROTOCOL_VERSION}); "
            "upgrade the client or the server",
        )
    op = request.get("op")
    if op not in OPS:
        raise ProtocolError(
            "unknown_op",
            f"unknown op {op!r} (supported: {', '.join(sorted(OPS))})",
        )
    required = OPS[op]
    for field in required:
        if field not in request:
            raise ProtocolError(
                "missing_field", f"op {op!r} requires field {field!r}"
            )
    allowed = set(_COMMON_FIELDS) | set(required) | set(OPTIONAL_FIELDS.get(op, ()))
    unknown = set(request) - allowed
    if unknown:
        raise ProtocolError(
            "unknown_field",
            f"op {op!r} does not accept field(s) {sorted(unknown)}",
        )
    if op == "ingest":
        rows = request["rows"]
        if not isinstance(rows, list) or not rows:
            raise ProtocolError(
                "bad_request", "ingest rows must be a non-empty list"
            )
        entity_ids = request.get("entity_ids")
        if entity_ids is not None and len(entity_ids) != len(rows):
            raise ProtocolError(
                "bad_request",
                f"{len(rows)} rows but {len(entity_ids)} entity ids",
            )
    if op == "create_session" and not isinstance(request["attributes"], list):
        raise ProtocolError(
            "bad_request", "create_session attributes must be a list"
        )
    return request


def ok_response(request_id: Any, **fields: Any) -> dict[str, Any]:
    """A success response echoing the request id."""
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": True, **fields}


def error_response(
    request_id: Any,
    code: str,
    message: str,
    retry_after: float | None = None,
) -> dict[str, Any]:
    """A failure response; ``retry_after`` marks a load-shed, not a bug."""
    response: dict[str, Any] = {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "error": code,
        "message": message,
    }
    if retry_after is not None:
        response["retry_after"] = round(float(retry_after), 6)
    return response


def decode_response(line: bytes | str) -> dict[str, Any]:
    """Parse one response line; clients get the version discipline too."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        response = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(
            "bad_json", f"response is not valid JSON: {error}"
        ) from None
    if not isinstance(response, dict) or "ok" not in response:
        raise ProtocolError("bad_response", f"malformed response: {line[:120]}")
    version = response.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "unsupported_version",
            f"server speaks protocol version {version!r}, this client "
            f"speaks {PROTOCOL_VERSION}",
        )
    return response


__all__ = [
    "MAX_LINE_BYTES",
    "OPS",
    "OPTIONAL_FIELDS",
    "PROTOCOL_VERSION",
    "decode_request",
    "decode_response",
    "encode",
    "error_response",
    "ok_response",
]
