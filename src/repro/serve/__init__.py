"""repro.serve: the multi-tenant async resolution service.

The serving layer over PR 8's durable streams: many isolated tenant
sessions behind one asyncio line-protocol server, each a single-writer
actor over a :class:`~repro.stream.StreamingResolver`, with LRU
eviction/restore through the snapshot store, token-bucket + bounded-queue
admission control (explicit ``retry_after`` load shedding), graceful
SIGTERM drain that checkpoints every live session, and ``/healthz`` +
``/metrics`` wired into :mod:`repro.obs`.

Equivalence contract (the ``check_serve_equivalence`` battery step):
batches ingested through the server — under concurrent interleaved
tenants and across evict/restore cycles — reach a ``state_sha``
bit-identical to driving ``StreamingResolver`` directly.
"""

from .admission import AdmissionController, TokenBucket
from .client import AsyncServeClient, ServeClient
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    decode_request,
    decode_response,
    encode,
    error_response,
    ok_response,
)
from .server import ResolutionServer, ServeApp, run_server
from .sessions import SessionRegistry, SessionSpec

__all__ = [
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "AdmissionController",
    "AsyncServeClient",
    "ResolutionServer",
    "ServeApp",
    "ServeClient",
    "SessionRegistry",
    "SessionSpec",
    "TokenBucket",
    "decode_request",
    "decode_response",
    "encode",
    "error_response",
    "ok_response",
    "run_server",
]
