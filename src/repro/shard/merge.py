"""Deterministic, shard-order-independent merges of shard results.

Every merge in this module is **associative and order-free**: the merged
output depends only on the *set* of shard results, never on which worker
produced them or in which order they completed.  That is the heart of the
sharded path's determinism argument (DESIGN.md §10):

* :func:`merge_vector_chunks` — chunks are keyed by their global row
  offset, so reassembly is a sort + stack (rows are per-pair independent).
* :func:`merge_adjacency_blocks` — row blocks keyed by their first row;
  concatenation in row order reproduces the full blocked-kernel output.
* :func:`merge_vote_deltas` — per-slice vote deltas are **summed**; vote
  addition is commutative integer arithmetic, so partial sums merged in
  any order equal the serial per-answer accumulation exactly.
* :func:`apply_answer_batch` — replays one crowd round onto the global
  :class:`~repro.graph.coloring.ColoringState`: pin every answered vertex
  (in question order, so ``asked_order`` matches the serial transcript),
  add the merged vote deltas, refresh exactly the vertices that received a
  vote.  Equivalent to the serial one-answer-at-a-time engine because a
  non-pinned vertex's final color is the majority of its *cumulative*
  votes at its last touch, and a vertex pinned mid-batch ends at its
  pinned color either way.
* :func:`merge_independent_outcomes` / :func:`merged_clusters` — the
  independent mode's reduction: labels union (shards own disjoint pair
  sets), distinct-question union, **pooled** billing recomputed over the
  union (the pinned :class:`~repro.crowd.platform.CrowdSession` semantics:
  never a sum of per-shard ceilings), iteration count as the parallel
  max, and a union-find over all shard matches for the clusters.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

from ..data.ground_truth import Pair
from ..exceptions import ConfigurationError
from ..graph.coloring import Color, ColoringState
from ..selection.base import SelectionResult
from .partition import UnionFind
from .worker import ShardOutcome


# --------------------------------------------------------------------------- #
# Exact-mode merges
# --------------------------------------------------------------------------- #


def merge_vector_chunks(chunks: Iterable[tuple[int, np.ndarray]]) -> np.ndarray:
    """Reassemble ``(start, rows)`` similarity chunks into one matrix.

    Chunks may arrive in any order; they are sorted by their global row
    offset and must tile the row space exactly (gaps or overlaps raise).
    """
    ordered = sorted(chunks, key=lambda chunk: chunk[0])
    if not ordered:
        return np.empty((0, 0), dtype=np.float64)
    expected = 0
    for start, rows in ordered:
        if start != expected:
            raise ConfigurationError(
                f"vector chunks do not tile the rows: expected offset "
                f"{expected}, got {start}"
            )
        expected = start + rows.shape[0]
    return np.vstack([rows for _, rows in ordered])


def merge_adjacency_blocks(
    blocks: Iterable[tuple[int, list[np.ndarray]]], num_vertices: int
) -> list[np.ndarray]:
    """Reassemble ``(lo, children_lists)`` row blocks into full adjacency."""
    ordered = sorted(blocks, key=lambda block: block[0])
    adjacency: list[np.ndarray] = []
    expected = 0
    for lo, lists in ordered:
        if lo != expected:
            raise ConfigurationError(
                f"adjacency blocks do not tile the rows: expected offset "
                f"{expected}, got {lo}"
            )
        adjacency.extend(lists)
        expected = lo + len(lists)
    if expected != num_vertices:
        raise ConfigurationError(
            f"adjacency blocks cover {expected} of {num_vertices} vertices"
        )
    return adjacency


def merge_vote_deltas(
    slices: Iterable[tuple[int, np.ndarray, np.ndarray]], num_vertices: int
) -> tuple[np.ndarray, np.ndarray]:
    """Sum per-slice ``(lo, green_delta, red_delta)`` into full-length deltas.

    Vote addition is commutative and associative integer arithmetic, so
    this merge is independent of slice order, slice boundaries, and worker
    scheduling — the property the mutation self-test attacks (a merge that
    drops a slice's contribution must be caught by the shard-equivalence
    differential).
    """
    green = np.zeros(num_vertices, dtype=np.int32)
    red = np.zeros(num_vertices, dtype=np.int32)
    for lo, green_delta, red_delta in slices:
        if lo < 0 or lo + len(green_delta) > num_vertices:
            raise ConfigurationError(
                f"vote-delta slice [{lo}, {lo + len(green_delta)}) escapes "
                f"the {num_vertices}-vertex graph"
            )
        green[lo : lo + len(green_delta)] += green_delta
        red[lo : lo + len(red_delta)] += red_delta
    return green, red


def apply_answer_batch(
    state: ColoringState,
    answered: Sequence[tuple[int, bool | None]],
    green_delta: np.ndarray,
    red_delta: np.ndarray,
) -> None:
    """Apply one crowd round's answers plus merged vote deltas to *state*.

    Args:
        state: the global coloring state.
        answered: ``(vertex, answer)`` in question order — ``True`` GREEN,
            ``False`` RED, ``None`` BLUE (low-confidence, no inference).
        green_delta / red_delta: the merged inference-vote deltas for this
            round (GREEN answers vote their ancestors, RED answers their
            descendants), as produced by :func:`merge_vote_deltas`.

    Serial equivalence: the serial loop pins + propagates one answer at a
    time.  Pinned vertices end at their pinned color in both schedules;
    a vertex never pinned this round is refreshed here with the full
    round's cumulative votes — exactly the vote totals the serial path
    shows it at its last refresh, since only votes *targeting* the vertex
    can change its majority and all of this round's targeted votes are in
    both sums.  ``asked_order`` is appended in question order, matching
    the serial transcript byte for byte.
    """
    for vertex, answer in answered:
        state.graph._check_vertex(vertex)
        state.asked_order.append(vertex)
        if answer is None:
            state.colors[vertex] = Color.BLUE
        else:
            state.colors[vertex] = Color.GREEN if answer else Color.RED
        state._pinned[vertex] = True
    state._green_votes += green_delta
    state._red_votes += red_delta
    touched = (green_delta > 0) | (red_delta > 0)
    if np.any(touched):
        state._refresh(touched)


# --------------------------------------------------------------------------- #
# Independent-mode merge
# --------------------------------------------------------------------------- #


def merged_clusters(num_records: int, outcomes: Sequence[ShardOutcome]) -> list[list[int]]:
    """Entity clusters from every shard's matches via one global union-find.

    The union-find is processed shard-by-shard in ``shard_id`` order for
    reproducibility of the traversal, but its *result* — the connected
    components — is invariant to union order, so any completion order of
    the shards yields identical clusters (including clusters stitched
    together by records that appear in several shards' pairs).
    """
    uf = UnionFind(num_records)
    for outcome in sorted(outcomes, key=lambda item: item.shard_id):
        for a, b in sorted(outcome.matches):
            uf.union(int(a), int(b))
    members: dict[int, list[int]] = {}
    for record in range(num_records):
        members.setdefault(uf.find(record), []).append(record)
    return sorted(members.values(), key=lambda cluster: cluster[0])


def merge_independent_outcomes(
    outcomes: Sequence[ShardOutcome],
    selector_name: str,
    pairs_per_hit: int = 10,
    cents_per_hit: int = 10,
    assignments: int = 5,
) -> SelectionResult:
    """Reduce independent shard outcomes into one :class:`SelectionResult`.

    * **labels** — shard label maps union; the partitioner assigns every
      candidate pair to exactly one shard, so the union is conflict-free
      (asserted) and shard-order-independent.
    * **questions** — distinct pairs asked across all shards (shards never
      share pairs, so this equals the sum, but the union is what billing
      is defined over).
    * **cost** — the pinned pooled-ceiling billing recomputed over the
      union of asked pairs: ``ceil(distinct / pairs_per_hit) *
      assignments * cents_per_hit``.  Never a sum of per-shard ceilings —
      that would bill up to ``num_shards - 1`` phantom partial HITs.
    * **iterations** — the parallel-latency view: shards run concurrently,
      so the round count is the slowest shard's (per-shard counts are kept
      in ``extras``).
    """
    ordered = sorted(outcomes, key=lambda item: item.shard_id)
    labels: dict[Pair, bool] = {}
    asked: set[Pair] = set()
    for outcome in ordered:
        for pair, decision in outcome.labels.items():
            if pair in labels and labels[pair] != decision:
                raise ConfigurationError(
                    f"shards disagree on pair {pair}: the partitioner must "
                    "assign each pair to exactly one shard"
                )
            labels[pair] = decision
        asked.update(outcome.asked_pairs)
    hits = (
        math.ceil(len(asked) / pairs_per_hit) * assignments if asked else 0
    )
    return SelectionResult(
        name=selector_name,
        labels=labels,
        questions=len(asked),
        iterations=max((outcome.iterations for outcome in ordered), default=0),
        assignment_time=max(
            (outcome.assignment_time for outcome in ordered), default=0.0
        ),
        state=None,
        cost_cents=hits * cents_per_hit,
        extras={
            "shards": len(ordered),
            "shard_questions": [outcome.questions for outcome in ordered],
            "shard_iterations": [outcome.iterations for outcome in ordered],
            "shard_cost_cents": [outcome.cost_cents for outcome in ordered],
            "shard_vertices": [outcome.num_vertices for outcome in ordered],
        },
    )


__all__ = [
    "merge_vector_chunks",
    "merge_adjacency_blocks",
    "merge_vote_deltas",
    "apply_answer_batch",
    "merged_clusters",
    "merge_independent_outcomes",
]
