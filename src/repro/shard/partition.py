"""Partitioning the candidate graph into shard work units.

The similar-pair candidate graph (records as nodes, surviving candidate
pairs as edges) decomposes into connected components that can be resolved
independently — the structure CrowdER-style batching exploits.  Real
datasets at the paper's pruning thresholds, however, are dominated by one
giant component, so a practical partitioner needs two more tools:

* :func:`split_component` — a *size-capped* re-partitioning that splits a
  giant component on its **weakest edges**: edges are replayed in
  descending weight order through a size-capped union-find (a capped
  maximum-spanning-forest clustering), so only the lowest-similarity edges
  end up crossing blocks.
* :func:`pack_components` — an LPT (longest-processing-time) bin-packing
  scheduler that groups small components into ``num_shards`` balanced work
  units.

Two consumers exist:

* the **independent** execution mode shards the record graph via
  :func:`plan_pair_shards` (each shard resolves its own pairs end to end);
* the **exact** lockstep mode partitions the *vertices* of the built
  dominance DAG into balanced slices via :func:`vertex_slices` — inference
  is replayed exactly there, so any disjoint cover is correct and balance
  is the only objective.

Everything in this module is deterministic: ties break on the smallest
node id / earliest edge, never on hash order or scheduling.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from ..data.ground_truth import Pair
from ..exceptions import ConfigurationError


class UnionFind:
    """Array-backed union-find with size tracking (path halving)."""

    def __init__(self, size: int) -> None:
        self.parent = np.arange(size, dtype=np.int64)
        self.size = np.ones(size, dtype=np.int64)

    def find(self, node: int) -> int:
        parent = self.parent
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = int(parent[node])
        return node

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of *a* and *b*; False when already together."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True


def connected_components(
    num_nodes: int, edges: Sequence[Pair]
) -> list[np.ndarray]:
    """Connected components of an undirected graph, deterministically ordered.

    Returns:
        One sorted node array per component, components ordered by their
        smallest node id.  Isolated nodes form singleton components.
    """
    if num_nodes < 0:
        raise ConfigurationError(f"num_nodes must be >= 0, got {num_nodes}")
    uf = UnionFind(num_nodes)
    for a, b in edges:
        uf.union(int(a), int(b))
    roots = np.fromiter(
        (uf.find(node) for node in range(num_nodes)), dtype=np.int64, count=num_nodes
    )
    components: dict[int, list[int]] = {}
    for node in range(num_nodes):
        components.setdefault(int(roots[node]), []).append(node)
    ordered = sorted(components.values(), key=lambda nodes: nodes[0])
    return [np.asarray(nodes, dtype=np.int64) for nodes in ordered]


def split_component(
    nodes: np.ndarray,
    edges: Sequence[Pair],
    weights: Sequence[float] | None,
    max_pairs: int,
) -> list[np.ndarray]:
    """Split one component into blocks of at most ~*max_pairs* edges each.

    Strong (high-weight) edges are granted first, so when the cap forces a
    cut it lands on the **weakest** edges — the pairs least likely to carry
    useful cross-block inference.  Implementation: replay edges in
    descending weight order (ties: original edge order) through a
    union-find whose unions are refused once the combined block would hold
    more than *max_pairs* edges.

    Args:
        nodes: the component's node ids (sorted).
        edges: the component's edges (pairs of node ids).
        weights: one weight per edge (higher = stronger); ``None`` means
            uniform weights, i.e. split purely on edge order.
        max_pairs: cap on edges per block (must be >= 1).

    Returns:
        Sorted node arrays, ordered by smallest node id.  The union of the
        blocks is exactly *nodes*; a component with ``<= max_pairs`` edges
        comes back whole.
    """
    if max_pairs < 1:
        raise ConfigurationError(f"max_pairs must be >= 1, got {max_pairs}")
    if len(edges) <= max_pairs:
        return [np.asarray(nodes, dtype=np.int64)]
    local = {int(node): index for index, node in enumerate(nodes)}
    uf = UnionFind(len(nodes))
    # Edges already inside a block (accepted or closing a cycle) per root.
    internal = np.zeros(len(nodes), dtype=np.int64)
    if weights is None:
        order = range(len(edges))
    else:
        if len(weights) != len(edges):
            raise ConfigurationError(
                f"{len(edges)} edges but {len(weights)} weights"
            )
        # Descending weight; ties keep the original edge order (stable).
        order = np.argsort(-np.asarray(weights, dtype=np.float64), kind="stable")
    for index in order:
        a, b = edges[int(index)]
        ra, rb = uf.find(local[int(a)]), uf.find(local[int(b)])
        if ra == rb:
            internal[ra] += 1  # cycle edge: same block either way
            continue
        if internal[ra] + internal[rb] + 1 > max_pairs:
            continue  # refusing the union cuts this (weak) edge
        combined = internal[ra] + internal[rb] + 1
        uf.union(ra, rb)
        internal[uf.find(ra)] = combined
    blocks: dict[int, list[int]] = {}
    for position, node in enumerate(nodes):
        blocks.setdefault(uf.find(position), []).append(int(node))
    ordered = sorted(blocks.values(), key=lambda members: members[0])
    return [np.asarray(members, dtype=np.int64) for members in ordered]


def pack_components(
    weights: Sequence[float], num_bins: int
) -> list[list[int]]:
    """LPT bin packing: assign component indexes to ``num_bins`` bins.

    Components are placed heaviest-first onto the currently lightest bin
    (ties: lowest bin id), the classic longest-processing-time heuristic
    whose makespan is within 4/3 of optimal — comfortably inside the 2x
    balance bound the partition tests enforce.

    Returns:
        ``bins[b]`` holds the component indexes assigned to bin ``b``, in
        descending weight order; empty bins are dropped.
    """
    if num_bins < 1:
        raise ConfigurationError(f"num_bins must be >= 1, got {num_bins}")
    order = np.argsort(
        -np.asarray(weights, dtype=np.float64), kind="stable"
    )
    bins: list[list[int]] = [[] for _ in range(num_bins)]
    loads = np.zeros(num_bins, dtype=np.float64)
    for index in order:
        lightest = int(np.argmin(loads))  # first minimum: lowest bin id
        bins[lightest].append(int(index))
        loads[lightest] += float(weights[int(index)])
    return [bin_ for bin_ in bins if bin_]


@dataclass(frozen=True)
class PairShard:
    """One independent-mode work unit: a set of candidate pairs.

    Attributes:
        shard_id: position in the plan (also the seed-derivation index).
        pairs: the candidate pairs this shard resolves, sorted.
        components: how many candidate-graph blocks were packed into it.
    """

    shard_id: int
    pairs: tuple[Pair, ...]
    components: int = 1

    def __len__(self) -> int:
        return len(self.pairs)


@dataclass(frozen=True)
class ShardPlan:
    """A full partition of the candidate pairs into shard work units."""

    shards: tuple[PairShard, ...]
    num_components: int
    split_components: int = 0
    stats: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.shards)

    @property
    def pair_counts(self) -> list[int]:
        return [len(shard) for shard in self.shards]

    def balance(self) -> float:
        """Largest shard over the ideal (mean) load; 1.0 is perfect."""
        counts = self.pair_counts
        if not counts or sum(counts) == 0:
            return 1.0
        ideal = max(sum(counts) / len(counts), max(counts) and 1)
        return max(counts) / max(ideal, 1e-12)


def plan_pair_shards(
    pairs: Sequence[Pair],
    num_shards: int,
    weights: Sequence[float] | None = None,
    max_pairs: int | None = None,
) -> ShardPlan:
    """Partition candidate pairs into at most *num_shards* balanced shards.

    Pipeline: connected components of the record graph -> size-capped
    weak-edge splitting of any component over *max_pairs* -> LPT packing of
    the blocks into shard work units.  Every candidate pair lands in
    exactly one shard: a pair is an *edge* of the record graph, so both its
    records sit inside one component; when a split cuts the edge, the pair
    follows the block of its smaller record id (deterministic).

    Args:
        pairs: the candidate pairs (each a ``(low, high)`` record-id tuple).
        num_shards: target number of work units (>= 1).
        weights: per-pair edge weights (e.g. record-level similarity);
            higher = stronger.  Guides the weak-edge splitting only.
        max_pairs: split any component holding more pairs than this;
            ``None`` keeps components whole (pure CrowdER-style sharding).
    """
    if num_shards < 1:
        raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
    if max_pairs is not None and max_pairs < 1:
        raise ConfigurationError(f"max_pairs must be >= 1 or None, got {max_pairs}")
    pairs = list(pairs)
    if not pairs:
        return ShardPlan(shards=(), num_components=0)
    record_ids = sorted({record for pair in pairs for record in pair})
    dense = {record: index for index, record in enumerate(record_ids)}
    dense_edges = [(dense[a], dense[b]) for a, b in pairs]
    components = connected_components(len(record_ids), dense_edges)

    # Edges (with positions) per component root.
    uf = UnionFind(len(record_ids))
    for a, b in dense_edges:
        uf.union(a, b)
    edges_of: dict[int, list[int]] = {}
    for position, (a, b) in enumerate(dense_edges):
        edges_of.setdefault(uf.find(a), []).append(position)

    blocks: list[list[int]] = []  # pair positions per block
    split_components = 0
    for component in components:
        root = uf.find(int(component[0]))
        positions = edges_of.get(root, [])
        if max_pairs is None or len(positions) <= max_pairs:
            blocks.append(positions)
            continue
        split_components += 1
        component_edges = [dense_edges[p] for p in positions]
        component_weights = (
            None if weights is None else [float(weights[p]) for p in positions]
        )
        sub_blocks = split_component(
            component, component_edges, component_weights, max_pairs
        )
        block_of_node: dict[int, int] = {}
        for block_index, nodes in enumerate(sub_blocks):
            for node in nodes:
                block_of_node[int(node)] = block_index
        grouped: dict[int, list[int]] = {}
        for position in positions:
            a, b = dense_edges[position]
            # A cut pair follows its smaller record id's block.
            owner = block_of_node[min(a, b)] if block_of_node[a] != block_of_node[b] else block_of_node[a]
            grouped.setdefault(owner, []).append(position)
        for block_index in sorted(grouped):
            members = grouped[block_index]
            # Adopted cut pairs can push a block past the cap (a hub record
            # attracts every pair cut off its star); re-chunk so no block
            # exceeds max_pairs and the LPT packer can balance the load.
            for start in range(0, len(members), max_pairs):
                blocks.append(members[start : start + max_pairs])

    packed = pack_components([len(block) for block in blocks], num_shards)
    shards = []
    for shard_id, block_indexes in enumerate(packed):
        positions = sorted(p for index in block_indexes for p in blocks[index])
        shards.append(
            PairShard(
                shard_id=shard_id,
                pairs=tuple(pairs[p] for p in positions),
                components=len(block_indexes),
            )
        )
    return ShardPlan(
        shards=tuple(shards),
        num_components=len(components),
        split_components=split_components,
        stats={
            "records": len(record_ids),
            "pairs": len(pairs),
            "blocks": len(blocks),
        },
    )


def vertex_slices(num_vertices: int, num_slices: int) -> list[tuple[int, int]]:
    """Balanced contiguous ``[lo, hi)`` vertex ranges for the exact mode.

    The exact lockstep executor replays inference globally, so *any*
    disjoint cover of the dominance DAG's vertices is correct; contiguous
    balanced slices maximise propagation balance at zero planning cost.
    Empty slices are dropped (fewer vertices than slices).
    """
    if num_slices < 1:
        raise ConfigurationError(f"num_slices must be >= 1, got {num_slices}")
    if num_vertices < 0:
        raise ConfigurationError(f"num_vertices must be >= 0, got {num_vertices}")
    base, extra = divmod(num_vertices, num_slices)
    slices = []
    lo = 0
    for index in range(num_slices):
        hi = lo + base + (1 if index < extra else 0)
        if hi > lo:
            slices.append((lo, hi))
        lo = hi
    return slices


__all__ = [
    "UnionFind",
    "connected_components",
    "split_component",
    "pack_components",
    "PairShard",
    "ShardPlan",
    "plan_pair_shards",
    "vertex_slices",
]
