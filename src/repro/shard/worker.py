"""Picklable per-shard task functions (the code that runs inside workers).

Every task here is a **pure function of its spec**: no hidden process
state, no shared RNG, no ordering dependence.  That single property is what
makes the executor's fault handling trivial — a crashed, hung, or flaky
task can be retried on another worker (or run inline in the coordinator)
and produce the *same bytes*.

Two families of tasks exist, matching the two execution modes of
:mod:`repro.shard`:

* **exact lockstep** tasks — data-parallel slices of the serial pipeline's
  own arithmetic.  :func:`compute_join_pairs` emits one probe range of the
  candidate similarity join, :func:`compute_vectors` vectorizes a chunk of
  candidate pairs, :func:`compute_adjacency` builds a row block of the
  dominance adjacency, and :func:`compute_vote_deltas` computes one vertex
  slice's inference-vote deltas for a batch of crowd answers.  Their merges
  (:mod:`repro.shard.merge`) are associative and order-free, so the merged
  result is bit-identical to the serial path regardless of scheduling.
* **independent** tasks — :func:`resolve_shard` runs the full
  Power/Power+ graph-build → selection → crowd loop on one shard's pair
  set, with a per-shard RNG seed derived from the global seed and the
  shard id (:func:`derive_shard_seed`), so shard answers are reproducible
  regardless of which process runs them or in which order.

Determinism of the simulated crowd is load-bearing: each worker's vote is
seeded by ``(pool seed, worker id, pair)`` and the worker assignment by
``(pool seed, pair)`` (see :mod:`repro.crowd.worker`), so the same pair
gets the same answer in every shard of every run.

:class:`FaultSpec` is the fault-injection hook used by the executor's
fault-path tests: a task spec can carry one, and the first ``limit``
attempts of that task will raise, kill the worker process, or hang.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..data.ground_truth import Pair, pair_truth
from ..data.table import Table
from ..exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.config import PowerConfig
    from ..similarity.vectors import SimilarityConfig


# --------------------------------------------------------------------------- #
# Fault injection (for the executor's fault-path tests)
# --------------------------------------------------------------------------- #


#: Fault kinds understood by :func:`maybe_fault`.
FAULT_KINDS = ("raise", "exit", "hang")


@dataclass(frozen=True)
class FaultSpec:
    """Deterministic fault injection for one task.

    The attempt counter lives in a *file* (one byte appended per attempt),
    so it survives worker-process crashes — which is exactly the failure
    mode being simulated.  Attempts ``1..limit`` fail; attempt ``limit+1``
    (and later) succeed.

    Attributes:
        path: counter file, unique per injected task.
        limit: how many attempts fail before the task starts succeeding.
        kind: ``"raise"`` (exception), ``"exit"`` (hard process death →
            ``BrokenProcessPool``), or ``"hang"`` (sleep past the timeout).
        hang_seconds: how long a ``"hang"`` fault sleeps.
    """

    path: str
    limit: int = 1
    kind: str = "raise"
    hang_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.limit < 0:
            raise ConfigurationError(f"fault limit must be >= 0, got {self.limit}")


def maybe_fault(fault: FaultSpec | None) -> None:
    """Fail according to *fault* while its attempt budget lasts.

    A ``"exit"`` fault only hard-kills *worker* processes (detected via
    :func:`multiprocessing.parent_process`); when the task runs inline in
    the coordinator it degrades to an exception, so fault-path tests can
    never take the test runner down with them.
    """
    if fault is None:
        return
    with open(fault.path, "ab") as handle:
        handle.write(b"x")
        handle.flush()
        attempt = handle.tell()
    if attempt > fault.limit:
        return
    if fault.kind == "hang":
        time.sleep(fault.hang_seconds)
        return
    if fault.kind == "exit" and multiprocessing.parent_process() is not None:
        os._exit(13)
    raise RuntimeError(
        f"injected fault ({fault.kind}, attempt {attempt}/{fault.limit})"
    )


# --------------------------------------------------------------------------- #
# Seeding
# --------------------------------------------------------------------------- #


def derive_shard_seed(seed: int, shard_id: int) -> int:
    """A per-shard seed derived from the global seed and the shard id.

    Uses :class:`numpy.random.SeedSequence` so shard streams are
    statistically independent, and depends only on ``(seed, shard_id)`` —
    never on scheduling order or worker identity — so shard answers are
    reproducible across runs and process placements.
    """
    entropy = (int(seed) & 0xFFFFFFFF, int(shard_id))
    return int(np.random.SeedSequence(entropy).generate_state(1)[0])


# --------------------------------------------------------------------------- #
# Exact-mode tasks: data-parallel slices of the serial arithmetic
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class JoinTask:
    """One probe range of the candidate-pair similarity join.

    Every candidate pair ``(a, b)`` with ``a < b`` is owned by its higher
    record id ``b``; this task emits exactly the pairs owned by records
    ``[lo, hi)`` (see :func:`repro.similarity.join.similar_pairs_range`).
    Tiling the record range therefore tiles the full join output — the
    concatenation over disjoint covering ranges is a permutation of
    ``similar_pairs(table, threshold)``, and sorting it restores the exact
    serial output.

    Attributes:
        table: the records (tokenization is recomputed per task — it is
            two orders of magnitude cheaper than the verification work the
            range parallelizes).
        threshold: the record-level Jaccard pruning bound ``tau``.
        lo / hi: the probe-record range this task owns.
        tokens: ``"word"`` or ``"qgram"`` token sets.
        method: ``"naive"`` or ``"prefix"`` (``"auto"`` must be resolved
            by the coordinator so every task agrees; ``"sparse"`` has no
            range form and stays on the serial path).
    """

    table: Table
    threshold: float
    lo: int
    hi: int
    tokens: str = "word"
    method: str = "prefix"
    fault: FaultSpec | None = None


def compute_join_pairs(task: JoinTask) -> list[Pair]:
    """The candidate pairs owned by the task's probe-record range."""
    maybe_fault(task.fault)
    from ..similarity.join import similar_pairs_range

    return similar_pairs_range(
        task.table,
        task.threshold,
        task.lo,
        task.hi,
        tokens=task.tokens,
        method=task.method,
    )


@dataclass(frozen=True)
class VectorTask:
    """One chunk of the similarity-vector computation.

    Attributes:
        start: global row index of ``pairs[0]`` (for ordered reassembly).
        pairs: the candidate pairs of this chunk.
        table: the records (rows are independent, so chunking is exact).
        config: the per-attribute similarity configuration.
        use_batch: route through the vectorized batch substrate (default)
            or the scalar reference — both bit-identical per pair.
    """

    start: int
    pairs: tuple[Pair, ...]
    table: Table
    config: "SimilarityConfig"
    use_batch: bool = True
    fault: FaultSpec | None = None


def compute_vectors(task: VectorTask) -> tuple[int, np.ndarray]:
    """Similarity vectors for one chunk of pairs.

    Exactness: every entry of the similarity matrix depends only on its own
    pair's attribute strings, so computing row chunks in different
    processes and stacking them equals the one-shot computation bit for
    bit (the batch substrate's per-pair kernels are themselves
    bit-identical to the scalar reference — PR 1's contract).
    """
    maybe_fault(task.fault)
    from ..similarity.batch import batch_similarity_matrix
    from ..similarity.vectors import similarity_matrix

    vectorize = batch_similarity_matrix if task.use_batch else similarity_matrix
    return task.start, vectorize(task.table, list(task.pairs), task.config)


@dataclass(frozen=True)
class AdjacencyTask:
    """One row block of the blocked dominance-adjacency construction.

    Carries the *full* dominance operands (they are small — ``(n, m)``
    float rows) plus the ``[lo, hi)`` row range this task owns, so the
    kernel's comparisons are exactly the serial kernel's comparisons for
    those rows.
    """

    dominant: np.ndarray
    dominated: np.ndarray
    lo: int
    hi: int
    block_size: int = 256
    fault: FaultSpec | None = None


def compute_adjacency(task: AdjacencyTask) -> tuple[int, list[np.ndarray]]:
    """Children lists for dominance rows ``[lo, hi)`` (global column ids)."""
    maybe_fault(task.fault)
    from ..graph.construction import blocked_dominance_lists

    lists = blocked_dominance_lists(
        task.dominant,
        task.dominated,
        block_size=task.block_size,
        exclude_diagonal=True,
        row_range=(task.lo, task.hi),
    )
    return task.lo, lists


@dataclass(frozen=True)
class PropagationTask:
    """One vertex slice's inference-vote deltas for a batch of answers.

    For the slice ``[lo, hi)`` of the dominance DAG, computes how many
    GREEN votes each slice vertex receives from the batch's GREEN answers
    (it strictly dominates an answered vertex: ``dominant[u] >=
    dominated[v]`` with a strict component) and how many RED votes from the
    RED answers (it is strictly dominated: ``dominated[u] <=
    dominant[v]``) — the same operand form
    :meth:`repro.graph.dag.OrderedGraph._dominance_operands` feeds the
    blocked kernel, valid for pair and grouped graphs alike.

    Attributes:
        dominant_block / dominated_block: operand rows ``lo:hi``.
        lo: global index of the slice's first vertex.
        green_vertices / green_rows: GREEN-answered vertices and their
            *dominated* operand rows (the comparison targets).
        red_vertices / red_rows: RED-answered vertices and their
            *dominant* operand rows.
    """

    dominant_block: np.ndarray
    dominated_block: np.ndarray
    lo: int
    green_vertices: tuple[int, ...]
    green_rows: np.ndarray
    red_vertices: tuple[int, ...]
    red_rows: np.ndarray
    fault: FaultSpec | None = None


#: Answered vertices are processed in chunks of this many per comparison
#: broadcast, bounding the ``(slice, chunk, m)`` boolean temporary.
_VOTE_CHUNK = 256


def _vote_counts(
    block: np.ndarray,
    rows: np.ndarray,
    vertices: tuple[int, ...],
    lo: int,
    green: bool,
) -> np.ndarray:
    """Votes received by each block vertex from the answered *vertices*.

    ``green=True`` counts, per block vertex ``u``, the answered vertices it
    strictly dominates' ancestors relation (``block[u] >= row`` all, ``>``
    any); ``green=False`` the strictly-dominated relation (``block[u] <=
    row`` all, ``<`` any).  A vertex never votes for itself (the serial
    masks pin ``mask[vertex] = False``).
    """
    height = block.shape[0]
    counts = np.zeros(height, dtype=np.int32)
    if not len(vertices):
        return counts
    for start in range(0, len(vertices), _VOTE_CHUNK):
        chunk_rows = rows[start : start + _VOTE_CHUNK]
        cmp = block[:, None, :]
        if green:
            mask = (cmp >= chunk_rows[None, :, :]).all(axis=2) & (
                cmp > chunk_rows[None, :, :]
            ).any(axis=2)
        else:
            mask = (cmp <= chunk_rows[None, :, :]).all(axis=2) & (
                cmp < chunk_rows[None, :, :]
            ).any(axis=2)
        for offset, vertex in enumerate(vertices[start : start + _VOTE_CHUNK]):
            if lo <= vertex < lo + height:
                mask[vertex - lo, offset] = False  # self-vote never happens
        counts += mask.sum(axis=1, dtype=np.int32)
    return counts


def compute_vote_deltas(
    task: PropagationTask,
) -> tuple[int, np.ndarray, np.ndarray]:
    """``(lo, green_delta, red_delta)`` for the task's vertex slice.

    Exactness: the serial engine applies one answer at a time —
    ``_green_votes[ancestor_mask(v)] += 1`` per GREEN answer,
    ``_red_votes[descendant_mask(v)] += 1`` per RED — and vote addition is
    commutative and associative, so per-slice partial sums merged in any
    order equal the serial per-answer sums exactly (integer arithmetic,
    no rounding).
    """
    maybe_fault(task.fault)
    green = _vote_counts(
        task.dominant_block, task.green_rows, task.green_vertices, task.lo, True
    )
    red = _vote_counts(
        task.dominated_block, task.red_rows, task.red_vertices, task.lo, False
    )
    return task.lo, green, red


# --------------------------------------------------------------------------- #
# Independent-mode task: one shard's full resolution loop
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class IndependentShardTask:
    """One shard's end-to-end resolution job (picklable spec).

    Attributes:
        shard_id: position in the shard plan (drives the derived seed).
        table: the full record table (shards share records; pairs differ).
        pairs: the candidate pairs this shard owns.
        config: the pipeline configuration (selector, grouping, ...).
        worker_band: accuracy band for the shard's simulated crowd.
        seed: the shard's derived selector seed
            (:func:`derive_shard_seed` of the global seed and shard id).
        budget: optional per-shard question budget (the coordinator's
            global budget split, see
            :func:`repro.shard.executor.split_question_budget`).
    """

    shard_id: int
    table: Table
    pairs: tuple[Pair, ...]
    config: "PowerConfig"
    worker_band: str | tuple[float, float] = "90"
    seed: int = 0
    budget: int | None = None
    fault: FaultSpec | None = None


@dataclass(frozen=True)
class ShardOutcome:
    """Everything the merge needs from one independent shard run."""

    shard_id: int
    labels: dict[Pair, bool]
    asked_pairs: frozenset[Pair]
    questions: int
    iterations: int
    cost_cents: int
    assignment_time: float
    num_vertices: int

    @property
    def matches(self) -> set[Pair]:
        return {pair for pair, same in self.labels.items() if same}


def resolve_shard(task: IndependentShardTask) -> ShardOutcome:
    """Run the Power/Power+ loop on one shard's pairs (worker side).

    Builds the shard's similarity vectors, (grouped) dominance graph, and
    simulated crowd, then runs the configured selector with the shard's
    derived seed.  The crowd pool is seeded with the *global* config seed —
    worker votes depend only on ``(pool seed, worker, pair)`` — so a pair
    answered in this shard gets the same answer it would get in any other
    shard or in the serial run.
    """
    maybe_fault(task.fault)
    from ..crowd.platform import SimulatedCrowd
    from ..crowd.worker import WorkerPool
    from ..graph.grouped_graph import build_graph
    from ..selection import SELECTORS
    from ..similarity.batch import batch_similarity_matrix
    from ..similarity.vectors import similarity_matrix

    config = task.config
    pairs = list(task.pairs)
    table = task.table
    similarity_config = _similarity_config(config, table)
    vectorize = (
        batch_similarity_matrix if config.use_batch_similarity else similarity_matrix
    )
    vectors = vectorize(table, pairs, similarity_config)
    graph = build_graph(
        pairs,
        vectors,
        epsilon=config.epsilon,
        grouping_algorithm=config.grouping_algorithm,
    )
    crowd = SimulatedCrowd(
        pair_truth(table, pairs),
        pool=WorkerPool(accuracy_range=task.worker_band, seed=config.seed),
        assignments=config.assignments,
    )
    session = crowd.session()
    selector = SELECTORS[config.selector](
        error_policy=config.error_policy(),
        seed=task.seed,
        incremental=config.use_incremental_selection,
        reachability_bytes=config.reachability_limit_bytes(),
    )
    result = selector.run(graph, session, budget=task.budget)
    return ShardOutcome(
        shard_id=task.shard_id,
        labels=dict(result.labels),
        asked_pairs=session.asked_pairs,
        questions=result.questions,
        iterations=result.iterations,
        cost_cents=result.cost_cents,
        assignment_time=result.assignment_time,
        num_vertices=len(graph),
    )


def _similarity_config(config: "PowerConfig", table: Table) -> "SimilarityConfig":
    """The resolver's similarity configuration, rebuilt worker-side."""
    from ..similarity.vectors import SimilarityConfig

    similarity = config.similarity
    if isinstance(similarity, str):
        return SimilarityConfig.uniform(
            table.num_attributes,
            function=similarity,
            attribute_threshold=config.attribute_threshold,
        )
    return SimilarityConfig(
        functions=tuple(similarity),
        attribute_threshold=config.attribute_threshold,
    ).for_table(table)


__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "maybe_fault",
    "derive_shard_seed",
    "JoinTask",
    "compute_join_pairs",
    "VectorTask",
    "compute_vectors",
    "AdjacencyTask",
    "compute_adjacency",
    "PropagationTask",
    "compute_vote_deltas",
    "IndependentShardTask",
    "ShardOutcome",
    "resolve_shard",
]
