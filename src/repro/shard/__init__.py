"""Partitioned multi-process resolution with deterministic merges.

The shard subsystem scales :class:`~repro.core.resolver.PowerResolver`
across worker processes without changing a single output byte (exact
mode) or with a principled parallel approximation (independent mode).
Layers, bottom to top:

* :mod:`repro.shard.partition` — connected components of the candidate
  graph, size-capped weak-edge splitting, and LPT bin-packing.
* :mod:`repro.shard.worker` — picklable pure task specs (vector chunks,
  adjacency row blocks, propagation vote slices, independent shard
  loops) plus deterministic fault injection for the executor tests.
* :mod:`repro.shard.executor` — process-pool scheduling with
  largest-first dispatch, per-task timeout/retry, and in-process
  fallback; budget-split helpers for the independent mode.
* :mod:`repro.shard.merge` — associative, shard-order-independent
  reductions of shard results.
* :mod:`repro.shard.resolver` — the :class:`ShardedResolver` facade with
  the same ``resolve(table, ...)`` signature as the serial resolver.

See DESIGN.md §10 for the determinism argument.
"""

from .executor import (
    ExecutorStats,
    ShardExecutor,
    questions_for_cents,
    split_question_budget,
)
from .merge import (
    apply_answer_batch,
    merge_adjacency_blocks,
    merge_independent_outcomes,
    merge_vector_chunks,
    merge_vote_deltas,
    merged_clusters,
)
from .partition import (
    PairShard,
    ShardPlan,
    UnionFind,
    connected_components,
    pack_components,
    plan_pair_shards,
    split_component,
    vertex_slices,
)
from .resolver import SHARD_MODES, ShardedResolver
from .worker import (
    AdjacencyTask,
    FaultSpec,
    IndependentShardTask,
    JoinTask,
    PropagationTask,
    ShardOutcome,
    VectorTask,
    compute_adjacency,
    compute_join_pairs,
    compute_vectors,
    compute_vote_deltas,
    derive_shard_seed,
    resolve_shard,
)

__all__ = [
    "SHARD_MODES",
    "ShardedResolver",
    "ShardExecutor",
    "ExecutorStats",
    "split_question_budget",
    "questions_for_cents",
    "UnionFind",
    "connected_components",
    "split_component",
    "pack_components",
    "plan_pair_shards",
    "PairShard",
    "ShardPlan",
    "vertex_slices",
    "FaultSpec",
    "derive_shard_seed",
    "JoinTask",
    "VectorTask",
    "AdjacencyTask",
    "PropagationTask",
    "IndependentShardTask",
    "ShardOutcome",
    "compute_join_pairs",
    "compute_vectors",
    "compute_adjacency",
    "compute_vote_deltas",
    "resolve_shard",
    "merge_vector_chunks",
    "merge_adjacency_blocks",
    "merge_vote_deltas",
    "apply_answer_batch",
    "merged_clusters",
    "merge_independent_outcomes",
]
