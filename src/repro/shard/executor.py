"""Process-pool scheduling with retries, timeouts, and in-process fallback.

:class:`ShardExecutor` is the scheduling layer of :mod:`repro.shard`: it
runs picklable task specs (from :mod:`repro.shard.worker`) through a
:class:`concurrent.futures.ProcessPoolExecutor` with

* **largest-shard-first dispatch** — tasks are submitted in descending
  weight order (classic LPT), so the heaviest work starts first and the
  tail of the schedule is short;
* **per-task timeout and retry** — a task that raises, times out, or takes
  its worker process down (``BrokenProcessPool``) is re-submitted up to
  ``retries`` times on a (recreated, if necessary) pool;
* **in-process fallback** — a task that exhausts its retries runs inline
  in the coordinator.  Because every task is a pure function of its spec,
  retries and fallbacks are not best-effort recovery: they produce the
  *same bytes* the healthy path would have produced.

``workers=0`` short-circuits to fully inline execution (no processes, no
pickling) — the mode the verification battery and the mutation self-test
use, and the proof obligation that the parallel path's task/merge
decomposition, not multiprocessing luck, carries the equivalence.

The module also hosts the **budget-split** helpers for the independent
execution mode: :func:`split_question_budget` (largest-remainder
proportional split of a global question budget across shards) and
:func:`questions_for_cents` (money → questions via the same
:class:`~repro.engine.budget.BudgetGuard` inversion the engine uses, so
shard budget enforcement can never drift from billing).
"""

from __future__ import annotations

import math
import time
from collections.abc import Callable, Sequence
from concurrent.futures import Future, ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from ..engine.budget import BudgetGuard
from ..exceptions import ConfigurationError
from ..obs import instrument as obs_instrument


class _TracedTask:
    """Picklable wrapper that records a task's spans/metrics in the worker.

    The worker process starts with observability disabled (the coordinator's
    handle is not inherited through pickling), so the wrapper activates a
    fresh handle mirroring the coordinator's flags, runs the task under a
    ``shard.task`` root span, and ships ``(result, spans, registry)`` back.
    The coordinator grafts the spans **in task order** — completion order
    never shows in the merged trace — and folds the registries with the
    order-free metric merge.  Inline execution (``workers=0``, retry
    fallbacks) goes through the same wrapper, so a fallback task's spans
    land in the same place a healthy worker's would.
    """

    __slots__ = ("fn", "tracing", "metrics")

    def __init__(self, fn: Callable, tracing: bool, metrics: bool) -> None:
        self.fn = fn
        self.tracing = tracing
        self.metrics = metrics

    def __call__(self, task):
        obs = obs_instrument.Observability(
            tracing=self.tracing, metrics=self.metrics
        )
        with obs_instrument.activated(obs):
            with obs.tracer.span("shard.task"):
                result = self.fn(task)
        return result, obs.tracer.export(), obs.registry


@dataclass
class ExecutorStats:
    """Fault-handling telemetry for one executor lifetime.

    ``run_seconds`` accumulates the wall time spent inside
    :meth:`ShardExecutor.run`.  With ``workers=0`` (inline execution) it
    is exactly the total task compute time — the *parallelizable seconds*
    of the pipeline — which the scaling benchmark divides by the total
    wall time to measure the Amdahl parallel fraction.
    """

    tasks: int = 0
    retries: int = 0
    timeouts: int = 0
    broken_pools: int = 0
    fallbacks: int = 0
    run_seconds: float = 0.0
    errors: list[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "tasks": self.tasks,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "broken_pools": self.broken_pools,
            "fallbacks": self.fallbacks,
            "run_seconds": round(self.run_seconds, 6),
            "errors": list(self.errors),
        }


class ShardExecutor:
    """Run pure task specs across worker processes, surviving faults.

    Args:
        workers: process-pool size; ``0`` runs every task inline in the
            calling process (deterministic, dependency-free — used by the
            verification battery).
        retries: re-submissions per task before the in-process fallback
            (crashes, exceptions, and timeouts all count as one attempt).
        timeout: per-task seconds before a worker is declared hung and its
            pool is torn down; ``None`` disables the timeout.
        mp_context: :mod:`multiprocessing` start-method name; ``None``
            picks the platform default (``fork`` on Linux, which shares
            the parent's imports for free).
    """

    def __init__(
        self,
        workers: int = 0,
        retries: int = 2,
        timeout: float | None = None,
        mp_context: str | None = None,
    ) -> None:
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        if retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {retries}")
        if timeout is not None and timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0 or None, got {timeout}")
        self.workers = workers
        self.retries = retries
        self.timeout = timeout
        self._mp_context = mp_context
        self._pool: ProcessPoolExecutor | None = None
        self.stats = ExecutorStats()

    # ------------------------------------------------------------------ #
    # Pool lifecycle
    # ------------------------------------------------------------------ #

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            import multiprocessing

            context = (
                multiprocessing.get_context(self._mp_context)
                if self._mp_context
                else None
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context
            )
        return self._pool

    def _teardown_pool(self, kill: bool) -> None:
        """Shut the pool down; *kill* terminates worker processes first.

        Killing is the only way to reclaim a **hung** worker: cancelling a
        running future is a no-op, so a timed-out task would otherwise pin
        its process forever.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if kill:
            processes = getattr(pool, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:  # pragma: no cover - already-dead process
                    pass
        pool.shutdown(wait=not kill, cancel_futures=True)

    def close(self) -> None:
        """Release the worker pool (idempotent)."""
        self._teardown_pool(kill=False)

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Running tasks
    # ------------------------------------------------------------------ #

    def run(
        self,
        fn: Callable,
        tasks: Sequence,
        weights: Sequence[float] | None = None,
    ) -> list:
        """Run ``fn(task)`` for every task; results in **task order**.

        Tasks are dispatched largest-weight-first (ties: task order).  Any
        task failure — exception, worker crash, timeout — is retried up to
        ``retries`` times, then the task runs inline.  The returned list is
        ordered like *tasks* regardless of completion order.
        """
        tasks = list(tasks)
        if weights is not None and len(weights) != len(tasks):
            raise ConfigurationError(
                f"{len(tasks)} tasks but {len(weights)} weights"
            )
        self.stats.tasks += len(tasks)
        if not tasks:
            return []
        obs = obs_instrument.current()
        if obs.enabled:
            fn = _TracedTask(fn, tracing=obs.tracing, metrics=obs.metrics)
        started = time.perf_counter()
        try:
            if self.workers <= 0:
                results = [self._run_inline(fn, task) for task in tasks]
            else:
                order = sorted(
                    range(len(tasks)),
                    key=lambda index: (
                        -(weights[index] if weights is not None else 0),
                        index,
                    ),
                )
                futures: dict[int, Future] = {}
                pool = self._ensure_pool()
                for index in order:
                    futures[index] = pool.submit(fn, tasks[index])
                results = [None] * len(tasks)
                for index in order:
                    results[index] = self._collect(fn, tasks, futures, index)
            if obs.enabled:
                results = self._absorb_traced(obs, results)
            return results
        finally:
            self.stats.run_seconds += time.perf_counter() - started

    def _absorb_traced(self, obs, results: list) -> list:
        """Unwrap ``_TracedTask`` payloads: graft spans, merge registries.

        Iterating *results* walks tasks in task order, so the grafted trace
        and the merged registry are identical no matter which worker
        finished first.
        """
        unwrapped = []
        for index, payload in enumerate(results):
            result, spans, registry = payload
            obs.tracer.graft(spans, task=index)
            if obs.metrics:
                obs.registry.merge(registry)
            unwrapped.append(result)
        return unwrapped

    def _run_inline(self, fn: Callable, task) -> object:
        """Inline execution with the same retry budget as the pool path."""
        attempt = 0
        while True:
            try:
                return fn(task)
            except Exception as error:  # noqa: BLE001 - retried, then raised
                attempt += 1
                if attempt > self.retries:
                    raise
                self.stats.retries += 1
                self.stats.errors.append(f"inline {type(error).__name__}: {error}")

    def _collect(self, fn: Callable, tasks: Sequence, futures: dict, index: int):
        """Await one task's future, retrying / falling back on failure."""
        attempt = 0
        while True:
            try:
                return futures[index].result(timeout=self.timeout)
            except Exception as error:  # noqa: BLE001 - classified below
                attempt += 1
                if isinstance(error, FutureTimeout):
                    self.stats.timeouts += 1
                    # A hung worker never yields its process back; kill the
                    # pool and let in-flight siblings retry on a fresh one.
                    self._teardown_pool(kill=True)
                elif isinstance(error, BrokenProcessPool):
                    self.stats.broken_pools += 1
                    self._teardown_pool(kill=True)
                self.stats.errors.append(f"{type(error).__name__}: {error}")
                if attempt > self.retries:
                    self.stats.fallbacks += 1
                    return fn(tasks[index])  # pure task: inline == worker
                self.stats.retries += 1
                futures[index] = self._ensure_pool().submit(fn, tasks[index])


# --------------------------------------------------------------------------- #
# Budget split (independent mode)
# --------------------------------------------------------------------------- #


def split_question_budget(total: int, loads: Sequence[int]) -> list[int]:
    """Split a global question budget across shards, proportional to load.

    Largest-remainder apportionment: each shard gets
    ``floor(total * load / sum(loads))`` questions, and the leftover
    questions go to the largest fractional remainders (ties: lowest shard
    id).  The split is deterministic and sums exactly to *total*; it is
    not clipped to the per-shard load — a shard's budget may exceed what
    it can ask, matching the serial anytime semantics where an
    over-generous budget is simply not spent.
    """
    if total < 0:
        raise ConfigurationError(f"total budget must be >= 0, got {total}")
    loads = [int(load) for load in loads]
    if any(load < 0 for load in loads):
        raise ConfigurationError(f"loads must be >= 0, got {loads}")
    if not loads:
        return []
    mass = sum(loads)
    if mass == 0:
        return [0] * len(loads)
    raw = [total * load / mass for load in loads]
    split = [math.floor(amount) for amount in raw]
    leftover = total - sum(split)
    remainders = sorted(
        range(len(loads)), key=lambda index: (-(raw[index] - split[index]), index)
    )
    for index in remainders[:leftover]:
        split[index] += 1
    return split


def questions_for_cents(
    max_cents: float,
    pairs_per_hit: int = 10,
    cents_per_hit: int = 10,
    assignments: int = 5,
) -> int:
    """The largest distinct-question count whose bill fits *max_cents*.

    Delegates to :meth:`repro.engine.budget.BudgetGuard.affordable_questions`
    — the inversion of :class:`~repro.crowd.platform.CrowdSession`'s pinned
    pooled-ceiling billing — so a cents budget converted here and enforced
    as a question budget can never overspend nor understate what the
    session would actually bill.
    """
    guard = BudgetGuard(max_cents=max_cents)
    # Large enough to never clip: one HIT per question is the worst case.
    ceiling = int(max_cents) * max(1, pairs_per_hit) + pairs_per_hit
    return guard.affordable_questions(
        asked=0,
        requested=ceiling,
        pairs_per_hit=pairs_per_hit,
        cents_per_hit=cents_per_hit,
        assignments=assignments,
    )


__all__ = [
    "ExecutorStats",
    "ShardExecutor",
    "split_question_budget",
    "questions_for_cents",
]
