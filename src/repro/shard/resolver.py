"""The sharded resolution facade: ``ShardedResolver``.

Drop-in for :class:`~repro.core.resolver.PowerResolver` — same
``resolve(table, session=..., worker_band=...)`` signature, same
:class:`~repro.core.resolver.ResolutionResult` — that spreads the work
across CPU cores through :class:`~repro.shard.executor.ShardExecutor`.
Two execution modes:

* ``mode="exact"`` (default) — **lockstep data parallelism**.  The
  coordinator runs the real selector, RNG, and crowd session in exactly
  the serial order; workers compute the data-parallel pieces (candidate-
  join probe ranges, similarity vector chunks, dominance-adjacency row
  blocks, per-slice inference-vote deltas) whose merges are associative
  and order-free.  The result is
  **bit-identical** to ``PowerResolver.resolve`` — same matches, same
  question transcript, same iteration count, same bill — for *any* shard
  count and *any* worker count, including after worker crashes, timeouts,
  and in-process fallbacks.  This is the mode the
  ``check_shard_equivalence`` differential certifies.
* ``mode="independent"`` — **CrowdER-style component sharding**.  The
  candidate graph is partitioned into connected components, giant
  components are split on their weakest edges under the
  ``shard_max_pairs`` cap, blocks are LPT-packed into balanced shards,
  and each shard runs its own full selection/crowd loop with a seed
  derived from the global seed and the shard id.  Shards never exchange
  inference, so question counts can exceed the serial run's (weak-edge
  cuts forfeit exactly the cross-cut inference) — the trade the paper's
  related work (CrowdER; Mazumdar & Saha's independently-resolvable
  clusters) accepts for horizontal scale.  Results are deterministic and
  schedule-independent, and a global question/money budget is split
  across shards with the same :class:`~repro.engine.budget.BudgetGuard`
  arithmetic the engine uses.
"""

from __future__ import annotations

import math
import os
import time

import numpy as np

from ..core.clustering import clusters_from_matches
from ..core.config import PowerConfig
from ..core.resolver import PowerResolver, ResolutionResult
from ..crowd.platform import CrowdSession
from ..data.ground_truth import true_match_pairs
from ..data.table import Table
from ..exceptions import ConfigurationError, DataError, SelectionError
from ..graph.coloring import ColoringState
from ..graph.dag import OrderedGraph
from ..obs import instrument as obs_instrument
from ..selection.base import SelectionResult
from ..selection.error_tolerant import (
    ErrorPolicy,
    resolve_blue_pairs,
    resolve_undecided_vertices,
)
from .executor import ShardExecutor, questions_for_cents, split_question_budget
from .merge import (
    apply_answer_batch,
    merge_adjacency_blocks,
    merge_independent_outcomes,
    merge_vector_chunks,
    merge_vote_deltas,
    merged_clusters,
)
from .partition import plan_pair_shards, vertex_slices
from .worker import (
    AdjacencyTask,
    IndependentShardTask,
    JoinTask,
    PropagationTask,
    VectorTask,
    compute_adjacency,
    compute_join_pairs,
    compute_vectors,
    compute_vote_deltas,
    derive_shard_seed,
    resolve_shard,
)

#: Execution modes of :class:`ShardedResolver`.
SHARD_MODES = ("exact", "independent")


class ShardedResolver(PowerResolver):
    """Multi-process Power/Power+ with a deterministic merge.

    Args:
        config: the pipeline configuration; ``config.shards`` sets the
            number of shard work units (``None`` → one per worker),
            ``config.shard_max_pairs`` the independent-mode component size
            cap, ``config.shard_retries`` the per-task retry budget.
        workers: worker-process count; ``0`` runs every task inline (no
            processes — deterministic and dependency-free, the mode the
            verification battery uses); ``None`` → ``min(shards,
            cpu_count)``.
        mode: ``"exact"`` (bit-identical lockstep, default) or
            ``"independent"`` (per-shard full loops, CrowdER-style).
        timeout: per-task seconds before a worker is declared hung;
            ``None`` disables.
        mp_context: multiprocessing start method (``None`` = platform
            default).
    """

    def __init__(
        self,
        config: PowerConfig | None = None,
        workers: int | None = None,
        mode: str = "exact",
        timeout: float | None = None,
        mp_context: str | None = None,
    ) -> None:
        super().__init__(config)
        if mode not in SHARD_MODES:
            raise ConfigurationError(
                f"mode must be one of {SHARD_MODES}, got {mode!r}"
            )
        if workers is not None and workers < 0:
            raise ConfigurationError(f"workers must be >= 0 or None, got {workers}")
        self.mode = mode
        self.timeout = timeout
        self.mp_context = mp_context
        if workers is None:
            limit = os.cpu_count() or 1
            workers = min(self.config.shards or limit, limit)
        self.workers = workers

    #: The sharded join is tiled by record ranges
    #: (:func:`repro.similarity.join.similar_pairs_range`), and the sparse
    #: join has no range form — the planner must not choose it here.
    _plan_allows_sparse = False

    @property
    def num_shards(self) -> int:
        """Shard work units: ``config.shards``, else one per worker."""
        return self.config.shards or max(1, self.workers)

    def _executor(self) -> ShardExecutor:
        return ShardExecutor(
            workers=self.workers,
            retries=self.config.shard_retries,
            timeout=self.timeout,
            mp_context=self.mp_context,
        )

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #

    def resolve(
        self,
        table: Table,
        session: CrowdSession | None = None,
        worker_band: str | tuple[float, float] = "90",
        engine=None,
        budget: int | None = None,
        max_cents: float | None = None,
    ) -> ResolutionResult:
        """Run the sharded pipeline on *table*.

        Args:
            table / session / worker_band: as
                :meth:`PowerResolver.resolve`.
            engine: not supported on the sharded path (the engine's event
                loop is a different concurrency story); pass the engine to
                the serial resolver instead.
            budget: optional global cap on distinct crowd questions.
            max_cents: optional global money cap, converted to a question
                budget through the
                :class:`~repro.engine.budget.BudgetGuard` billing
                inversion and combined with *budget* (the tighter wins).
        """
        if engine is not None:
            raise ConfigurationError(
                "ShardedResolver does not drive the event engine; use "
                "PowerResolver(engine=...) for fault-simulation runs"
            )
        planned, plan = self._planned_clone(table)
        if plan is not None:
            result = planned.resolve(
                table, session, worker_band, engine, budget, max_cents
            )
            self.last_plan = plan
            result.selection.extras["plan"] = plan.to_payload()
            return result
        if max_cents is not None:
            affordable = questions_for_cents(
                max_cents, assignments=self.config.assignments
            )
            budget = affordable if budget is None else min(budget, affordable)
        if self.mode == "independent":
            return self._resolve_independent(table, session, worker_band, budget)
        return self._resolve_exact(table, session, worker_band, budget)

    # ------------------------------------------------------------------ #
    # Exact lockstep mode
    # ------------------------------------------------------------------ #

    def _resolve_exact(
        self,
        table: Table,
        session: CrowdSession | None,
        worker_band: str | tuple[float, float],
        budget: int | None,
    ) -> ResolutionResult:
        timings: dict[str, float] = {}
        obs = obs_instrument.current()
        tracer = obs.tracer
        with self._executor() as executor, tracer.span(
            "shard.resolve",
            dataset=table.name,
            mode="exact",
            shards=self.num_shards,
            workers=self.workers,
        ):
            # Stage 1: the candidate similarity join, tiled by probe-record
            # ranges (the join dominates large-table wall time).
            started = time.perf_counter()
            with tracer.span("shard.join"):
                pairs = self._parallel_candidate_pairs(table, executor)
            timings["join"] = time.perf_counter() - started
            if not pairs:
                raise DataError(
                    f"no candidate pairs survive pruning at threshold "
                    f"{self.config.pruning_threshold} on table {table.name!r}"
                )
            # Stage 2: similarity vectors, chunked by pair ranges.
            started = time.perf_counter()
            with tracer.span("shard.vectors", pairs=len(pairs)):
                similarity = self.similarity_config(table)
                chunks = [
                    VectorTask(
                        start=lo,
                        pairs=tuple(pairs[lo:hi]),
                        table=table,
                        config=similarity,
                        use_batch=self.config.use_batch_similarity,
                    )
                    for lo, hi in vertex_slices(len(pairs), self.num_shards)
                ]
                vectors = merge_vector_chunks(
                    executor.run(
                        compute_vectors, chunks, weights=[len(c.pairs) for c in chunks]
                    )
                )
            timings["vectors"] = time.perf_counter() - started

            # Stage 3: the (grouped) graph, with adjacency built in
            # parallel row blocks and attached to the graph's cache.
            started = time.perf_counter()
            with tracer.span("shard.graph"):
                graph = self.build_graph(table, pairs, vectors=vectors)
                self._attach_parallel_adjacency(graph, executor)
            timings["graph"] = time.perf_counter() - started

            # Stage 4: the lockstep selection loop.
            if session is None:
                session = self.simulated_crowd(table, pairs, worker_band).session()
            started = time.perf_counter()
            with tracer.span("shard.selection"):
                selection = self._run_lockstep(graph, session, executor, budget)
            timings["selection"] = time.perf_counter() - started
            for stage, seconds in timings.items():
                obs_instrument.record_stage_seconds(
                    obs, f"shard.{stage}", seconds, dataset=table.name
                )
            obs_instrument.record_executor_stats(obs, executor.stats.as_dict())
            selection.extras["shard"] = {
                "mode": "exact",
                "shards": self.num_shards,
                "workers": self.workers,
                "timings": timings,
                "executor": executor.stats.as_dict(),
            }
        matches = selection.matches
        clusters = clusters_from_matches(len(table), matches)
        quality = None
        if table.has_ground_truth():
            from ..core.metrics import pairwise_quality

            quality = pairwise_quality(matches, true_match_pairs(table))
        return ResolutionResult(
            table_name=table.name,
            candidate_pairs=pairs,
            selection=selection,
            matches=matches,
            clusters=clusters,
            quality=quality,
        )

    def _parallel_candidate_pairs(
        self, table: Table, executor: ShardExecutor
    ) -> list:
        """The pruning join of §7.1, tiled by probe-record ranges.

        Every pair ``(a, b)`` with ``a < b`` is owned by its higher record
        id; a range task emits exactly the pairs owned by its records
        (:func:`repro.similarity.join.similar_pairs_range`), so the sorted
        concatenation over a disjoint covering tiling *is* the serial
        ``candidate_pairs`` output, pair for pair.  Ranges are cut on a
        square-root grid (record ``b`` probes ``O(b)`` earlier records, so
        equal-work tiles have equal ``hi² - lo²``), and dispatch weights
        carry the same quadratic estimate for the LPT scheduler.

        Falls back to the serial join when the table is trivial, when the
        plan has a single shard, or when the configured method is
        ``"sparse"`` (one global matrix product — no range form).  With
        ``workers=0`` the tiles still run (inline), so the equivalence
        differential attacks the tiling decomposition itself.
        """
        from ..similarity.join import AUTO_PREFIX_CROSSOVER

        method = self.config.join_method
        if method == "auto":
            method = "prefix" if len(table) > AUTO_PREFIX_CROSSOVER else "naive"
        if method == "sparse" or self.num_shards <= 1 or len(table) < 2:
            return self.candidate_pairs(table)
        boundaries = sorted(
            {
                round(len(table) * math.sqrt(step / self.num_shards))
                for step in range(self.num_shards + 1)
            }
            | {0, len(table)}
        )
        ranges = [
            (lo, hi)
            for lo, hi in zip(boundaries, boundaries[1:])
            if lo < hi
        ]
        tasks = [
            JoinTask(
                table=table,
                threshold=self.config.pruning_threshold,
                lo=lo,
                hi=hi,
                tokens=self.config.join_tokens,
                method=method,
            )
            for lo, hi in ranges
        ]
        chunks = executor.run(
            compute_join_pairs,
            tasks,
            weights=[float(hi * hi - lo * lo) for lo, hi in ranges],
        )
        merged: list = []
        for chunk in chunks:
            merged.extend(chunk)
        merged.sort()
        return merged

    def _attach_parallel_adjacency(
        self, graph: OrderedGraph, executor: ShardExecutor
    ) -> None:
        """Build ``graph.adjacency()`` from parallel row blocks.

        Concatenating per-range outputs of the blocked kernel in row order
        is exactly the full-range output (each row's children are computed
        independently of the tiling), so the cached adjacency is
        bit-identical to what the serial path would build lazily.
        """
        operands = graph._dominance_operands()
        if operands is None or len(graph) == 0:
            return
        dominant, dominated = operands
        tasks = [
            AdjacencyTask(dominant=dominant, dominated=dominated, lo=lo, hi=hi)
            for lo, hi in vertex_slices(len(graph), self.num_shards)
        ]
        blocks = executor.run(
            compute_adjacency, tasks, weights=[task.hi - task.lo for task in tasks]
        )
        graph._adjacency = merge_adjacency_blocks(blocks, len(graph))

    def _run_lockstep(
        self,
        graph: OrderedGraph,
        session: CrowdSession,
        executor: ShardExecutor,
        budget: int | None = None,
    ) -> SelectionResult:
        """The serial ask/color loop with parallel inference propagation.

        Mirrors :meth:`repro.selection.base.QuestionSelector.run` statement
        for statement — same selector, same RNG consumption order, same
        session, same guard and budget semantics — except that each crowd
        round's vote propagation is computed as per-slice deltas in the
        workers and merged through :func:`merge_vote_deltas` /
        :func:`apply_answer_batch` (proven equivalent to the serial
        one-answer-at-a-time engine; see those docstrings).
        """
        if budget is not None and budget < 0:
            raise SelectionError(f"budget must be >= 0, got {budget}")
        obs = obs_instrument.current()
        tracer = obs.tracer
        selector = self.make_selector()
        selector.reset()
        rng = np.random.default_rng(selector.seed)
        state = ColoringState(graph)
        operands = graph._dominance_operands()
        slices = vertex_slices(len(graph), self.num_shards) if len(graph) else []
        threshold = (
            selector.error_policy.confidence_threshold
            if selector.error_policy
            else None
        )
        assignment_time = 0.0
        propagate_seconds = 0.0
        rounds = 0
        guard = 0
        per_round: list[dict] = []
        while not state.is_complete():
            remaining = None if budget is None else budget - session.questions_asked
            if remaining is not None and remaining <= 0:
                break
            guard += 1
            if guard > 10 * len(graph) + 10:
                raise SelectionError(
                    f"{selector.name}: no progress after {guard} iterations"
                )
            with tracer.span("selection.round", round=rounds) as round_span:
                colored_before = len(state.uncolored())
                timer = time.perf_counter()
                vertices = selector.select(graph, state, rng)
                cover_seconds = time.perf_counter() - timer
                assignment_time += cover_seconds
                vertices = [v for v in vertices if state.colors[v] == 0]
                if not vertices:
                    raise SelectionError(
                        f"{selector.name}: selected no uncolored vertices while "
                        f"{len(state.uncolored())} remain"
                    )
                if remaining is not None:
                    vertices = vertices[:remaining]
                vertices = obs_instrument.observe_round(
                    obs, selector.name, rounds, vertices, cover_seconds
                )
                questions = {
                    vertex: graph.representative_pair(vertex, rng)
                    for vertex in vertices
                }
                answers = session.ask_batch(questions.values())
                answered: list[tuple[int, bool | None]] = []
                for vertex, pair in questions.items():
                    outcome = answers[pair]
                    if threshold is not None and outcome.confidence < threshold:
                        answered.append((vertex, None))
                    else:
                        answered.append((vertex, bool(outcome.answer)))
                timer = time.perf_counter()
                self._propagate_batch(
                    graph, state, executor, operands, slices, answered
                )
                round_propagate = time.perf_counter() - timer
                propagate_seconds += round_propagate
                newly_colored = colored_before - len(state.uncolored())
                round_span.set_attribute("asked", len(vertices))
                round_span.set_attribute("colored", newly_colored)
                per_round.append(
                    {
                        "round": rounds,
                        "asked": len(vertices),
                        "colored": newly_colored,
                        "cover_seconds": cover_seconds,
                        "propagate_seconds": round_propagate,
                    }
                )
            rounds += 1
        labels = state.pair_labels()
        fallback_policy = selector.error_policy or ErrorPolicy()
        if selector.error_policy is not None:
            labels.update(resolve_blue_pairs(graph, state, selector.error_policy))
        uncolored = state.uncolored()
        if uncolored.size:
            labels.update(
                resolve_undecided_vertices(graph, state, uncolored, fallback_policy)
            )
        telemetry = {
            "cover_seconds": assignment_time,
            "propagate_seconds": propagate_seconds,
            "rounds": rounds,
            "incremental": selector.incremental and graph.reachability is not None,
            "per_round": per_round,
        }
        engine_stats = selector._selection_stats()
        if engine_stats is not None:
            telemetry["engine"] = engine_stats
        obs_instrument.record_selection_metrics(obs, selector.name, telemetry)
        return SelectionResult(
            name=selector.name,
            labels=labels,
            questions=session.questions_asked,
            iterations=session.iterations,
            assignment_time=assignment_time,
            state=state,
            cost_cents=session.cost_cents,
            extras={"selection": telemetry},
        )

    def _propagate_batch(
        self,
        graph: OrderedGraph,
        state: ColoringState,
        executor: ShardExecutor,
        operands: tuple[np.ndarray, np.ndarray] | None,
        slices: list[tuple[int, int]],
        answered: list[tuple[int, bool | None]],
    ) -> None:
        """Apply one round's answers with shard-parallel vote propagation."""
        green = [vertex for vertex, answer in answered if answer is True]
        red = [vertex for vertex, answer in answered if answer is False]
        if operands is None or not slices or not (green or red):
            # No operand form (custom graph) or a BLUE-only round: the
            # serial engine is already the fastest correct path.
            for vertex, answer in answered:
                if answer is None:
                    state.mark_blue(vertex)
                else:
                    state.apply_answer(vertex, answer)
            return
        dominant, dominated = operands
        tasks = [
            PropagationTask(
                dominant_block=dominant[lo:hi],
                dominated_block=dominated[lo:hi],
                lo=lo,
                green_vertices=tuple(green),
                green_rows=dominated[green],
                red_vertices=tuple(red),
                red_rows=dominant[red],
            )
            for lo, hi in slices
        ]
        deltas = executor.run(
            compute_vote_deltas, tasks, weights=[len(t.dominant_block) for t in tasks]
        )
        green_delta, red_delta = merge_vote_deltas(deltas, len(graph))
        apply_answer_batch(state, answered, green_delta, red_delta)

    # ------------------------------------------------------------------ #
    # Independent mode
    # ------------------------------------------------------------------ #

    def _pair_weights(self, table: Table, pairs: list) -> np.ndarray:
        """Record-level Jaccard per candidate pair (weak-edge weights)."""
        from ..similarity.batch import TokenIndex
        from ..similarity.tokenize import qgram_tokens, word_tokens

        texts = [table.record_text(record) for record in range(len(table))]
        tokenizer = qgram_tokens if self.config.join_tokens == "qgram" else word_tokens
        index = TokenIndex(texts, tokenizer)
        left = np.fromiter((pair[0] for pair in pairs), dtype=np.int64, count=len(pairs))
        right = np.fromiter((pair[1] for pair in pairs), dtype=np.int64, count=len(pairs))
        return index.jaccard_pairs(left, right)

    def _resolve_independent(
        self,
        table: Table,
        session: CrowdSession | None,
        worker_band: str | tuple[float, float],
        budget: int | None,
    ) -> ResolutionResult:
        if session is not None:
            raise ConfigurationError(
                "independent mode builds one simulated crowd per shard from "
                "ground truth; an external session cannot be split — use "
                "mode='exact' (which shares your session) instead"
            )
        if not table.has_ground_truth():
            raise DataError(
                f"table {table.name!r} has no ground truth; independent-mode "
                "shards need it to simulate their crowds"
            )
        timings: dict[str, float] = {}
        started = time.perf_counter()
        pairs = self.candidate_pairs(table)
        if not pairs:
            raise DataError(
                f"no candidate pairs survive pruning at threshold "
                f"{self.config.pruning_threshold} on table {table.name!r}"
            )
        weights = self._pair_weights(table, pairs)
        max_pairs = self.config.shard_max_pairs
        if max_pairs is None:
            max_pairs = max(1, math.ceil(len(pairs) / self.num_shards))
        plan = plan_pair_shards(
            pairs, self.num_shards, weights=weights, max_pairs=max_pairs
        )
        timings["partition"] = time.perf_counter() - started

        budgets: list[int | None] = [None] * len(plan)
        if budget is not None:
            budgets = list(split_question_budget(budget, plan.pair_counts))
        tasks = [
            IndependentShardTask(
                shard_id=shard.shard_id,
                table=table,
                pairs=shard.pairs,
                config=self.config,
                worker_band=worker_band,
                seed=derive_shard_seed(self.config.seed, shard.shard_id),
                budget=budgets[index],
            )
            for index, shard in enumerate(plan.shards)
        ]
        obs = obs_instrument.current()
        started = time.perf_counter()
        with self._executor() as executor, obs.tracer.span(
            "shard.resolve",
            dataset=table.name,
            mode="independent",
            shards=len(plan),
            workers=self.workers,
        ):
            outcomes = executor.run(
                resolve_shard, tasks, weights=[len(task.pairs) for task in tasks]
            )
            stats = executor.stats.as_dict()
            obs_instrument.record_executor_stats(obs, stats)
        timings["shards"] = time.perf_counter() - started
        selection = merge_independent_outcomes(
            outcomes,
            selector_name=self.config.selector,
            assignments=self.config.assignments,
        )
        selection.extras["shard"] = {
            "mode": "independent",
            "shards": len(plan),
            "workers": self.workers,
            "components": plan.num_components,
            "split_components": plan.split_components,
            "pair_counts": plan.pair_counts,
            "budgets": budgets,
            "timings": timings,
            "executor": stats,
        }
        matches = selection.matches
        clusters = merged_clusters(len(table), outcomes)
        from ..core.metrics import pairwise_quality

        quality = pairwise_quality(matches, true_match_pairs(table))
        return ResolutionResult(
            table_name=table.name,
            candidate_pairs=pairs,
            selection=selection,
            matches=matches,
            clusters=clusters,
            quality=quality,
        )


__all__ = ["SHARD_MODES", "ShardedResolver"]
