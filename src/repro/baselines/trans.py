"""Trans: transitivity-based crowdsourced ER (Wang et al., SIGMOD 2013).

Candidate pairs are processed in descending similarity order.  A pair whose
answer is already implied — its records share a cluster (positive
transitivity) or their clusters carry a "different entity" constraint
(negative transitivity) — is deduced for free; everything else goes to the
crowd.  Questions are grouped into record-disjoint batches so rounds can
run in parallel, which is what gives Trans its moderate iteration counts in
the paper's Fig. 11/14.

The method's known weakness, which the paper's evaluation leans on: one
wrong Yes merges two clusters and every subsequent deduction inside the
merged cluster inherits the error ("incorrect deduction and uncontrollable
error propagation").  No error tolerance is attempted, faithfully.
"""

from __future__ import annotations

import numpy as np

from ..crowd.platform import CrowdSession
from ..data.ground_truth import Pair
from .base import BaselineResolver, independent_batches
from .union_find import ConstrainedClusters


class TransResolver(BaselineResolver):
    """Transitivity baseline: ask only non-inferable pairs, most similar first."""

    name = "trans"

    def _resolve(
        self, pairs: list[Pair], scores: np.ndarray, session: CrowdSession
    ) -> dict[Pair, bool]:
        order = np.argsort(-scores, kind="stable")
        ordered = [pairs[int(index)] for index in order]
        num_records = 1 + max(max(pair) for pair in ordered) if ordered else 0
        state = ConstrainedClusters(num_records)
        pending = ordered
        while pending:
            # Deduce whatever the current knowledge implies, keep the rest.
            to_ask = [pair for pair in pending if not state.inferable(pair)]
            if not to_ask:
                break
            batch = independent_batches(to_ask)[0]
            answers = session.ask_batch(batch)
            for pair in batch:
                if answers[pair].answer:
                    state.record_yes(*pair)
                else:
                    state.record_no(*pair)
            asked = set(batch)
            pending = [pair for pair in to_ask if pair not in asked]
        return {pair: state.label(pair) for pair in pairs}
