"""GCER: probabilistic question selection (Whang et al., PVLDB 2013).

Clean-room implementation of the published idea: every candidate pair
carries a match probability (here calibrated directly from its record-level
similarity), and each iteration greedily asks the batch of questions with
the highest expected benefit — uncertainty ``p(1-p)`` — under a fixed total
budget, 100 questions per iteration as in the Power paper's setup (§7.2).
Crowd answers are propagated with transitivity (positive and negative);
whatever the budget leaves unresolved is labeled by thresholding its
probability.

Like Trans, GCER takes the voted answer at face value, so wrong answers
propagate — the behaviour behind its low quality with low-accuracy workers
in Fig. 12.
"""

from __future__ import annotations

import numpy as np

from ..crowd.platform import CrowdSession
from ..data.ground_truth import Pair
from ..exceptions import ConfigurationError
from .base import BaselineResolver
from .union_find import ConstrainedClusters


class GCERResolver(BaselineResolver):
    """Budgeted probabilistic selection baseline.

    Args:
        budget: maximum questions; the Power paper sets this to the largest
            question count among the baselines ("we set this parameter the
            same as ACD").  None resolves every pair.
        batch_size: questions per iteration (paper: 100).
    """

    name = "gcer"

    def __init__(self, budget: int | None = None, batch_size: int = 100) -> None:
        if budget is not None and budget < 0:
            raise ConfigurationError(f"budget must be >= 0, got {budget}")
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        self.budget = budget
        self.batch_size = batch_size

    @staticmethod
    def _probabilities(scores: np.ndarray) -> np.ndarray:
        """Calibrate similarities into match probabilities.

        A min-max rescale keeps the ordering (all the selection strategy
        uses) while spreading the mass over [0, 1]; degenerate inputs fall
        back to the raw scores.
        """
        low, high = float(scores.min()), float(scores.max())
        if high - low < 1e-12:
            return np.clip(scores, 0.0, 1.0)
        return (scores - low) / (high - low)

    def _resolve(
        self, pairs: list[Pair], scores: np.ndarray, session: CrowdSession
    ) -> dict[Pair, bool]:
        if not pairs:
            return {}
        probabilities = self._probabilities(scores)
        num_records = 1 + max(max(pair) for pair in pairs)
        state = ConstrainedClusters(num_records)
        resolved: set[Pair] = set()
        asked = 0
        # Expected benefit of asking: the uncertainty p(1-p).
        benefit = probabilities * (1.0 - probabilities)
        order = list(np.argsort(-benefit, kind="stable"))
        while True:
            budget_left = None if self.budget is None else self.budget - asked
            if budget_left is not None and budget_left <= 0:
                break
            batch: list[Pair] = []
            for index in order:
                pair = pairs[int(index)]
                if pair in resolved:
                    continue
                if state.inferable(pair):
                    resolved.add(pair)
                    continue
                batch.append(pair)
                if len(batch) >= self.batch_size or (
                    budget_left is not None and len(batch) >= budget_left
                ):
                    break
            if not batch:
                break
            answers = session.ask_batch(batch)
            asked += len(batch)
            for pair in batch:
                resolved.add(pair)
                if answers[pair].answer:
                    state.record_yes(*pair)
                else:
                    state.record_no(*pair)
        labels: dict[Pair, bool] = {}
        for index, pair in enumerate(pairs):
            if state.inferable(pair):
                labels[pair] = state.same(*pair)
            else:
                labels[pair] = bool(probabilities[index] > 0.5)
        return labels
