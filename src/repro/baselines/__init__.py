"""Baseline crowd-ER algorithms: Trans, ACD, GCER (+ union-find substrate)."""

from .acd import ACDResolver
from .base import BaselineResolver, independent_batches
from .crowder import CrowdERResolver
from .gcer import GCERResolver
from .node_priority import NodePriorityResolver
from .trans import TransResolver
from .union_find import ConstrainedClusters, UnionFind

BASELINES = {
    "trans": TransResolver,
    "acd": ACDResolver,
    "gcer": GCERResolver,
    "crowder": CrowdERResolver,
    "node-priority": NodePriorityResolver,
}

__all__ = [
    "ACDResolver",
    "BASELINES",
    "BaselineResolver",
    "CrowdERResolver",
    "NodePriorityResolver",
    "ConstrainedClusters",
    "GCERResolver",
    "TransResolver",
    "UnionFind",
    "independent_batches",
]
