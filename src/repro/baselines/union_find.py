"""Union-find with negative constraints — the substrate of Trans/ACD/GCER.

Transitivity-based crowd ER maintains two kinds of knowledge: *positive*
("these records are the same entity" — an equivalence, stored as disjoint
sets) and *negative* ("these clusters are different entities" — constraints
between set representatives, merged when sets merge).  A pair is *inferable*
when either relation already connects its records.
"""

from __future__ import annotations

from collections import defaultdict

from ..data.ground_truth import Pair
from ..exceptions import DataError


class UnionFind:
    """Disjoint sets over ``range(n)`` with union by size + path compression."""

    def __init__(self, size: int) -> None:
        if size < 0:
            raise DataError(f"size must be >= 0, got {size}")
        self._parent = list(range(size))
        self._size = [1] * size

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, item: int) -> int:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: int, b: int) -> int:
        """Merge the sets of *a* and *b*; return the surviving root."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return root_a
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        return root_a

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def clusters(self) -> dict[int, list[int]]:
        """Map each root to the sorted members of its set."""
        members: dict[int, list[int]] = defaultdict(list)
        for item in range(len(self._parent)):
            members[self.find(item)].append(item)
        return dict(members)


class ConstrainedClusters:
    """Union-find plus "different entity" constraints between clusters.

    This is the inference state of transitivity-based crowd ER: a Yes answer
    merges two clusters (carrying both sides' negative constraints along);
    a No answer adds a constraint between the two current clusters.
    """

    def __init__(self, size: int) -> None:
        self.sets = UnionFind(size)
        self._enemies: dict[int, set[int]] = defaultdict(set)

    def same(self, a: int, b: int) -> bool:
        """True when the records are known to refer to the same entity."""
        return self.sets.connected(a, b)

    def different(self, a: int, b: int) -> bool:
        """True when the records are known to refer to different entities."""
        return self.sets.find(b) in self._enemies[self.sets.find(a)]

    def inferable(self, pair: Pair) -> bool:
        return self.same(*pair) or self.different(*pair)

    def record_yes(self, a: int, b: int) -> None:
        """Apply a positive crowd answer (merge, carrying constraints)."""
        root_a, root_b = self.sets.find(a), self.sets.find(b)
        if root_a == root_b:
            return
        survivor = self.sets.union(root_a, root_b)
        absorbed = root_b if survivor == root_a else root_a
        for enemy in self._enemies.pop(absorbed, set()):
            self._enemies[enemy].discard(absorbed)
            if enemy != survivor:
                self._enemies[enemy].add(survivor)
                self._enemies[survivor].add(enemy)

    def record_no(self, a: int, b: int) -> None:
        """Apply a negative crowd answer (constrain the two clusters)."""
        root_a, root_b = self.sets.find(a), self.sets.find(b)
        if root_a == root_b:
            return  # Contradicts earlier positives; positives win here.
        self._enemies[root_a].add(root_b)
        self._enemies[root_b].add(root_a)

    def label(self, pair: Pair) -> bool:
        """Final decision for a pair: match iff in the same cluster."""
        return self.same(*pair)
