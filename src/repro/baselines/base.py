"""Shared interface for the baseline crowd-ER algorithms (§2.2, §7.1).

Baselines consume the same inputs as Power — the candidate pairs, a score
per pair, and a :class:`~repro.crowd.platform.CrowdSession` — and produce
the same :class:`~repro.selection.base.SelectionResult`, so the experiment
harness treats all five algorithms uniformly.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

import numpy as np

from ..crowd.platform import CrowdSession
from ..data.ground_truth import Pair
from ..exceptions import ConfigurationError
from ..selection.base import SelectionResult


class BaselineResolver(ABC):
    """A crowd-ER baseline: decides which pairs to ask and how to infer."""

    name: str = "baseline"

    def run(
        self, pairs: list[Pair], scores: np.ndarray, session: CrowdSession
    ) -> SelectionResult:
        """Resolve the candidate *pairs*, asking the crowd via *session*.

        Args:
            pairs: candidate record pairs (already similarity-pruned).
            scores: one record-level similarity per pair, used for question
                ordering / match-probability estimates.
            session: the crowd ledger for this run.
        """
        scores = np.asarray(scores, dtype=np.float64)
        if scores.shape != (len(pairs),):
            raise ConfigurationError(
                f"scores shape {scores.shape} does not match {len(pairs)} pairs"
            )
        started = time.perf_counter()
        labels = self._resolve(pairs, scores, session)
        elapsed = time.perf_counter() - started
        return SelectionResult(
            name=self.name,
            labels=labels,
            questions=session.questions_asked,
            iterations=session.iterations,
            assignment_time=elapsed,
            state=None,
            cost_cents=session.cost_cents,
        )

    @abstractmethod
    def _resolve(
        self, pairs: list[Pair], scores: np.ndarray, session: CrowdSession
    ) -> dict[Pair, bool]:
        """Algorithm body: return a match decision for every candidate pair."""


def independent_batches(
    ordered: list[Pair], batch_limit: int | None = None
) -> list[list[Pair]]:
    """Greedy record-disjoint batching for parallel crowdsourcing.

    Two questions can safely be asked in the same round only if no answer to
    one could make the other inferable; sharing no record is the standard
    sufficient condition (used by the transitivity-join line of work).  The
    scan preserves the given (similarity) order.
    """
    batches: list[list[Pair]] = []
    remaining = list(ordered)
    while remaining:
        used: set[int] = set()
        batch: list[Pair] = []
        deferred: list[Pair] = []
        for pair in remaining:
            i, j = pair
            if i in used or j in used or (
                batch_limit is not None and len(batch) >= batch_limit
            ):
                deferred.append(pair)
            else:
                batch.append(pair)
                used.update(pair)
        batches.append(batch)
        remaining = deferred
    return batches
