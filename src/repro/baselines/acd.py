"""ACD: adaptive crowd-based deduplication (Wang, Xiao & Lee, SIGMOD 2015).

Clean-room implementation from the published description (§2.2.1 of the
Power paper): (1) prune dissimilar pairs; (2) ask selected pairs and build
an initial clustering from the answers; (3) *refine* — ask additional pairs,
check whether their answers are consistent with the clusters, and adjust
the clusters based on the inconsistencies.

Concretely:

* **Phase 1 (collection)** — sweep the candidate pairs in descending
  similarity order in record-disjoint parallel batches, asking every pair
  not already implied by positive transitivity.  Unlike Trans, negative
  answers are *not* used for inference, so almost every cross-cluster pair
  is answered directly — the redundancy that powers the refinement.
* **Phase 2 (reclustering)** — rebuild the clusters from *all* observed
  answers at once: each record joins the cluster with the highest net
  (+yes/−no) evidence.  A single wrong Yes between two well-attested
  clusters is outvoted instead of merging them, which is exactly why ACD
  stays accurate with low-quality workers (paper Fig. 12) while Trans
  collapses.
* **Phase 3 (consistency refinement)** — a few local-move rounds: records
  are re-placed wherever their net evidence is highest; unobserved
  within-cluster pairs are asked (budgeted per record) so thin clusters
  gain evidence; repeat until stable.

The behaviour the comparison depends on: ACD asks the most questions of
all methods (Fig. 10/13) and is the most error-tolerant baseline (Fig. 12),
but cannot help on datasets with tiny clusters (Restaurant) where no
redundant evidence exists — both observations from the paper hold.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..crowd.platform import CrowdSession
from ..data.ground_truth import Pair
from ..exceptions import ConfigurationError
from .base import BaselineResolver
from .union_find import UnionFind


class ACDResolver(BaselineResolver):
    """Cluster-refinement baseline: expensive but error-tolerant.

    Args:
        verify_per_record: extra within-cluster questions budgeted per
            cluster member during each refinement round.
        refinement_rounds: maximum local-move rounds (converges earlier).
        budget: optional cap on total questions; None means unbounded.
        prior_weight: weight of the similarity prior relative to one
            unanimous crowd answer when scoring cluster membership (the
            probability model of the original system).
        batch_size: questions per collection round (one HIT wave); unlike
            Trans, ACD does not require record-disjoint rounds because it
            wants the redundant answers anyway.
        seed: RNG seed for sampling verification pairs.
    """

    name = "acd"

    def __init__(
        self,
        verify_per_record: int = 2,
        refinement_rounds: int = 3,
        budget: int | None = None,
        prior_weight: float = 1.0,
        batch_size: int = 500,
        seed: int = 0,
    ) -> None:
        if verify_per_record < 0:
            raise ConfigurationError(
                f"verify_per_record must be >= 0, got {verify_per_record}"
            )
        if refinement_rounds < 0:
            raise ConfigurationError(
                f"refinement_rounds must be >= 0, got {refinement_rounds}"
            )
        if budget is not None and budget < 0:
            raise ConfigurationError(f"budget must be >= 0, got {budget}")
        if prior_weight < 0:
            raise ConfigurationError(f"prior_weight must be >= 0, got {prior_weight}")
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        self.verify_per_record = verify_per_record
        self.refinement_rounds = refinement_rounds
        self.budget = budget
        self.prior_weight = prior_weight
        self.batch_size = batch_size
        self.seed = seed

    def _resolve(
        self, pairs: list[Pair], scores: np.ndarray, session: CrowdSession
    ) -> dict[Pair, bool]:
        if not pairs:
            return {}
        rng = np.random.default_rng(self.seed)
        order = np.argsort(-scores, kind="stable")
        ordered = [pairs[int(index)] for index in order]
        num_records = 1 + max(max(pair) for pair in ordered)
        observed: dict[Pair, tuple[bool, float]] = {}
        # Similarity prior in [-1, 1]: ACD's probability model.  Crowd votes
        # are weighted by their confidence, so the prior can veto a shaky
        # 3-of-5 Yes on a wildly implausible pair (crucial on datasets with
        # tiny clusters, where no redundant crowd evidence exists to outvote
        # it) while a confident answer always beats the prior.
        low, high = float(scores.min()), float(scores.max())
        spread = (high - low) or 1.0
        calibrated = (scores - low) / spread
        prior = {
            pair: float(2.0 * p_hat - 1.0)
            for pair, p_hat in zip(pairs, calibrated)
        }

        def vote(pair: Pair) -> float:
            answer, confidence = observed[pair]
            # Confidence 0.5 (a coin-flip crowd) contributes nothing; a
            # unanimous answer contributes +/-2, out-of-reach of the prior.
            strength = 2.0 * (2.0 * confidence - 1.0)
            answer_vote = strength if answer else -strength
            return answer_vote + self.prior_weight * prior[pair]

        def remaining_budget() -> int | None:
            if self.budget is None:
                return None
            return max(0, self.budget - len(observed))

        def ask_all(batch: list[Pair]) -> list[Pair]:
            fresh = [pair for pair in batch if pair not in observed]
            cap = remaining_budget()
            if cap is not None:
                fresh = fresh[:cap]
            if not fresh:
                return []
            for pair, outcome in session.ask_batch(fresh).items():
                observed[pair] = (outcome.answer, outcome.confidence)
            return fresh

        # ---------------- Phase 1: collection ---------------- #
        positives = UnionFind(num_records)
        pending = list(ordered)
        while pending and (remaining_budget() is None or remaining_budget() > 0):
            to_ask = [
                pair for pair in pending if not positives.connected(*pair)
            ]
            if not to_ask:
                break
            batch = set(ask_all(to_ask[: self.batch_size]))
            if not batch:
                break
            for pair in batch:
                if observed[pair][0]:
                    positives.union(*pair)
            pending = [pair for pair in to_ask if pair not in batch]

        # ---------------- Phase 2: evidence reclustering ---------------- #
        incident: dict[int, list[Pair]] = defaultdict(list)
        for pair in observed:
            incident[pair[0]].append(pair)
            incident[pair[1]].append(pair)
        assignment = self._recluster(num_records, incident, vote)

        # ---------------- Phase 3: consistency refinement ---------------- #
        candidate_incident: dict[int, list[Pair]] = defaultdict(list)
        for pair in pairs:
            candidate_incident[pair[0]].append(pair)
            candidate_incident[pair[1]].append(pair)
        for _ in range(self.refinement_rounds):
            # Ask unobserved candidate pairs inside current clusters so thin
            # clusters gain (or lose) supporting evidence.
            members_of: dict[int, list[int]] = defaultdict(list)
            for record, cluster in assignment.items():
                members_of[cluster].append(record)
            verification: list[Pair] = []
            for members in members_of.values():
                if len(members) < 2:
                    continue
                member_set = set(members)
                unasked = sorted(
                    {
                        pair
                        for record in members
                        for pair in candidate_incident[record]
                        if pair[0] in member_set
                        and pair[1] in member_set
                        and pair not in observed
                    }
                )
                limit = self.verify_per_record * len(members)
                if unasked and limit:
                    take = min(limit, len(unasked))
                    chosen = rng.choice(len(unasked), size=take, replace=False)
                    verification.extend(unasked[int(index)] for index in chosen)
            asked = ask_all(sorted(set(verification)))
            if asked:
                for pair in asked:
                    incident[pair[0]].append(pair)
                    incident[pair[1]].append(pair)
            merged = self._merge_clusters(assignment, observed, vote)
            moved = self._local_moves(assignment, incident, vote)
            if not moved and not merged and not asked:
                break

        labels: dict[Pair, bool] = {}
        for pair in pairs:
            labels[pair] = assignment.get(pair[0], -1) == assignment.get(pair[1], -2)
        return labels

    @staticmethod
    def _recluster(
        num_records: int,
        incident: dict[int, list[Pair]],
        vote,
    ) -> dict[int, int]:
        """Greedy evidence clustering: join the best net-positive cluster."""
        assignment: dict[int, int] = {}
        next_cluster = 0
        for record in range(num_records):
            votes: dict[int, float] = defaultdict(float)
            for pair in incident.get(record, ()):
                other = pair[0] if pair[1] == record else pair[1]
                cluster = assignment.get(other)
                if cluster is None:
                    continue
                votes[cluster] += vote(pair)
            best_cluster, best_score = None, 0
            for cluster, score in sorted(votes.items()):
                if score > best_score:
                    best_cluster, best_score = cluster, score
            if best_cluster is None:
                assignment[record] = next_cluster
                next_cluster += 1
            else:
                assignment[record] = best_cluster
        return assignment

    @staticmethod
    def _merge_clusters(
        assignment: dict[int, int],
        observed: dict[Pair, bool],
        vote,
    ) -> bool:
        """Merge clusters whose net inter-cluster evidence is positive.

        Record-level moves alone cannot reassemble a cluster fragmented by
        the greedy pass (each record may be individually best-attached to
        its own fragment); agglomerating on aggregate evidence can, while a
        single wrong Yes between two well-attested clusters stays outvoted
        by the observed No edges.
        """
        scores: dict[tuple[int, int], float] = defaultdict(float)
        for pair in observed:
            a, b = assignment.get(pair[0]), assignment.get(pair[1])
            if a is None or b is None or a == b:
                continue
            key = (a, b) if a < b else (b, a)
            scores[key] += vote(pair)
        merged_any = False
        alias: dict[int, int] = {}

        def resolve(cluster: int) -> int:
            while cluster in alias:
                cluster = alias[cluster]
            return cluster

        # Greedy: strongest positive link first, re-resolving aliases as
        # clusters coalesce.
        for (a, b), score in sorted(
            scores.items(), key=lambda item: (-item[1], item[0])
        ):
            if score <= 0:
                break
            root_a, root_b = resolve(a), resolve(b)
            if root_a == root_b:
                continue
            # Recompute the net evidence between the *current* super-clusters
            # before committing (earlier merges may have changed it).
            net = 0
            for (x, y), s in scores.items():
                if {resolve(x), resolve(y)} == {root_a, root_b}:
                    net += s
            if net > 0:
                alias[root_b] = root_a
                merged_any = True
        if merged_any:
            for record, cluster in assignment.items():
                assignment[record] = resolve(cluster)
        return merged_any

    @staticmethod
    def _local_moves(
        assignment: dict[int, int],
        incident: dict[int, list[Pair]],
        vote,
    ) -> bool:
        """Move each record to its highest-evidence cluster; report changes."""
        moved = False
        next_cluster = max(assignment.values(), default=-1) + 1
        for record in sorted(assignment):
            votes: dict[int, float] = defaultdict(float)
            for pair in incident.get(record, ()):
                other = pair[0] if pair[1] == record else pair[1]
                if other == record or other not in assignment:
                    continue
                votes[assignment[other]] += vote(pair)
            current = assignment[record]
            best_cluster, best_score = None, 0
            for cluster, score in sorted(votes.items()):
                if score > best_score:
                    best_cluster, best_score = cluster, score
            if best_cluster is None:
                # No positive evidence anywhere: stand alone.
                target = next_cluster if votes.get(current, 0) < 0 else current
                if target != current:
                    next_cluster += 1
            else:
                target = best_cluster
            if target != current:
                assignment[record] = target
                moved = True
        return moved
