"""CrowdER: hybrid human-machine entity resolution (Wang et al., PVLDB 2012).

The predecessor system the Power paper's §2.2.1 credits with the
similarity-pruning step every later method adopted.  CrowdER's pipeline:

1. **Machine phase** — compute record-level similarities and prune pairs
   below a threshold (the step shared by every method in this repository).
2. **Crowd phase** — send *every* surviving candidate pair to the crowd,
   packed into HITs.  The original paper's contribution is HIT generation:
   *cluster-based* HITs group records so one task covers several pairs; we
   model the cost effect with record-disjoint batches of configurable size,
   which preserves what matters for the comparison — CrowdER asks the full
   candidate set and therefore anchors the cost axis.

No transitivity, no error tolerance: each pair's voted answer is final.
This gives the "brute force over the pruned set" corner of the
cost/quality space that §1 describes as involving "huge monetary costs".
"""

from __future__ import annotations

import numpy as np

from ..crowd.platform import CrowdSession
from ..data.ground_truth import Pair
from ..exceptions import ConfigurationError
from .base import BaselineResolver


class CrowdERResolver(BaselineResolver):
    """Ask every candidate pair, in HIT-sized parallel batches.

    Args:
        pairs_per_hit: questions packed per crowd round (original paper
            clusters records into HITs; the batch size is the cost knob).
    """

    name = "crowder"

    def __init__(self, pairs_per_hit: int = 20) -> None:
        if pairs_per_hit < 1:
            raise ConfigurationError(
                f"pairs_per_hit must be >= 1, got {pairs_per_hit}"
            )
        self.pairs_per_hit = pairs_per_hit

    def _resolve(
        self, pairs: list[Pair], scores: np.ndarray, session: CrowdSession
    ) -> dict[Pair, bool]:
        order = np.argsort(-scores, kind="stable")
        ordered = [pairs[int(index)] for index in order]
        labels: dict[Pair, bool] = {}
        for start in range(0, len(ordered), self.pairs_per_hit):
            batch = ordered[start : start + self.pairs_per_hit]
            for pair, outcome in session.ask_batch(batch).items():
                labels[pair] = outcome.answer
        return labels
