"""Node-priority transitivity ER (Vesdapunt, Bellare & Dalvi, PVLDB 2014).

The other transitivity-based algorithm the Power paper compares against
conceptually (§2.2.1, ref. [21]).  Where Trans orders *edges* (pairs) by
similarity, the node-priority strategy orders *records*: process records by
how many candidate partners they have (most-connected first), and resolve
each record against the existing clusters — ask one representative pair per
cluster (most similar partner first) until a Yes places the record, or the
candidates run out and the record founds its own cluster.

Properties that matter for the comparison:

* transitivity is exploited *per record*: at most one question per
  (record, cluster) pair, so large clusters cost O(1) questions per member
  instead of O(cluster);
* like Trans, a single wrong answer misplaces a record and there is no
  error tolerance;
* question count sits between Trans and the ask-everything methods on data
  with small clusters, and beats Trans on large-cluster data — the
  behaviour reported in the original paper.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..crowd.platform import CrowdSession
from ..data.ground_truth import Pair
from .base import BaselineResolver
from .union_find import UnionFind


class NodePriorityResolver(BaselineResolver):
    """Record-ordered transitivity baseline."""

    name = "node-priority"

    def _resolve(
        self, pairs: list[Pair], scores: np.ndarray, session: CrowdSession
    ) -> dict[Pair, bool]:
        if not pairs:
            return {}
        score_of = {pair: float(score) for pair, score in zip(pairs, scores)}
        neighbors: dict[int, list[int]] = defaultdict(list)
        for i, j in pairs:
            neighbors[i].append(j)
            neighbors[j].append(i)
        num_records = 1 + max(max(pair) for pair in pairs)
        clusters = UnionFind(num_records)
        placed: set[int] = set()
        # Most-connected records first: resolving hubs early maximises the
        # transitive savings for everything that follows.
        order = sorted(neighbors, key=lambda r: (-len(neighbors[r]), r))
        for record in order:
            placed.add(record)
            # Candidate clusters among already-placed neighbours, tried in
            # descending best-pair similarity.
            best_pair_to_cluster: dict[int, Pair] = {}
            for other in neighbors[record]:
                if other not in placed or other == record:
                    continue
                pair = (record, other) if record < other else (other, record)
                root = clusters.find(other)
                incumbent = best_pair_to_cluster.get(root)
                if incumbent is None or score_of[pair] > score_of[incumbent]:
                    best_pair_to_cluster[root] = pair
            candidates = sorted(
                best_pair_to_cluster.values(),
                key=lambda pair: -score_of[pair],
            )
            for pair in candidates:
                if clusters.connected(*pair):
                    break  # an earlier Yes merged us into this cluster
                outcome = session.ask(pair)
                if outcome.answer:
                    clusters.union(*pair)
                    break
        return {pair: clusters.connected(*pair) for pair in pairs}
