"""Pipeline performance harness: reference vs. fast path, stage by stage.

The resolution pipeline front-loads its cost in three stages — the §7.1
pruning join, the §3.1 similarity-vector computation, and the §4 dominance
graph construction.  Each has a scalar *reference* implementation (kept as
ground truth) and a vectorized *fast path*:

===========  ==============================  ===================================
stage        reference                       fast path
===========  ==============================  ===================================
prune        prefix-filtered join            :func:`~repro.similarity.batch.sparse_jaccard_join`
vectorize    :func:`~repro.similarity.vectors.similarity_matrix`  :func:`~repro.similarity.batch.batch_similarity_matrix`
construct    per-vertex broadcast loop       :func:`~repro.graph.construction.blocked_dominance_lists`
===========  ==============================  ===================================

:func:`run_pipeline_benchmark` times both sides of every stage on an
ACMPub-scale workload, *verifies equivalence while it measures* (same pair
list, bit-identical vectors, same adjacency/edge sets), and returns one
machine-readable report — the payload of ``benchmarks/results/BENCH_pipeline.json``.
:func:`acceptance_failures` turns a report into a pass/fail gate
(``POWER_BENCH_FAST=1`` smoke runs only require the fast path to win;
full runs enforce the 5x / 3x floors).
"""

from __future__ import annotations

import json
import platform
import time
from collections.abc import Callable
from pathlib import Path

import numpy as np

from ..core import PowerConfig, PowerResolver
from ..data import acmpub, cora, restaurant
from ..exceptions import ConfigurationError
from ..graph.construction import blocked_dominance_lists, blocked_edges, vectorized_edges
from ..similarity import (
    SimilarityConfig,
    batch_similarity_matrix,
    similar_pairs,
    similarity_matrix,
)
from ..similarity.tokenize import qgram_tokens, word_tokens
from .runner import fast_mode

#: Acceptance floors of the full benchmark (ISSUE: the fast paths must beat
#: the references by these factors on the ACMPub-scale workload).
VECTORIZE_SPEEDUP_FLOOR = 5.0
CONSTRUCT_SPEEDUP_FLOOR = 3.0

#: Acceptance floor of the selection-loop benchmark: the incremental engine
#: (warm-started path covers + packed propagation) must beat the per-round
#: scratch reference by this factor on the ACMPub-scale workload.
SELECTION_SPEEDUP_FLOOR = 3.0

#: Vertex cap for the selection-loop benchmark (the scratch reference
#: rebuilds Python adjacency lists every round, so this bounds full-run
#: wall time; the incremental engine itself scales far beyond it).
DEFAULT_SELECTION_VERTICES = 2500

#: Vertex cap for the construct stage: the most-similar pairs are kept so the
#: per-vertex reference loop stays tractable while the workload remains
#: representative.  (The blocked kernel itself handles far larger graphs.)
DEFAULT_CONSTRUCT_VERTICES = 4000

#: Vertex cap for the exhaustive edge-*set* cross-check (reference edge sets
#: materialise O(|E|) Python tuples, so this stays smaller).
DEFAULT_EDGE_CHECK_VERTICES = 1200


def _clear_token_caches() -> None:
    """Reset the tokenizer LRU caches so each timed side starts cold."""
    word_tokens.cache_clear()
    qgram_tokens.cache_clear()


def _best_of(function: Callable[[], object], repeats: int) -> tuple[float, object]:
    """Best-of-*repeats* wall time; token caches are cleared per repeat."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        _clear_token_caches()
        start = time.perf_counter()
        result = function()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def _bench_table(dataset: str, scale: float | None) -> tuple[object, float]:
    if dataset == "acmpub":
        if scale is None:
            scale = 0.02 if fast_mode() else 0.15
        return acmpub(scale=scale), 0.3
    if dataset == "restaurant":
        return restaurant(), 0.2
    if dataset == "cora":
        return cora(), 0.2
    raise ConfigurationError(f"unknown dataset {dataset!r}")


def _stage(
    name: str,
    reference_name: str,
    fast_name: str,
    reference_seconds: float,
    fast_seconds: float,
    equivalent: bool,
    work_items: int,
    **extra,
) -> dict:
    speedup = reference_seconds / fast_seconds if fast_seconds > 0 else float("inf")
    per_second = work_items / fast_seconds if fast_seconds > 0 else float("inf")
    return {
        "stage": name,
        "reference": {"name": reference_name, "seconds": round(reference_seconds, 6)},
        "fast": {"name": fast_name, "seconds": round(fast_seconds, 6)},
        "speedup": round(speedup, 3),
        "items": work_items,
        "items_per_second_fast": round(per_second, 1),
        "equivalent": bool(equivalent),
        **extra,
    }


def run_pipeline_benchmark(
    dataset: str = "acmpub",
    scale: float | None = None,
    similarity: str = "bigram",
    repeats: int | None = None,
    construct_vertices: int | None = None,
    edge_check_vertices: int | None = None,
) -> dict:
    """Time prune → vectorize → construct, reference vs. fast path.

    Equivalence is asserted inline: the two join methods must return the
    same pair list, the two vectorizers bit-identical matrices, and the two
    dominance kernels the same adjacency and edge sets.  A violated check
    raises ``AssertionError`` — a fast-but-wrong kernel must fail the bench,
    not win it.

    Args:
        dataset: ``"acmpub"`` (default; the paper's largest), ``"cora"`` or
            ``"restaurant"``.
        scale: ACMPub subsample fraction; default 0.15 (0.02 under
            ``POWER_BENCH_FAST=1``).
        similarity: attribute similarity function for the vectorize stage.
        repeats: best-of-N timing (default 3, or 1 in fast mode).
        construct_vertices: cap on graph vertices for the construct stage.
        edge_check_vertices: cap for the exhaustive edge-set cross-check.

    Returns:
        The JSON-serializable report written to ``BENCH_pipeline.json``.
    """
    fast = fast_mode()
    if repeats is None:
        repeats = 1 if fast else 3
    if construct_vertices is None:
        construct_vertices = 1000 if fast else DEFAULT_CONSTRUCT_VERTICES
    if edge_check_vertices is None:
        edge_check_vertices = 400 if fast else DEFAULT_EDGE_CHECK_VERTICES

    table, threshold = _bench_table(dataset, scale)
    stages: list[dict] = []

    # ---- Stage 1: prune (record-level similarity join) ------------------- #
    ref_seconds, ref_pairs = _best_of(
        lambda: similar_pairs(table, threshold, method="prefix"), repeats
    )
    fast_seconds, pairs = _best_of(
        lambda: similar_pairs(table, threshold, method="sparse"), repeats
    )
    assert pairs == ref_pairs, "sparse join disagrees with prefix join"
    stages.append(
        _stage(
            "prune",
            "prefix-join",
            "sparse-join",
            ref_seconds,
            fast_seconds,
            pairs == ref_pairs,
            len(table),
            pairs_found=len(pairs),
            threshold=threshold,
        )
    )

    # ---- Stage 2: vectorize (per-attribute similarity vectors) ----------- #
    config = SimilarityConfig.uniform(table.num_attributes, function=similarity)
    ref_seconds, ref_vectors = _best_of(
        lambda: similarity_matrix(table, pairs, config), repeats
    )
    fast_seconds, vectors = _best_of(
        lambda: batch_similarity_matrix(table, pairs, config), repeats
    )
    bit_identical = np.array_equal(ref_vectors, vectors)
    max_abs_diff = float(np.abs(ref_vectors - vectors).max()) if vectors.size else 0.0
    assert bit_identical, f"batch vectors differ (max |diff| = {max_abs_diff})"
    stages.append(
        _stage(
            "vectorize",
            "scalar-matrix",
            "batch-matrix",
            ref_seconds,
            fast_seconds,
            bit_identical,
            len(pairs),
            bit_identical=bit_identical,
            max_abs_diff=max_abs_diff,
            attributes=table.num_attributes,
        )
    )

    # ---- Stage 3: construct (dominance adjacency) ------------------------ #
    if len(pairs) > construct_vertices:
        keep = np.argsort(-vectors.mean(axis=1), kind="stable")[:construct_vertices]
        keep.sort()
        sub_vectors = vectors[keep]
    else:
        sub_vectors = vectors

    def reference_adjacency() -> list[np.ndarray]:
        children = []
        for vertex in range(sub_vectors.shape[0]):
            row = sub_vectors[vertex]
            mask = np.logical_and(
                (sub_vectors <= row).all(axis=1), (sub_vectors < row).any(axis=1)
            )
            mask[vertex] = False
            children.append(np.flatnonzero(mask))
        return children

    ref_seconds, ref_adjacency = _best_of(reference_adjacency, repeats)
    fast_seconds, adjacency = _best_of(
        lambda: blocked_dominance_lists(sub_vectors, sub_vectors), repeats
    )
    adjacency_equal = len(adjacency) == len(ref_adjacency) and all(
        np.array_equal(a, b) for a, b in zip(adjacency, ref_adjacency)
    )
    assert adjacency_equal, "blocked adjacency disagrees with per-vertex reference"
    # Exhaustive edge-*set* cross-check on a smaller cap (reference edge sets
    # materialise one Python tuple per edge).
    check_vectors = sub_vectors[:edge_check_vertices]
    edge_sets_equal = blocked_edges(check_vectors) == vectorized_edges(check_vectors)
    assert edge_sets_equal, "blocked edge set disagrees with reference"
    stages.append(
        _stage(
            "construct",
            "per-vertex-loop",
            "blocked-kernel",
            ref_seconds,
            fast_seconds,
            adjacency_equal and edge_sets_equal,
            sub_vectors.shape[0],
            edges=int(sum(len(c) for c in adjacency)),
            edge_sets_equal=bool(edge_sets_equal),
            edge_check_vertices=int(check_vectors.shape[0]),
        )
    )

    return {
        "benchmark": "pipeline",
        "dataset": table.name,
        "records": len(table),
        "pairs": len(pairs),
        "attributes": table.num_attributes,
        "similarity": similarity,
        "fast_mode": fast,
        "repeats": repeats,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "stages": stages,
        "floors": {
            "vectorize": 1.0 if fast else VECTORIZE_SPEEDUP_FLOOR,
            "construct": 1.0 if fast else CONSTRUCT_SPEEDUP_FLOOR,
        },
    }


def acceptance_failures(report: dict) -> list[str]:
    """Human-readable violations of the bench's acceptance gates.

    Every stage must be equivalent to its reference; the vectorize and
    construct stages must additionally clear their speedup floors (which the
    report carries, so smoke and full runs gate consistently).
    """
    failures: list[str] = []
    floors = report.get("floors", {})
    for stage in report["stages"]:
        name = stage["stage"]
        if not stage["equivalent"]:
            failures.append(f"{name}: fast path is not equivalent to the reference")
        floor = floors.get(name)
        if floor is not None and stage["speedup"] < floor:
            failures.append(
                f"{name}: speedup {stage['speedup']:.2f}x is below the "
                f"{floor:.1f}x floor ({stage['fast']['name']} vs "
                f"{stage['reference']['name']})"
            )
    return failures


def summary_rows(report: dict) -> list[list]:
    """Rows for a plain-text summary table of a report (one per stage)."""
    return [
        [
            stage["stage"],
            stage["reference"]["name"],
            stage["fast"]["name"],
            stage["reference"]["seconds"],
            stage["fast"]["seconds"],
            f"{stage['speedup']:.2f}x",
            "yes" if stage["equivalent"] else "NO",
        ]
        for stage in report["stages"]
    ]


# --------------------------------------------------------------------------- #
# Selection-loop benchmark (incremental engine vs per-round scratch)
# --------------------------------------------------------------------------- #


def _selection_workload(
    dataset: str, scale: float | None, max_vertices: int
) -> tuple[object, list, np.ndarray]:
    """(table, pairs, vectors) for the selection bench, capped by similarity."""
    table, threshold = _bench_table(dataset, scale)
    pairs = similar_pairs(table, threshold, method="sparse")
    config = SimilarityConfig.uniform(table.num_attributes, function="bigram")
    vectors = batch_similarity_matrix(table, pairs, config)
    if len(pairs) > max_vertices:
        keep = np.argsort(-vectors.mean(axis=1), kind="stable")[:max_vertices]
        keep.sort()
        pairs = [pairs[int(i)] for i in keep]
        vectors = vectors[keep]
    return table, pairs, vectors


def _timed_selection_run(
    selector_name: str,
    pairs: list,
    vectors: np.ndarray,
    truth: dict,
    seed: int,
    incremental: bool,
    repeats: int,
):
    """Best-of-*repeats* wall time of one full selector run.

    A fresh graph is built per repeat (so the incremental side pays its
    reachability-index build inside the measured wall every time), but the
    adjacency lists — a cost shared by both sides — are prebuilt outside
    the timer.
    """
    from ..crowd.platform import PerfectCrowd
    from ..graph.dag import PairGraph
    from ..selection import SELECTORS

    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        graph = PairGraph(pairs, vectors)
        adjacency = graph.adjacency()
        selector = SELECTORS[selector_name](seed=seed, incremental=incremental)
        session = PerfectCrowd(truth).session()
        start = time.perf_counter()
        run = selector.run(graph, session)
        elapsed = time.perf_counter() - start
        del adjacency
        if elapsed < best:
            best = elapsed
            result = run
    return best, result


def run_selection_benchmark(
    dataset: str = "acmpub",
    scale: float | None = None,
    selectors: tuple[str, ...] = ("single-path", "multi-path"),
    max_vertices: int | None = None,
    repeats: int | None = None,
    seed: int = 0,
) -> dict:
    """Time the selection loop, incremental engine vs per-round scratch.

    Each selector runs the full ask/color loop twice on the same
    ACMPub-scale dominance graph against a perfect crowd over a monotone
    truth: once with the incremental engine (reachability index +
    warm-started path covers) and once forced onto the scratch reference
    paths.  Equivalence is asserted inline — same vertices asked, in the
    same order, same final coloring — so a fast-but-wrong engine fails the
    bench rather than winning it.  The report also carries per-round phase
    splits (cover / augment / propagate / bookkeeping) and a rounds-vs-n
    scaling sweep of the incremental engine.

    Returns:
        The JSON-serializable report written to ``BENCH_selection.json``.
    """
    from ..verify.oracles import _pair_truth_from_vertices, monotone_truth

    fast = fast_mode()
    if repeats is None:
        repeats = 1 if fast else 3
    if max_vertices is None:
        max_vertices = 300 if fast else DEFAULT_SELECTION_VERTICES

    table, pairs, vectors = _selection_workload(dataset, scale, max_vertices)
    truth = _pair_truth_from_vertices(pairs, monotone_truth(vectors))

    selector_reports: list[dict] = []
    for name in selectors:
        ref_seconds, scratch = _timed_selection_run(
            name, pairs, vectors, truth, seed, incremental=False, repeats=repeats
        )
        fast_seconds, incremental = _timed_selection_run(
            name, pairs, vectors, truth, seed, incremental=True, repeats=repeats
        )
        equivalent = (
            incremental.state.asked_order == scratch.state.asked_order
            and np.array_equal(incremental.state.colors, scratch.state.colors)
            and incremental.labels == scratch.labels
        )
        assert equivalent, (
            f"{name}: incremental selection diverged from the scratch reference"
        )
        telemetry = incremental.extras.get("selection", {})
        engine = telemetry.get("engine", {})
        cover_seconds = float(telemetry.get("cover_seconds", 0.0))
        propagate_seconds = float(telemetry.get("propagate_seconds", 0.0))
        augment_seconds = float(engine.get("augment_seconds", 0.0))
        bookkeeping = max(0.0, fast_seconds - cover_seconds - propagate_seconds)
        speedup = ref_seconds / fast_seconds if fast_seconds > 0 else float("inf")
        selector_reports.append(
            {
                "selector": name,
                "reference": {
                    "name": "scratch-cover",
                    "seconds": round(ref_seconds, 6),
                },
                "fast": {
                    "name": "incremental-cover",
                    "seconds": round(fast_seconds, 6),
                },
                "speedup": round(speedup, 3),
                "equivalent": bool(equivalent),
                "rounds": int(telemetry.get("rounds", 0)),
                "questions": int(incremental.questions),
                "splits": {
                    "cover_seconds": round(cover_seconds, 6),
                    "augment_seconds": round(augment_seconds, 6),
                    "propagate_seconds": round(propagate_seconds, 6),
                    "bookkeeping_seconds": round(bookkeeping, 6),
                },
                "engine": {
                    key: (round(value, 6) if isinstance(value, float) else value)
                    for key, value in engine.items()
                },
            }
        )

    # Rounds-vs-n scaling of the incremental engine (single-path).
    scaling: list[dict] = []
    fractions = (0.5, 1.0) if fast else (0.25, 0.5, 1.0)
    for fraction in fractions:
        size = max(2, int(round(len(pairs) * fraction)))
        sub_pairs = pairs[:size]
        sub_vectors = vectors[:size]
        sub_truth = _pair_truth_from_vertices(
            sub_pairs, monotone_truth(sub_vectors)
        )
        scratch_seconds, _ = _timed_selection_run(
            "single-path", sub_pairs, sub_vectors, sub_truth, seed,
            incremental=False, repeats=1,
        )
        incr_seconds, run = _timed_selection_run(
            "single-path", sub_pairs, sub_vectors, sub_truth, seed,
            incremental=True, repeats=1,
        )
        telemetry = run.extras.get("selection", {})
        scaling.append(
            {
                "vertices": size,
                "rounds": int(telemetry.get("rounds", 0)),
                "scratch_seconds": round(scratch_seconds, 6),
                "incremental_seconds": round(incr_seconds, 6),
                "speedup": round(
                    scratch_seconds / incr_seconds if incr_seconds > 0 else float("inf"),
                    3,
                ),
            }
        )

    return {
        "benchmark": "selection",
        "dataset": table.name,
        "records": len(table),
        "vertices": len(pairs),
        "attributes": int(vectors.shape[1]),
        "fast_mode": fast,
        "repeats": repeats,
        "seed": seed,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "selectors": selector_reports,
        "scaling": scaling,
        "floors": {"selection": 1.0 if fast else SELECTION_SPEEDUP_FLOOR},
    }


def selection_acceptance_failures(report: dict) -> list[str]:
    """Violations of the selection bench's gates (equivalence + floor)."""
    failures: list[str] = []
    floor = report.get("floors", {}).get("selection")
    for entry in report["selectors"]:
        name = entry["selector"]
        if not entry["equivalent"]:
            failures.append(
                f"{name}: incremental selection is not equivalent to the "
                "scratch reference"
            )
        if floor is not None and entry["speedup"] < floor:
            failures.append(
                f"{name}: speedup {entry['speedup']:.2f}x is below the "
                f"{floor:.1f}x floor (incremental vs scratch cover)"
            )
    return failures


def selection_summary_rows(report: dict) -> list[list]:
    """Rows for a plain-text summary of a selection report (one per selector)."""
    return [
        [
            entry["selector"],
            entry["rounds"],
            entry["reference"]["seconds"],
            entry["fast"]["seconds"],
            f"{entry['speedup']:.2f}x",
            "yes" if entry["equivalent"] else "NO",
        ]
        for entry in report["selectors"]
    ]


def verify_resolution_identity(dataset: str = "restaurant") -> bool:
    """End-to-end check: batch and scalar resolvers give identical output.

    Runs :class:`~repro.core.PowerResolver` twice on *dataset* — once through
    the batch substrate, once through the scalar reference — and compares the
    full resolution (candidate pairs, matches, clusters).  Used by the bench
    and the smoke test as the top-level equivalence gate.
    """
    table, _ = _bench_table(dataset, None)
    results = []
    for use_batch in (True, False):
        config = PowerConfig(seed=7, use_batch_similarity=use_batch)
        results.append(PowerResolver(config).resolve(table))
    batch_run, scalar_run = results
    return (
        batch_run.candidate_pairs == scalar_run.candidate_pairs
        and batch_run.matches == scalar_run.matches
        and batch_run.clusters == scalar_run.clusters
        and batch_run.questions == scalar_run.questions
    )


def write_report(report: dict, path: str | Path) -> Path:
    """Persist a report as pretty-printed JSON (the BENCH_pipeline.json file)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return path
