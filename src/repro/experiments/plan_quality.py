"""Planner-quality benchmark: measured regret vs exhaustive search.

The cost planner's one job is picking fast settings, so this harness
grades it the only honest way — against the ground truth of actually
running every alternative:

* **regret grid** — for each dataset scale, every (join method x
  similarity substrate) combination runs the planner-visible pipeline
  stages (candidate join, similarity vectors, graph construction) and is
  timed best-of-N, with pair-universe equivalence asserted while timing.
  The host is then calibrated, the planner plans from the table's stats,
  and the planned combination's measured runtime is compared against the
  exhaustive best and worst.  Gates: planned within
  :data:`REGRET_MAX` of the best and strictly faster than the worst.
* **synthetic-host adaptation** — the same stats planned under perturbed
  profiles (a host with slow scalar loops, a host with huge numpy
  dispatch overhead) must flip decisions accordingly.  Recorded and
  gated on *divergence* (the planner must respond to coefficients), not
  on time.

``POWER_BENCH_FAST=1`` shrinks the grid and relaxes the regret bar (tiny
workloads make ratios noisy); equivalence and adaptation gates are never
relaxed.  The report lands in ``benchmarks/results/BENCH_plan.json``.
"""

from __future__ import annotations

import platform
import time

from ..core import PowerConfig, PowerResolver
from ..data.generators import load_dataset
from ..plan.calibrate import CalibrationProfile, calibrate
from ..plan.planner import TableStats, apply_plan, plan_for_stats
from ..verify.battery import subsample_table
from .runner import fast_mode

#: Full-run regret ceiling: planned runtime / exhaustive-best runtime.
REGRET_MAX = 1.15

#: Smoke-run ceiling: sub-millisecond stages make ratios noisy.
FAST_REGRET_MAX = 1.5

#: The exhaustive grid: every planner-ownable (join, substrate) combo.
JOIN_CHOICES = ("naive", "prefix", "sparse")
SUBSTRATE_CHOICES = (True, False)


def _staged_seconds(table, config: PowerConfig, repeats: int) -> tuple[float, list]:
    """Best-of-N wall time of the planner-visible stages; returns pairs too."""
    resolver = PowerResolver(config)
    pairs_holder = {}

    def run():
        pairs = resolver.candidate_pairs(table)
        vectors = resolver.similarity_vectors(table, pairs)
        resolver.build_graph(table, pairs, vectors=vectors)
        pairs_holder["pairs"] = pairs

    run()  # warmup (numpy dispatch, token interning)
    best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best, pairs_holder["pairs"]


def _perturbed(profile: CalibrationProfile, scaling: dict[str, float]) -> CalibrationProfile:
    """A synthetic host: stage coefficients scaled by the given factors."""
    coefficients = {
        stage: {
            "c0": coeffs["c0"] * scaling.get(stage, 1.0),
            "c1": coeffs["c1"] * scaling.get(stage, 1.0),
        }
        for stage, coeffs in profile.coefficients.items()
    }
    return CalibrationProfile(
        coefficients=coefficients,
        host=profile.host,
        calibrated=True,
        meta={"source": "synthetic"},
    )


#: The synthetic hosts the adaptation gate runs: name -> stage scalings.
#: The factors are deliberately extreme (1000x) so the expected flips are
#: theorems about the cost model, not coin flips near a crossover.
SYNTHETIC_HOSTS = {
    # A host where tight Python loops are catastrophically slow (think
    # heavily instrumented interpreter): the quadratic naive join and the
    # scalar substrate should never win.
    "slow-python": {
        "join_naive": 1000.0,
        "vectorize_scalar": 1000.0,
        "selection_scratch": 1000.0,
    },
    # A host where building sort/index structures is absurdly expensive:
    # the prefix and sparse joins lose to the plain nested loop.
    "costly-indexing": {
        "join_prefix": 1000.0,
        "join_sparse": 1000.0,
    },
}


def run_plan_benchmark(
    dataset: str = "restaurant",
    scales: tuple[float, ...] | None = None,
    repeats: int | None = None,
    seed: int = 0,
) -> dict:
    """Measure the exhaustive grid, plan, and report regret + adaptation."""
    fast = fast_mode()
    if scales is None:
        scales = (0.15,) if fast else (0.5, 1.0)
    if repeats is None:
        repeats = 2 if fast else 3
    profile = calibrate(seed=seed, repeats=1 if fast else 3, fast=fast)

    full_table = load_dataset(dataset)
    grid = []
    for scale in scales:
        table = subsample_table(full_table, scale)
        stats = TableStats.from_table(table, seed=seed)
        measurements = []
        reference_pairs = None
        for join_method in JOIN_CHOICES:
            for use_batch in SUBSTRATE_CHOICES:
                config = PowerConfig(
                    seed=seed,
                    join_method=join_method,
                    use_batch_similarity=use_batch,
                )
                seconds, pairs = _staged_seconds(table, config, repeats)
                if reference_pairs is None:
                    reference_pairs = pairs
                elif pairs != reference_pairs:
                    raise AssertionError(
                        f"join {join_method!r} produced a different candidate "
                        f"universe ({len(pairs)} vs {len(reference_pairs)} "
                        "pairs) — equivalence broken, timings meaningless"
                    )
                measurements.append(
                    {
                        "join_method": join_method,
                        "use_batch_similarity": use_batch,
                        "seconds": round(seconds, 6),
                    }
                )
        plan = plan_for_stats(stats, profile)
        planned_config = apply_plan(PowerConfig(seed=seed), plan)
        planned_key = (
            planned_config.join_method,
            planned_config.use_batch_similarity,
        )
        by_key = {
            (m["join_method"], m["use_batch_similarity"]): m["seconds"]
            for m in measurements
        }
        planned_seconds = by_key[planned_key]
        best_seconds = min(by_key.values())
        worst_seconds = max(by_key.values())
        grid.append(
            {
                "dataset": dataset,
                "scale": scale,
                "rows": len(table),
                "est_pairs": stats.est_pairs,
                "configs": measurements,
                "planned": {
                    "join_method": planned_key[0],
                    "use_batch_similarity": planned_key[1],
                },
                "planned_seconds": round(planned_seconds, 6),
                "best_seconds": round(best_seconds, 6),
                "worst_seconds": round(worst_seconds, 6),
                "regret": round(planned_seconds / best_seconds, 4),
            }
        )

    # Synthetic-host adaptation: same stats, perturbed coefficients.
    adaptation = []
    adaptation_stats = TableStats.from_table(
        subsample_table(full_table, scales[-1]), seed=seed
    )
    for name, scaling in SYNTHETIC_HOSTS.items():
        synthetic_plan = plan_for_stats(adaptation_stats, _perturbed(profile, scaling))
        adaptation.append(
            {
                "host": name,
                "join_method": synthetic_plan.knob("join_method"),
                "use_batch_similarity": synthetic_plan.knob("use_batch_similarity"),
                "use_incremental_selection": synthetic_plan.knob(
                    "use_incremental_selection"
                ),
            }
        )

    return {
        "benchmark": "plan-quality",
        "fast_mode": fast,
        "seed": seed,
        "repeats": repeats,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "gates": {
            "regret_max": FAST_REGRET_MAX if fast else REGRET_MAX,
            "strictly_better_than_worst": not fast,
        },
        "grid": grid,
        "synthetic_hosts": adaptation,
    }


def plan_acceptance_failures(report: dict) -> list[str]:
    """Gate violations in a :func:`run_plan_benchmark` report."""
    failures = []
    gates = report["gates"]
    for cell in report["grid"]:
        label = f"{cell['dataset']} x{cell['scale']:g} ({cell['rows']} rows)"
        if cell["regret"] > gates["regret_max"]:
            failures.append(
                f"{label}: planner regret {cell['regret']:.2f}x exceeds the "
                f"{gates['regret_max']:.2f}x ceiling (planned "
                f"{cell['planned_seconds']:.4f}s vs best "
                f"{cell['best_seconds']:.4f}s)"
            )
        if gates["strictly_better_than_worst"]:
            if not cell["planned_seconds"] < cell["worst_seconds"]:
                failures.append(
                    f"{label}: planned config is not strictly faster than the "
                    f"worst ({cell['planned_seconds']:.4f}s vs "
                    f"{cell['worst_seconds']:.4f}s)"
                )
        elif cell["planned_seconds"] > cell["worst_seconds"]:
            failures.append(
                f"{label}: planned config is slower than the worst "
                f"({cell['planned_seconds']:.4f}s vs "
                f"{cell['worst_seconds']:.4f}s)"
            )
    # Adaptation: perturbed hosts must actually change decisions.
    joins = {entry["join_method"] for entry in report["synthetic_hosts"]}
    if len(joins) < 2:
        failures.append(
            "synthetic-host adaptation is vacuous: every perturbed profile "
            f"planned the same join ({joins}) — the planner is not reading "
            "its coefficients"
        )
    slow_python = next(
        entry
        for entry in report["synthetic_hosts"]
        if entry["host"] == "slow-python"
    )
    if slow_python["join_method"] == "naive":
        failures.append(
            "the slow-python synthetic host still planned the naive join — "
            "a 50x scalar-loop penalty must rule it out"
        )
    if not slow_python["use_batch_similarity"]:
        failures.append(
            "the slow-python synthetic host still planned the scalar "
            "substrate — a 50x penalty must rule it out"
        )
    return failures


def plan_summary_rows(report: dict) -> list[tuple]:
    """``emit()`` rows: one per grid cell, then the synthetic hosts."""
    rows = []
    for cell in report["grid"]:
        rows.append(
            (
                f"{cell['dataset']} x{cell['scale']:g}",
                cell["rows"],
                f"{cell['planned']['join_method']}"
                f"/{'batch' if cell['planned']['use_batch_similarity'] else 'scalar'}",
                f"{cell['planned_seconds'] * 1e3:.1f}",
                f"{cell['best_seconds'] * 1e3:.1f}",
                f"{cell['worst_seconds'] * 1e3:.1f}",
                f"{cell['regret']:.2f}x",
            )
        )
    for entry in report["synthetic_hosts"]:
        rows.append(
            (
                f"[host:{entry['host']}]",
                "-",
                f"{entry['join_method']}"
                f"/{'batch' if entry['use_batch_similarity'] else 'scalar'}",
                "-",
                "-",
                "-",
                "-",
            )
        )
    return rows


__all__ = [
    "FAST_REGRET_MAX",
    "REGRET_MAX",
    "SYNTHETIC_HOSTS",
    "plan_acceptance_failures",
    "plan_summary_rows",
    "run_plan_benchmark",
]
