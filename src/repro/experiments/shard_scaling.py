"""Shard-scaling harness: serial resolver vs. the sharded exact mode.

Measures three things on one ACMPub-scale workload and returns them as a
single machine-readable report (the payload of
``benchmarks/results/BENCH_shard.json``):

* the **serial baseline** — one :class:`~repro.core.PowerResolver` run;
* the **parallel fraction** — one inline (``workers=0``) sharded run whose
  executor accumulates the wall time spent inside task batches
  (:attr:`~repro.shard.executor.ExecutorStats.run_seconds`).  Every
  data-parallel piece of the exact mode (candidate-join probe ranges,
  vector chunks, adjacency row blocks, propagation slices) goes through
  ``ShardExecutor.run``, so with inline execution that accumulator *is*
  the parallelizable compute and ``p = run_seconds / wall`` is a measured
  Amdahl fraction, not a guess;
* the **measured speedup curve** — timed multi-process runs at each
  requested worker count, each verified byte-identical to the serial
  baseline (candidate pairs, labels, questions, iterations, billing,
  matches, clusters) *while* being timed.  A fast-but-wrong run fails the
  bench; it cannot win it.

The acceptance gate adapts to the machine: on hosts with at least four
CPUs the **measured** speedup at 4 workers must clear the 2.5x floor; on
smaller hosts (CI runners, laptops pinned to a core) the report records
``cpu_limited: true`` and gates on the **projected** speedup
``1 / ((1 - p) + p / 4)`` from the measured fraction — plus, always, the
equivalence of every run.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from ..core import PowerConfig, PowerResolver
from ..core.resolver import ResolutionResult
from ..shard import ShardedResolver
from .perf import _bench_table
from .runner import fast_mode

#: The acceptance floor: speedup the sharded exact mode must reach at
#: :data:`TARGET_WORKERS` workers on the construction+selection pipeline.
SPEEDUP_FLOOR = 2.5

#: Worker count at which the floor is evaluated.
TARGET_WORKERS = 4

#: Default speedup-curve points (full run).
DEFAULT_WORKER_COUNTS = (1, 2, 4, 8)


def _equivalence(serial: ResolutionResult, sharded: ResolutionResult) -> dict:
    """Field-by-field equality of two resolutions (all must be True)."""
    return {
        "candidate_pairs": serial.candidate_pairs == sharded.candidate_pairs,
        "labels": serial.selection.labels == sharded.selection.labels,
        "questions": serial.questions == sharded.questions,
        "iterations": serial.iterations == sharded.iterations,
        "cost_cents": serial.cost_cents == sharded.cost_cents,
        "matches": serial.matches == sharded.matches,
        "clusters": serial.clusters == sharded.clusters,
    }


def projected_speedup(parallel_fraction: float, workers: int) -> float:
    """Amdahl's law: ``1 / ((1 - p) + p / w)``."""
    p = min(max(parallel_fraction, 0.0), 1.0)
    return 1.0 / ((1.0 - p) + p / max(1, workers))


def run_shard_benchmark(
    dataset: str = "acmpub",
    scale: float | None = None,
    worker_counts: tuple[int, ...] | None = None,
    shards: int | None = None,
    seed: int = 0,
) -> dict:
    """Time the sharded exact mode against the serial resolver.

    Args:
        dataset: ``"acmpub"`` (default), ``"cora"`` or ``"restaurant"``.
        scale: ACMPub subsample fraction; default 0.15 (0.02 under
            ``POWER_BENCH_FAST=1``).
        worker_counts: speedup-curve points; default ``(1, 2, 4, 8)``
            (``(1, 2)`` in fast mode).
        shards: tiles per parallel stage; default ``2 * workers`` per run
            (oversubscription keeps the LPT schedule's tail short).
        seed: pipeline seed shared by every run.

    Returns:
        The JSON-serializable report written to ``BENCH_shard.json``.
    """
    fast = fast_mode()
    if worker_counts is None:
        worker_counts = (1, 2) if fast else DEFAULT_WORKER_COUNTS
    table, threshold = _bench_table(dataset, scale)

    def config(num_shards: int | None = None) -> PowerConfig:
        return PowerConfig(
            seed=seed, pruning_threshold=threshold, shards=num_shards
        )

    # ---- Serial baseline -------------------------------------------------- #
    started = time.perf_counter()
    serial = PowerResolver(config()).resolve(table)
    serial_seconds = time.perf_counter() - started

    # ---- Parallel fraction (inline run, measured not guessed) ------------- #
    inline_shards = shards or 2 * TARGET_WORKERS
    started = time.perf_counter()
    inline = ShardedResolver(config(inline_shards), workers=0).resolve(table)
    inline_seconds = time.perf_counter() - started
    inline_extras = inline.selection.extras["shard"]
    parallel_seconds = float(inline_extras["executor"]["run_seconds"])
    parallel_fraction = (
        parallel_seconds / inline_seconds if inline_seconds > 0 else 0.0
    )
    inline_equivalence = _equivalence(serial, inline)

    # ---- Measured speedup curve ------------------------------------------- #
    runs: list[dict] = []
    for workers in worker_counts:
        num_shards = shards or max(2, 2 * workers)
        started = time.perf_counter()
        sharded = ShardedResolver(config(num_shards), workers=workers).resolve(
            table
        )
        seconds = time.perf_counter() - started
        equivalence = _equivalence(serial, sharded)
        extras = sharded.selection.extras["shard"]
        runs.append(
            {
                "workers": workers,
                "shards": num_shards,
                "seconds": round(seconds, 6),
                "measured_speedup": round(serial_seconds / seconds, 3)
                if seconds > 0
                else float("inf"),
                "projected_speedup": round(
                    projected_speedup(parallel_fraction, workers), 3
                ),
                "equivalent": all(equivalence.values()),
                "equivalence": equivalence,
                "timings": {
                    phase: round(value, 6)
                    for phase, value in extras["timings"].items()
                },
                "executor": extras["executor"],
            }
        )

    cpu_count = os.cpu_count() or 1
    cpu_limited = cpu_count < TARGET_WORKERS
    basis = "projected" if (cpu_limited or fast) else "measured"
    return {
        "benchmark": "shard_scaling",
        "dataset": table.name,
        "records": len(table),
        "candidate_pairs": len(serial.candidate_pairs),
        "questions": serial.questions,
        "threshold": threshold,
        "seed": seed,
        "fast_mode": fast,
        "cpu_count": cpu_count,
        "cpu_limited": cpu_limited,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "serial": {
            "seconds": round(serial_seconds, 6),
            "questions": serial.questions,
            "matches": len(serial.matches),
            "clusters": len(serial.clusters),
        },
        "parallel_fraction": round(parallel_fraction, 4),
        "parallel_seconds": round(parallel_seconds, 6),
        "serial_residue_seconds": round(inline_seconds - parallel_seconds, 6),
        "inline": {
            "seconds": round(inline_seconds, 6),
            "shards": inline_shards,
            "equivalent": all(inline_equivalence.values()),
            "equivalence": inline_equivalence,
            "timings": {
                phase: round(value, 6)
                for phase, value in inline_extras["timings"].items()
            },
        },
        "runs": runs,
        "target": {
            # Fast-mode smoke runs shrink the workload until fixed overheads
            # dominate; like BENCH_pipeline, they only gate on equivalence
            # plus a >1x projection.  Full runs enforce the real floor.
            "floor": 1.0 if fast else SPEEDUP_FLOOR,
            "at_workers": TARGET_WORKERS,
            "basis": basis,
            "projected_at_target": round(
                projected_speedup(parallel_fraction, TARGET_WORKERS), 3
            ),
        },
    }


def acceptance_failures(report: dict) -> list[str]:
    """Human-readable violations of the bench's acceptance gates.

    Every run (inline and pooled) must be byte-identical to the serial
    baseline, and the speedup at :data:`TARGET_WORKERS` workers must clear
    :data:`SPEEDUP_FLOOR` — measured wall-clock speedup on machines with
    enough CPUs, Amdahl projection from the measured parallel fraction on
    ``cpu_limited`` hosts and smoke runs.
    """
    failures: list[str] = []
    if not report["inline"]["equivalent"]:
        broken = [k for k, ok in report["inline"]["equivalence"].items() if not ok]
        failures.append(f"inline run diverges from serial: {broken}")
    for run in report["runs"]:
        if not run["equivalent"]:
            broken = [k for k, ok in run["equivalence"].items() if not ok]
            failures.append(
                f"workers={run['workers']} diverges from serial: {broken}"
            )
    target = report["target"]
    if target["basis"] == "measured":
        at_target = [
            run for run in report["runs"] if run["workers"] == target["at_workers"]
        ]
        if not at_target:
            failures.append(
                f"no measured run at {target['at_workers']} workers to gate on"
            )
        elif at_target[0]["measured_speedup"] < target["floor"]:
            failures.append(
                f"measured speedup {at_target[0]['measured_speedup']:.2f}x at "
                f"{target['at_workers']} workers is below the "
                f"{target['floor']:.1f}x floor"
            )
    else:
        if target["projected_at_target"] < target["floor"]:
            failures.append(
                f"projected speedup {target['projected_at_target']:.2f}x at "
                f"{target['at_workers']} workers (parallel fraction "
                f"{report['parallel_fraction']:.3f}) is below the "
                f"{target['floor']:.1f}x floor"
            )
    return failures


def summary_rows(report: dict) -> list[list]:
    """Rows for the plain-text summary table (one per speedup-curve run)."""
    return [
        [
            run["workers"],
            run["shards"],
            run["seconds"],
            f"{run['measured_speedup']:.2f}x",
            f"{run['projected_speedup']:.2f}x",
            "yes" if run["equivalent"] else "NO",
        ]
        for run in report["runs"]
    ]


def write_report(report: dict, path: str | Path) -> Path:
    """Persist a report as pretty-printed JSON (the BENCH_shard.json file)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return path


__all__ = [
    "SPEEDUP_FLOOR",
    "TARGET_WORKERS",
    "run_shard_benchmark",
    "projected_speedup",
    "acceptance_failures",
    "summary_rows",
    "write_report",
]
