"""One harness per table/figure of the paper's evaluation (§7 + Appendix E).

Every function prints the same rows/series the paper reports (via
:mod:`repro.experiments.reporting`) and returns them as data.  The
``benchmarks/`` suite wraps these functions with pytest-benchmark and
persists their tables under ``benchmarks/results/``.

Scale note: absolute sizes are laptop-scale (see DESIGN.md); the *shape* of
each result — who wins, by roughly what factor — is the reproduction target.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from ..core import pairwise_quality
from ..data import num_entities, paper_pairs, paper_vectors
from ..graph import (
    GroupedGraph,
    PairGraph,
    brute_force_edges,
    greedy_grouping,
    index_edges,
    quicksort_edges,
    split_grouping,
)
from ..exceptions import ConfigurationError
from ..selection import (
    MultiPathSelector,
    RandomSelector,
    SinglePathSelector,
    TopoSortSelector,
)
from ..similarity import SimilarityConfig, similarity_matrix
from .reporting import emit
from .runner import (
    METHODS,
    run_method,
    WORKER_BANDS,
    MethodRow,
    Workload,
    average_rows,
    compare_methods,
    fast_mode,
    make_crowd,
    prepare,
)

DEFAULT_DATASETS = ("restaurant", "cora", "acmpub")


def _seeds(count: int) -> tuple[int, ...]:
    return tuple(range(2 if fast_mode() else count))


# --------------------------------------------------------------------- #
# Tables 1-3
# --------------------------------------------------------------------- #

def table2_similarity(save_to=None) -> list[list]:
    """Table 2: the running example's per-attribute similarity vectors."""
    rows = [
        [f"p{i + 1},{j + 1}", *vector]
        for (i, j), vector in zip(paper_pairs(), paper_vectors())
    ]
    emit("Table 2: record similarity (paper example)",
         ["pair", "s1", "s2", "s3", "s4"], rows, save_to)
    return rows


def table3_datasets(datasets: Sequence[str] = DEFAULT_DATASETS, save_to=None) -> list[list]:
    """Table 3: dataset statistics at benchmark scale."""
    rows = []
    for name in datasets:
        workload = prepare(name)
        rows.append([
            name,
            len(workload.table),
            num_entities(workload.table),
            workload.table.num_attributes,
            len(workload.pairs),
            5,
        ])
    emit("Table 3: datasets (benchmark scale)",
         ["dataset", "#records", "#entities", "#attrs", "#pairs", "#workers/pair"],
         rows, save_to)
    return rows


# --------------------------------------------------------------------- #
# Figs 9-14: the main comparison, varying worker accuracy
# --------------------------------------------------------------------- #

def accuracy_sweep(
    mode: str = "simulation",
    datasets: Sequence[str] = DEFAULT_DATASETS,
    bands: Sequence[str] = WORKER_BANDS,
    num_seeds: int = 3,
    save_to=None,
) -> list[MethodRow]:
    """Figs 9-11 (mode="real") / Figs 12-14 (mode="simulation").

    Quality, #questions and #iterations for all five methods, per dataset
    and worker-accuracy band, averaged over seeds.
    """
    label = "real" if mode == "real" else "simulation"
    averaged: list[MethodRow] = []
    for name in datasets:
        workload = prepare(name)
        for band in bands:
            per_method: dict[str, list[MethodRow]] = {m: [] for m in METHODS}
            for seed in _seeds(num_seeds):
                for row in compare_methods(workload, band, seed, mode=mode):
                    per_method[row.method].append(row)
            averaged.extend(average_rows(rows) for rows in per_method.values())
    table_rows = [
        [r.dataset, r.band, r.method, r.f_measure, r.questions, r.iterations, r.cost_cents]
        for r in averaged
    ]
    emit(
        f"Figs {'9-11' if mode == 'real' else '12-14'}: accuracy sweep ({label} workers)",
        ["dataset", "band", "method", "F1", "#questions", "#iterations", "cost(c)"],
        table_rows, save_to,
    )
    return averaged


# --------------------------------------------------------------------- #
# Figs 15-17: varying the similarity function
# --------------------------------------------------------------------- #

def similarity_function_sweep(
    functions: Sequence[str] = ("jaccard", "edit", "bigram"),
    datasets: Sequence[str] = ("restaurant", "cora"),
    num_seeds: int = 2,
    save_to=None,
) -> list[MethodRow]:
    """Figs 15-17: quality / #questions / #iterations per similarity function
    (90 %-band workers, real regime, as in §7.3)."""
    averaged: list[MethodRow] = []
    for name in datasets:
        for function in functions:
            workload = prepare(name, similarity=function)
            per_method: dict[str, list[MethodRow]] = {m: [] for m in METHODS}
            for seed in _seeds(num_seeds):
                for row in compare_methods(workload, "90", seed, mode="real"):
                    per_method[row.method].append(row)
            for rows in per_method.values():
                row = average_rows(rows)
                row.band = function
                averaged.append(row)
    table_rows = [
        [r.dataset, r.band, r.method, r.f_measure, r.questions, r.iterations]
        for r in averaged
    ]
    emit("Figs 15-17: similarity-function sweep (90% workers)",
         ["dataset", "similarity", "method", "F1", "#questions", "#iterations"],
         table_rows, save_to)
    return averaged


# --------------------------------------------------------------------- #
# Fig 20: graph construction efficiency
# --------------------------------------------------------------------- #

def construction_benchmark(
    dataset: str = "restaurant",
    sizes: Sequence[int] | None = None,
    save_to=None,
) -> list[list]:
    """Fig 20: construction time of BruteForce vs QuickSort vs Index."""
    workload = prepare(dataset)
    if sizes is None:
        top = len(workload.pairs)
        sizes = [n for n in (500, 1000, 2000, 4000, 8000) if n <= top] or [top]
        if fast_mode():
            sizes = sizes[:2]
    rows = []
    for size in sizes:
        vectors = workload.vectors[:size]
        timings = {}
        for label, algorithm in (
            ("brute-force", brute_force_edges),
            ("quicksort", quicksort_edges),
            ("index", index_edges),
        ):
            started = time.perf_counter()
            edges = algorithm(vectors)
            timings[label] = time.perf_counter() - started
        rows.append([dataset, size, len(edges),
                     timings["brute-force"], timings["quicksort"], timings["index"]])
    emit("Fig 20: graph construction time (seconds)",
         ["dataset", "#pairs", "#edges", "brute-force", "quicksort", "index"],
         rows, save_to)
    return rows


# --------------------------------------------------------------------- #
# Figs 21-22: grouping algorithms
# --------------------------------------------------------------------- #

def grouping_benchmark(
    datasets: Sequence[str] = ("restaurant", "cora"),
    epsilons: Sequence[float] = (0.05, 0.1, 0.15, 0.2),
    greedy_cap: int = 6000,
    save_to=None,
) -> list[list]:
    """Figs 21-22: #groups and grouping time, Greedy vs Split.

    Greedy is exponential in the attribute count (the paper could not run
    it on ACMPub within 10 hours); inputs above *greedy_cap* pairs, or whose
    maximal-group join explodes, are reported as "n/a" like the paper does.
    """
    rows = []
    for name in datasets:
        workload = prepare(name)
        for epsilon in epsilons:
            started = time.perf_counter()
            split = split_grouping(workload.vectors, epsilon)
            split_time = time.perf_counter() - started
            greedy_groups, greedy_time = "n/a", "n/a"
            if len(workload.pairs) <= greedy_cap:
                try:
                    started = time.perf_counter()
                    greedy = greedy_grouping(
                        workload.vectors, epsilon, max_candidates=300_000
                    )
                    greedy_time = round(time.perf_counter() - started, 3)
                    greedy_groups = len(greedy)
                except ConfigurationError:
                    pass
            rows.append([name, epsilon, len(split), round(split_time, 4),
                         greedy_groups, greedy_time])
    emit("Figs 21-22: grouping — #groups and time (seconds)",
         ["dataset", "eps", "split #groups", "split time",
          "greedy #groups", "greedy time"],
         rows, save_to)
    return rows


# --------------------------------------------------------------------- #
# Figs 23-24: grouping vs non-grouping
# --------------------------------------------------------------------- #

def group_vs_nongroup(
    dataset: str = "restaurant",
    epsilons: Sequence[float] = (0.05, 0.1, 0.15, 0.2),
    max_pairs: int = 4000,
    band: str = "90",
    seed: int = 0,
    save_to=None,
) -> list[list]:
    """Figs 23-24: SinglePath on raw vs split- vs greedy-grouped graphs.

    The non-grouped graph is capped at *max_pairs* vertices because
    SinglePath recomputes a maximum matching per path (O(B |V|^2)) — the
    cap preserves the paper's shape (grouping cuts questions ~10x at a
    small quality cost) at laptop runtimes.
    """
    workload = prepare(dataset, max_pairs=max_pairs)
    crowd = make_crowd(workload, band, seed, mode="real")
    base = PairGraph(workload.pairs, workload.vectors)

    def run_on(graph, label, epsilon):
        result = SinglePathSelector(seed=seed).run(graph, crowd.session())
        quality = pairwise_quality(
            {p for p, v in result.labels.items() if v}, workload.gold
        )
        return [dataset, label, epsilon, quality.f_measure, result.questions]

    rows = [run_on(base, "non-group", "-")]
    for epsilon in epsilons:
        split = GroupedGraph(base, split_grouping(workload.vectors, epsilon))
        rows.append(run_on(split, "split", epsilon))
        try:
            greedy = GroupedGraph(
                base, greedy_grouping(workload.vectors, epsilon, max_candidates=300_000)
            )
            rows.append(run_on(greedy, "greedy", epsilon))
        except ConfigurationError:
            rows.append([dataset, "greedy", epsilon, "n/a", "n/a"])
    emit("Figs 23-24: grouping vs non-grouping (SinglePath)",
         ["dataset", "grouping", "eps", "F1", "#questions"], rows, save_to)
    return rows


# --------------------------------------------------------------------- #
# Figs 25-26: serial question selection
# --------------------------------------------------------------------- #

def serial_selection(
    dataset: str = "restaurant",
    sizes: Sequence[int] = (250, 500, 1000, 2000),
    band: str = "90",
    seed: int = 0,
    save_to=None,
) -> list[list]:
    """Figs 25-26: Random vs SinglePath on non-grouped graphs vs #pairs."""
    if fast_mode():
        sizes = tuple(sizes)[:2]
    rows = []
    for size in sizes:
        workload = prepare(dataset, max_pairs=size)
        crowd = make_crowd(workload, band, seed, mode="real")
        graph = PairGraph(workload.pairs, workload.vectors)
        for selector in (RandomSelector(seed=seed), SinglePathSelector(seed=seed)):
            result = selector.run(graph, crowd.session())
            quality = pairwise_quality(
                {p for p, v in result.labels.items() if v}, workload.gold
            )
            rows.append([dataset, size, result.name, quality.f_measure, result.questions])
    emit("Figs 25-26: serial selection (Random vs SinglePath)",
         ["dataset", "#pairs", "selector", "F1", "#questions"], rows, save_to)
    return rows


# --------------------------------------------------------------------- #
# Figs 27-30: parallel question selection
# --------------------------------------------------------------------- #

def parallel_selection(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    epsilon: float = 0.1,
    band: str = "90",
    seed: int = 0,
    save_to=None,
) -> list[list]:
    """Figs 27-30: SinglePath vs Multi-Path vs Power on grouped graphs:
    quality, #questions, #iterations, and assignment time."""
    rows = []
    for name in datasets:
        workload = prepare(name)
        crowd = make_crowd(workload, band, seed, mode="real")
        base = PairGraph(workload.pairs, workload.vectors)
        grouped = GroupedGraph(base, split_grouping(workload.vectors, epsilon))
        for selector in (
            SinglePathSelector(seed=seed),
            MultiPathSelector(seed=seed),
            TopoSortSelector(seed=seed),
        ):
            result = selector.run(grouped, crowd.session())
            quality = pairwise_quality(
                {p for p, v in result.labels.items() if v}, workload.gold
            )
            rows.append([
                name, result.name, quality.f_measure, result.questions,
                result.iterations, result.assignment_time,
            ])
    emit("Figs 27-30: parallel selection on grouped graphs",
         ["dataset", "selector", "F1", "#questions", "#iterations", "assign time (s)"],
         rows, save_to)
    return rows


# --------------------------------------------------------------------- #
# Figs 31-33: error tolerance
# --------------------------------------------------------------------- #

def error_tolerant_sweep(
    datasets: Sequence[str] = ("restaurant", "cora"),
    epsilons: Sequence[float] = (0.05, 0.1, 0.15, 0.2),
    band: str = "80",
    num_seeds: int = 3,
    save_to=None,
) -> list[list]:
    """Figs 31-33: Power vs Power+ over the grouping threshold epsilon."""
    rows = []
    for name in datasets:
        workload = prepare(name)
        for epsilon in epsilons:
            for method in ("power", "power+"):
                seed_rows = []
                for seed in _seeds(num_seeds):
                    crowd = make_crowd(workload, band, seed, mode="simulation")
                    seed_rows.append(
                        run_method(method, workload, crowd, seed=seed, epsilon=epsilon)
                    )
                row = average_rows(seed_rows)
                rows.append([name, epsilon, method, row.f_measure,
                             row.questions, row.iterations])
    emit(f"Figs 31-33: error tolerance (band {band}, simulation workers)",
         ["dataset", "eps", "method", "F1", "#questions", "#iterations"],
         rows, save_to)
    return rows


# --------------------------------------------------------------------- #
# Fig 34: number of attributes (Cora)
# --------------------------------------------------------------------- #

def attribute_sweep(
    counts: Sequence[int] = (2, 4, 6, 8),
    band: str = "90",
    seed: int = 0,
    save_to=None,
) -> list[list]:
    """Fig 34: effect of the attribute count on Cora."""
    full = prepare("cora")
    rows = []
    for count in counts:
        table = full.table.project(list(range(count)), name=f"cora[{count}]")
        config = SimilarityConfig.uniform(count)
        vectors = similarity_matrix(table, full.pairs, config)
        workload = Workload(
            name=f"cora-{count}attrs",
            table=table,
            pairs=full.pairs,
            vectors=vectors,
            scores=vectors.mean(axis=1),
            truth=full.truth,
            gold=full.gold,
            pruning_threshold=full.pruning_threshold,
        )
        crowd = make_crowd(workload, band, seed, mode="real")
        row = run_method("power+", workload, crowd, seed=seed)
        rows.append([count, row.f_measure, row.questions, row.iterations])
    emit("Fig 34: varying the number of attributes (Cora, Power+)",
         ["#attributes", "F1", "#questions", "#iterations"], rows, save_to)
    return rows
