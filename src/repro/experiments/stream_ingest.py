"""Streaming-ingest benchmark: what durability and incrementality buy.

Two speedups justify :mod:`repro.stream`'s existence, and this harness
measures and gates both on an ACMPub workload (equivalence asserted while
timing — a fast path that changes answers is a bug, not a win):

* **incremental vs re-resolve** — streaming B batches through
  :class:`~repro.stream.StreamingResolver` (only new×old and new×new
  candidate pairs per batch) against the naive service: re-resolving the
  whole growing prefix with :class:`~repro.core.resolver.PowerResolver`
  after every batch.  The stream must finish at least
  :data:`RESOLVE_SPEEDUP_MIN`× faster, while deciding exactly the pair
  universe the final one-shot join produces.
* **extend vs rebuild index maintenance** — the same stream with
  ``index_mode="extend"`` (fold new records into the live
  :class:`~repro.similarity.batch.TokenIndex`, O(new) interning) against
  ``index_mode="rebuild"`` (re-intern all records every batch, the O(all)
  reference).  Extend must cut summed index-maintenance time by at least
  :data:`INDEX_SPEEDUP_MIN`× and stay *bit-identical*: same labels,
  questions, billing, and clusters.

``POWER_BENCH_FAST=1`` shrinks the workload and relaxes the speedup bars
(sub-second runs make ratios noisy); equivalence is never relaxed.  The
report lands in ``benchmarks/results/BENCH_stream.json``.
"""

from __future__ import annotations

import platform
import time

from ..core import PowerConfig, PowerResolver
from ..data import acmpub
from ..data.table import Table
from ..exceptions import ConfigurationError
from ..stream import StreamingResolver
from .runner import fast_mode

#: Full-run floors — the streaming layer's acceptance bars.
RESOLVE_SPEEDUP_MIN = 3.0
INDEX_SPEEDUP_MIN = 3.0

#: Smoke-run floors: tiny workloads only have to not be slower.
FAST_RESOLVE_SPEEDUP_MIN = 1.0
FAST_INDEX_SPEEDUP_MIN = 0.8


def _workload(scale: float | None, records_cap: int | None, batch_size: int | None):
    if scale is None:
        scale = 0.02 if fast_mode() else 0.15
    if records_cap is None:
        records_cap = 400 if fast_mode() else 2000
    if batch_size is None:
        batch_size = 80 if fast_mode() else 100
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    table = acmpub(scale=scale)
    records = table.records[: records_cap or len(table)]
    return table.attributes, records, scale, batch_size


def _chunks(records, batch_size):
    return [
        records[start : start + batch_size]
        for start in range(0, len(records), batch_size)
    ]


def run_stream_ingest_benchmark(
    scale: float | None = None,
    records_cap: int | None = None,
    batch_size: int | None = None,
    seed: int = 0,
    worker_band: str = "90",
) -> dict:
    """Time streamed vs re-resolved ingest and extend vs rebuild indexing."""
    attributes, records, scale, batch_size = _workload(
        scale, records_cap, batch_size
    )
    config = PowerConfig(seed=seed, pruning_threshold=0.3)
    chunks = _chunks(records, batch_size)

    def stream(index_mode: str):
        service = StreamingResolver(
            attributes,
            config=config,
            name="bench-stream",
            worker_band=worker_band,
            index_mode=index_mode,
        )
        started = time.perf_counter()
        for chunk in chunks:
            service.add_batch(
                [record.values for record in chunk],
                entity_ids=[record.entity_id for record in chunk],
            )
        wall = time.perf_counter() - started
        index_seconds = sum(r["index_seconds"] for r in service.reports)
        return service, wall, index_seconds

    extend, extend_wall, extend_index = stream("extend")
    rebuild, rebuild_wall, rebuild_index = stream("rebuild")

    started = time.perf_counter()
    final = None
    for end in range(batch_size, len(records) + batch_size, batch_size):
        prefix = Table(name="bench-prefix", attributes=tuple(attributes))
        for record in records[: min(end, len(records))]:
            prefix.append(record.values, entity_id=record.entity_id)
        final = PowerResolver(config).resolve(prefix, worker_band=worker_band)
    reresolve_wall = time.perf_counter() - started

    return {
        "benchmark": "stream-ingest",
        "fast_mode": fast_mode(),
        "python": platform.python_version(),
        "workload": {
            "dataset": "acmpub",
            "scale": scale,
            "records": len(records),
            "batch_size": batch_size,
            "batches": len(chunks),
            "seed": seed,
            "worker_band": worker_band,
        },
        "stream": {
            "wall_seconds": extend_wall,
            "index_seconds": extend_index,
            "questions": extend.total_questions,
            "pairs_decided": len(extend.labels),
            "clusters": len(extend.clusters()),
            "pooled_cost_cents": extend.cost_cents,
        },
        "rebuild": {
            "wall_seconds": rebuild_wall,
            "index_seconds": rebuild_index,
        },
        "reresolve": {"wall_seconds": reresolve_wall},
        "speedups": {
            "ingest_vs_reresolve": reresolve_wall / extend_wall,
            "index_extend_vs_rebuild": rebuild_index / extend_index,
        },
        "equivalence": {
            "extend_equals_rebuild": (
                extend.labels == rebuild.labels
                and extend.transcripts == rebuild.transcripts
                and extend.total_questions == rebuild.total_questions
                and extend.total_cost_cents == rebuild.total_cost_cents
                and extend.clusters() == rebuild.clusters()
            ),
            "stream_universe_equals_one_shot_join": (
                set(extend.labels) == set(final.candidate_pairs)
            ),
        },
    }


def stream_summary_rows(report: dict) -> list[list]:
    stream, speedups = report["stream"], report["speedups"]
    return [
        ["stream (extend)", f"{stream['wall_seconds']:.2f}s",
         f"{stream['index_seconds']:.3f}s", "--"],
        ["stream (rebuild)", f"{report['rebuild']['wall_seconds']:.2f}s",
         f"{report['rebuild']['index_seconds']:.3f}s",
         f"{speedups['index_extend_vs_rebuild']:.2f}x index"],
        ["re-resolve/batch", f"{report['reresolve']['wall_seconds']:.2f}s",
         "--", f"{speedups['ingest_vs_reresolve']:.2f}x ingest"],
    ]


def stream_acceptance_failures(report: dict) -> list[str]:
    """Gate violations, empty when the benchmark passes."""
    fast = report["fast_mode"]
    resolve_min = FAST_RESOLVE_SPEEDUP_MIN if fast else RESOLVE_SPEEDUP_MIN
    index_min = FAST_INDEX_SPEEDUP_MIN if fast else INDEX_SPEEDUP_MIN
    speedups, equivalence = report["speedups"], report["equivalence"]
    failures = []
    if not equivalence["extend_equals_rebuild"]:
        failures.append(
            "extend-mode stream is not bit-identical to rebuild mode"
        )
    if not equivalence["stream_universe_equals_one_shot_join"]:
        failures.append(
            "streamed decided-pair universe differs from the one-shot join"
        )
    if speedups["ingest_vs_reresolve"] < resolve_min:
        failures.append(
            f"streamed ingest is only {speedups['ingest_vs_reresolve']:.2f}x "
            f"faster than re-resolve-per-batch (floor {resolve_min}x)"
        )
    if speedups["index_extend_vs_rebuild"] < index_min:
        failures.append(
            f"index extend is only {speedups['index_extend_vs_rebuild']:.2f}x "
            f"faster than per-batch rebuild (floor {index_min}x)"
        )
    return failures


__all__ = [
    "FAST_INDEX_SPEEDUP_MIN",
    "FAST_RESOLVE_SPEEDUP_MIN",
    "INDEX_SPEEDUP_MIN",
    "RESOLVE_SPEEDUP_MIN",
    "run_stream_ingest_benchmark",
    "stream_acceptance_failures",
    "stream_summary_rows",
]
