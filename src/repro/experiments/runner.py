"""Shared machinery for the per-figure experiment harnesses.

A :class:`Workload` is a dataset prepared once — candidate pairs, similarity
vectors, record-level scores, and ground truth — and cached per process so
the many figure harnesses do not repeatedly pay the join cost.

:func:`run_method` executes any of the five algorithms (power, power+,
trans, acd, gcer) against a simulated crowd and returns one uniform result
row; :func:`compare_methods` runs a panel of them on the same platform,
wiring GCER's budget to ACD's question count exactly as the paper does
("we set this parameter the same as ACD").
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.runtime import CrowdEngine

from ..baselines import ACDResolver, GCERResolver, TransResolver
from ..core import PowerConfig, PowerResolver, pairwise_quality
from ..crowd import SimulatedCrowd, WorkerPool, ambiguity_difficulty
from ..data import acmpub, cora, restaurant, true_match_pairs
from ..data.ground_truth import Pair, pair_truth
from ..data.table import Table
from ..exceptions import ConfigurationError
from ..selection.base import SelectionResult
from ..similarity import SimilarityConfig, batch_similarity_matrix, similar_pairs

#: The accuracy bands of the paper's Figs. 9-14, by their figure labels.
WORKER_BANDS = ("70", "80", "90")

#: The five algorithms of the §7.2 comparison.
METHODS = ("power", "power+", "trans", "acd", "gcer")


def fast_mode() -> bool:
    """Honour POWER_BENCH_FAST=1: shrink sweeps for quick smoke runs."""
    return os.environ.get("POWER_BENCH_FAST", "") == "1"


@dataclass
class Workload:
    """A dataset prepared for experiments."""

    name: str
    table: Table
    pairs: list[Pair]
    vectors: np.ndarray
    scores: np.ndarray  # record-level similarity per pair (baseline input)
    truth: dict[Pair, bool]
    gold: set[Pair]
    pruning_threshold: float
    similarity: str = "bigram"
    extras: dict = field(default_factory=dict)


_WORKLOAD_CACHE: dict[tuple, Workload] = {}


def _dataset_table(name: str) -> tuple[Table, float]:
    """Benchmark-scale tables and their §7.1 pruning thresholds."""
    if name == "restaurant":
        return restaurant(), 0.2
    if name == "cora":
        return cora(), 0.2
    if name == "acmpub":
        # The paper's full ACMPub has 204k candidate pairs; the default
        # benchmark scale keeps the suite laptop-sized (see DESIGN.md).
        scale = 0.02 if fast_mode() else 0.05
        return acmpub(scale=scale), 0.3
    raise ConfigurationError(f"unknown dataset {name!r}")


def prepare(name: str, similarity: str = "bigram", max_pairs: int | None = None) -> Workload:
    """Prepare (and cache) a dataset workload.

    Args:
        name: ``"restaurant"``, ``"cora"`` or ``"acmpub"``.
        similarity: attribute similarity function for the vectors.
        max_pairs: keep only the *most similar* max_pairs candidates —
            used by the sweeps whose x-axis is the number of pairs.
    """
    key = (name, similarity, max_pairs)
    cached = _WORKLOAD_CACHE.get(key)
    if cached is not None:
        return cached
    table, threshold = _dataset_table(name)
    pairs = similar_pairs(table, threshold)
    config = SimilarityConfig.uniform(table.num_attributes, function=similarity)
    # The batch substrate is bit-identical to the scalar reference
    # (equivalence-tested) and keeps the big sweeps fast.
    vectors = batch_similarity_matrix(table, pairs, config)
    scores = vectors.mean(axis=1)
    if max_pairs is not None and len(pairs) > max_pairs:
        keep = np.argsort(-scores, kind="stable")[:max_pairs]
        keep.sort()
        pairs = [pairs[int(i)] for i in keep]
        vectors = vectors[keep]
        scores = scores[keep]
    workload = Workload(
        name=name,
        table=table,
        pairs=pairs,
        vectors=vectors,
        scores=scores,
        truth=pair_truth(table, pairs),
        gold=true_match_pairs(table),
        pruning_threshold=threshold,
        similarity=similarity,
    )
    _WORKLOAD_CACHE[key] = workload
    return workload


def make_crowd(
    workload: Workload, band: str, seed: int, mode: str = "simulation"
) -> SimulatedCrowd:
    """A crowd over the workload's pairs.

    ``mode="simulation"`` is the paper's §7.2.2 uniform-error worker model;
    ``mode="real"`` adds per-pair difficulty so errors concentrate on
    ambiguous pairs, reproducing the §7.2.1 real-AMT regime.
    """
    if mode not in ("simulation", "real"):
        raise ConfigurationError(f"mode must be 'simulation' or 'real', got {mode!r}")
    difficulty = None
    if mode == "real":
        difficulty = ambiguity_difficulty(workload.vectors, workload.pairs)
    return SimulatedCrowd(
        workload.truth,
        pool=WorkerPool(accuracy_range=band, seed=seed),
        difficulty=difficulty,
    )


@dataclass
class MethodRow:
    """One algorithm's outcome on one workload/crowd."""

    method: str
    dataset: str
    band: str
    seed: int
    f_measure: float
    precision: float
    recall: float
    questions: int
    iterations: int
    cost_cents: int
    assignment_time: float
    extras: dict = field(default_factory=dict)


def _score(workload: Workload, result: SelectionResult) -> MethodRow:
    quality = pairwise_quality(result.matches, workload.gold)
    return MethodRow(
        method=result.name,
        dataset=workload.name,
        band="",
        seed=0,
        f_measure=quality.f_measure,
        precision=quality.precision,
        recall=quality.recall,
        questions=result.questions,
        iterations=result.iterations,
        cost_cents=result.cost_cents,
        assignment_time=result.assignment_time,
        extras=dict(result.extras),
    )


def run_method(
    method: str,
    workload: Workload,
    crowd: SimulatedCrowd,
    seed: int = 0,
    epsilon: float | None = 0.1,
    selector: str = "power",
    gcer_budget: int | None = None,
    similarity: str | None = None,
    engine: "CrowdEngine | None" = None,
) -> MethodRow:
    """Run one of the §7.2 algorithms (plus ``crowder``) and score it.

    Args:
        engine: a :class:`repro.engine.CrowdEngine`; when given, the
            algorithm's crowd rounds run through the event-driven platform
            (faults, retries, budgets, simulated wall clock) and the row's
            extras carry the engine telemetry.  Every method — Power and
            the baselines alike — goes through the same adapter, so fault
            sweeps compare algorithms on an equal-footing platform.
    """
    if engine is not None:
        session = engine.session(
            crowd,
            machine_scores={
                pair: float(score)
                for pair, score in zip(workload.pairs, workload.scores)
            },
        )
    else:
        session = crowd.session()
    if method in ("power", "power+"):
        config = PowerConfig(
            similarity=similarity or workload.similarity,
            pruning_threshold=workload.pruning_threshold,
            epsilon=epsilon,
            selector=selector,
            error_tolerant=(method == "power+"),
            seed=seed,
        )
        resolver = PowerResolver(config)
        graph = resolver.build_graph(workload.table, workload.pairs)
        result = resolver.make_selector().run(graph, session)
        result.name = method
    elif method == "trans":
        result = TransResolver().run(workload.pairs, workload.scores, session)
    elif method == "acd":
        result = ACDResolver(seed=seed).run(workload.pairs, workload.scores, session)
    elif method == "gcer":
        result = GCERResolver(budget=gcer_budget).run(
            workload.pairs, workload.scores, session
        )
    elif method == "crowder":
        from ..baselines import CrowdERResolver

        result = CrowdERResolver().run(workload.pairs, workload.scores, session)
    else:
        raise ConfigurationError(
            f"unknown method {method!r}; known: {METHODS + ('crowder',)}"
        )
    if engine is not None:
        engine.finalize(session)
        result.extras["telemetry"] = engine.telemetry.as_dict()
        result.extras["wall_clock_seconds"] = engine.wall_clock_seconds
        result.extras["batch_sizes"] = list(session.batch_sizes)
    row = _score(workload, result)
    row.seed = seed
    return row


def compare_methods(
    workload: Workload,
    band: str,
    seed: int,
    mode: str = "simulation",
    methods: tuple[str, ...] = METHODS,
    epsilon: float | None = 0.1,
) -> list[MethodRow]:
    """Run a panel of methods on one shared crowd (the §7.1 protocol).

    GCER's question budget is tied to ACD's usage, as in the paper; when ACD
    is not in the panel, GCER runs unbudgeted.
    """
    crowd = make_crowd(workload, band, seed, mode)
    rows: list[MethodRow] = []
    acd_questions: int | None = None
    ordered = sorted(methods, key=lambda m: 0 if m == "acd" else 1)
    for method in ordered:
        row = run_method(
            method,
            workload,
            crowd,
            seed=seed,
            epsilon=epsilon,
            gcer_budget=acd_questions if method == "gcer" else None,
        )
        row.band = band
        if method == "acd":
            acd_questions = row.questions
        rows.append(row)
    rows.sort(key=lambda row: methods.index(row.method))
    return rows


def average_rows(rows: list[MethodRow]) -> MethodRow:
    """Average a list of same-method rows over seeds."""
    if not rows:
        raise ConfigurationError("cannot average zero rows")
    first = rows[0]
    return MethodRow(
        method=first.method,
        dataset=first.dataset,
        band=first.band,
        seed=-1,
        f_measure=float(np.mean([r.f_measure for r in rows])),
        precision=float(np.mean([r.precision for r in rows])),
        recall=float(np.mean([r.recall for r in rows])),
        questions=round(float(np.mean([r.questions for r in rows]))),
        iterations=round(float(np.mean([r.iterations for r in rows]))),
        cost_cents=round(float(np.mean([r.cost_cents for r in rows]))),
        assignment_time=float(np.mean([r.assignment_time for r in rows])),
    )
