"""Ablation harnesses for the design choices DESIGN.md calls out.

Each sweeps one knob of the Power/Power+ pipeline while holding the rest at
the paper's defaults, quantifying what that design choice buys.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core import PowerConfig, PowerResolver, pairwise_quality
from ..graph import GroupedGraph, PairGraph, split_grouping
from ..selection import SinglePathSelector, TopoSortSelector
from .reporting import emit
from .runner import average_rows, fast_mode, make_crowd, prepare, run_method


def _seeds(count: int) -> tuple[int, ...]:
    return tuple(range(2 if fast_mode() else count))


def confidence_sweep(
    thresholds: Sequence[float] = (0.6, 0.7, 0.8, 0.9, 0.99),
    dataset: str = "restaurant",
    band: str = "70",
    num_seeds: int = 3,
    save_to=None,
) -> list[list]:
    """Ablate the Power+ confidence threshold (paper default 0.8).

    Too low: wrong answers propagate (quality drops toward plain Power).
    Too high: almost everything is BLUE, costing questions and pushing the
    decision onto the histogram.
    """
    workload = prepare(dataset)
    rows = []
    for threshold in thresholds:
        seed_rows = []
        for seed in _seeds(num_seeds):
            crowd = make_crowd(workload, band, seed, mode="simulation")
            config = PowerConfig(
                pruning_threshold=workload.pruning_threshold,
                confidence_threshold=threshold,
                seed=seed,
            )
            resolver = PowerResolver(config)
            graph = resolver.build_graph(workload.table, workload.pairs)
            result = resolver.make_selector().run(graph, crowd.session())
            quality = pairwise_quality(result.matches, workload.gold)
            seed_rows.append((quality.f_measure, result.questions,
                              len(result.state.blue_vertices())))
        rows.append([
            dataset, threshold,
            sum(r[0] for r in seed_rows) / len(seed_rows),
            round(sum(r[1] for r in seed_rows) / len(seed_rows)),
            round(sum(r[2] for r in seed_rows) / len(seed_rows)),
        ])
    emit(f"Ablation: Power+ confidence threshold (band {band})",
         ["dataset", "threshold", "F1", "#questions", "#blue vertices"],
         rows, save_to)
    return rows


def histogram_sweep(
    bins: Sequence[int] = (5, 10, 20, 40),
    binnings: Sequence[str] = ("equi-depth", "equi-width"),
    dataset: str = "cora",
    band: str = "70",
    num_seeds: int = 2,
    save_to=None,
) -> list[list]:
    """Ablate the §6 histogram: bin count and equi-depth vs equi-width."""
    workload = prepare(dataset)
    rows = []
    for binning in binnings:
        for num_bins in bins:
            seed_rows = []
            for seed in _seeds(num_seeds):
                crowd = make_crowd(workload, band, seed, mode="simulation")
                config = PowerConfig(
                    pruning_threshold=workload.pruning_threshold,
                    num_bins=num_bins,
                    binning=binning,
                    seed=seed,
                )
                resolver = PowerResolver(config)
                graph = resolver.build_graph(workload.table, workload.pairs)
                result = resolver.make_selector().run(graph, crowd.session())
                quality = pairwise_quality(result.matches, workload.gold)
                seed_rows.append(quality.f_measure)
            rows.append([dataset, binning, num_bins,
                         sum(seed_rows) / len(seed_rows)])
    emit(f"Ablation: Power+ histogram binning (band {band})",
         ["dataset", "binning", "#bins", "F1"], rows, save_to)
    return rows


def path_cover_compare(
    dataset: str = "restaurant",
    epsilon: float = 0.1,
    band: str = "90",
    seed: int = 0,
    save_to=None,
) -> list[list]:
    """Matching-based Dilworth decomposition vs greedy chain peeling.

    The maximum matching guarantees the *minimal* number of paths (Theorem
    2); greedy peeling is cheaper per round but yields more, shorter paths
    and therefore more binary searches.
    """
    workload = prepare(dataset)
    base = PairGraph(workload.pairs, workload.vectors)
    grouped = GroupedGraph(base, split_grouping(workload.vectors, epsilon))
    rows = []
    for cover in ("matching", "greedy"):
        crowd = make_crowd(workload, band, seed, mode="real")
        selector = SinglePathSelector(seed=seed, cover=cover)
        result = selector.run(grouped, crowd.session())
        quality = pairwise_quality(
            {p for p, v in result.labels.items() if v}, workload.gold
        )
        rows.append([dataset, cover, quality.f_measure, result.questions,
                     result.assignment_time])
    emit("Ablation: path decomposition (SinglePath on grouped graph)",
         ["dataset", "cover", "F1", "#questions", "assign time (s)"],
         rows, save_to)
    return rows


def topo_layer_sweep(
    positions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    dataset: str = "restaurant",
    band: str = "90",
    seed: int = 0,
    save_to=None,
) -> list[list]:
    """Ablate which topological level Power asks first.

    The paper argues for the middle level (§5.3.2): top levels are likely
    GREEN and bottom levels likely RED, so asking either end deduces little.
    """
    workload = prepare(dataset)
    base = PairGraph(workload.pairs, workload.vectors)
    grouped = GroupedGraph(base, split_grouping(workload.vectors, 0.1))
    rows = []
    for position in positions:
        crowd = make_crowd(workload, band, seed, mode="real")
        selector = TopoSortSelector(seed=seed, layer_position=position)
        result = selector.run(grouped, crowd.session())
        quality = pairwise_quality(
            {p for p, v in result.labels.items() if v}, workload.gold
        )
        rows.append([dataset, position, quality.f_measure,
                     result.questions, result.iterations])
    emit("Ablation: topological layer position (0 = top, 1 = bottom)",
         ["dataset", "position", "F1", "#questions", "#iterations"],
         rows, save_to)
    return rows


def aggregation_compare(
    dataset: str = "restaurant",
    band: str = "70",
    num_seeds: int = 2,
    save_to=None,
) -> list[list]:
    """Compare vote-aggregation schemes feeding Power+ (§6's "any other
    techniques can be integrated"): plain majority, oracle-accuracy-weighted
    majority, and log-odds weighting by gold-estimated accuracies.
    """
    from ..crowd import SimulatedCrowd, WorkerPool
    from ..crowd.quality import QualityAwareCrowd

    workload = prepare(dataset)
    gold = {
        (1_000_000 + i, 1_000_001 + i): bool(i % 2) for i in range(0, 80, 2)
    }
    rows = []
    for label in ("majority", "weighted", "quality-aware"):
        seed_rows = []
        for seed in _seeds(num_seeds):
            pool = WorkerPool(accuracy_range=band, seed=seed)
            if label == "quality-aware":
                crowd = QualityAwareCrowd(workload.truth, pool, gold=gold)
            else:
                crowd = SimulatedCrowd(workload.truth, pool, aggregation=label)
            seed_rows.append(run_method("power+", workload, crowd, seed=seed))
        row = average_rows(seed_rows)
        rows.append([dataset, label, row.f_measure, row.questions])
    emit(f"Ablation: vote aggregation under Power+ (band {band})",
         ["dataset", "aggregation", "F1", "#questions"], rows, save_to)
    return rows


def budget_curve(
    budgets=(0, 25, 50, 100, 200, None),
    dataset: str = "restaurant",
    band: str = "90",
    seed: int = 0,
    save_to=None,
) -> list[list]:
    """The anytime extension: quality as a function of the question budget.

    With budget 0 the histogram fallback is a pure machine classifier; each
    extra question buys partial-order inference on top.
    """
    from ..core import pairwise_quality
    from ..graph import GroupedGraph, PairGraph, split_grouping

    workload = prepare(dataset)
    base = PairGraph(workload.pairs, workload.vectors)
    grouped = GroupedGraph(base, split_grouping(workload.vectors, 0.1))
    rows = []
    for budget in budgets:
        crowd = make_crowd(workload, band, seed, mode="real")
        selector = TopoSortSelector(seed=seed)
        result = selector.run(grouped, crowd.session(), budget=budget)
        quality = pairwise_quality(
            {p for p, v in result.labels.items() if v}, workload.gold
        )
        rows.append([
            dataset, "unlimited" if budget is None else budget,
            result.questions, quality.f_measure,
        ])
    emit(f"Ablation: question budget vs quality (band {band})",
         ["dataset", "budget", "#questions", "F1"], rows, save_to)
    return rows


def index_dimensionality(
    dataset: str = "restaurant",
    size: int = 1500,
    save_to=None,
) -> list[list]:
    """2-D range tree + verification vs the full m-dimensional range tree.

    Quantifies the paper's footnote 5: indexing all attributes is correct
    but, at these dimensionalities, no faster than indexing two and
    verifying the rest.
    """
    import time as _time

    from ..graph import index_edges
    from ..graph.range_tree_nd import index_edges_nd

    workload = prepare(dataset)
    vectors = workload.vectors[:size]
    rows = []
    for label, algorithm in (("2d+verify", index_edges), ("full-nd", index_edges_nd)):
        started = _time.perf_counter()
        edges = algorithm(vectors)
        rows.append([dataset, size, label, round(_time.perf_counter() - started, 3),
                     len(edges)])
    emit("Ablation: index dimensionality (graph construction)",
         ["dataset", "#pairs", "index", "time (s)", "#edges"], rows, save_to)
    return rows


def incremental_compare(
    dataset: str = "restaurant",
    batch_sizes=(100, 200, 430),
    band: str = "90",
    save_to=None,
) -> list[list]:
    """Extension: streaming resolution vs one-shot, over the batch size.

    Smaller batches mean fresher results per arrival but more questions:
    each batch's graph cannot share boundary information with future pairs.
    """
    from ..core import PowerResolver
    from ..core.incremental import stream_in_batches

    workload = prepare(dataset)
    config = PowerConfig(seed=0)
    one_shot = PowerResolver(config).resolve(workload.table, worker_band=band)
    rows = [[dataset, "one-shot", one_shot.questions,
             one_shot.iterations, one_shot.quality.f_measure]]
    for batch_size in batch_sizes:
        resolver = stream_in_batches(
            workload.table, batch_size=batch_size, config=config, worker_band=band
        )
        rows.append([
            dataset, f"stream/{batch_size}", resolver.total_questions,
            resolver.total_iterations, resolver.quality().f_measure,
        ])
    emit(f"Extension: incremental vs one-shot resolution (band {band})",
         ["dataset", "mode", "#questions", "#iterations", "F1"], rows, save_to)
    return rows


def spammer_sweep(
    fractions=(0.0, 0.2, 0.4),
    dataset: str = "restaurant",
    band: str = "90",
    num_seeds: int = 2,
    save_to=None,
) -> list[list]:
    """Extension: robustness to spammers under different aggregations.

    Replaces a growing fraction of an otherwise-good pool with random
    spammers and compares Power+ fed by plain majority voting vs the
    gold-estimated log-odds aggregation — the §2.2.2 "eliminating bad
    workers" scenario made concrete.
    """
    from ..crowd import SimulatedCrowd, WorkerPool
    from ..crowd.quality import QualityAwareCrowd

    workload = prepare(dataset)
    gold = {(1_000_000 + i, 1_000_001 + i): bool(i % 2) for i in range(0, 80, 2)}
    rows = []
    for fraction in fractions:
        for label in ("majority", "quality-aware"):
            seed_rows = []
            for seed in _seeds(num_seeds):
                pool = WorkerPool(
                    accuracy_range=band, seed=seed, spammer_fraction=fraction
                )
                if label == "quality-aware":
                    crowd = QualityAwareCrowd(workload.truth, pool, gold=gold)
                else:
                    crowd = SimulatedCrowd(workload.truth, pool, aggregation="majority")
                seed_rows.append(run_method("power+", workload, crowd, seed=seed))
            row = average_rows(seed_rows)
            rows.append([dataset, fraction, label, row.f_measure, row.questions])
    emit(f"Extension: spammer robustness (band {band} honest workers)",
         ["dataset", "spammer frac", "aggregation", "F1", "#questions"],
         rows, save_to)
    return rows


def extended_baselines(
    dataset: str = "restaurant",
    band: str = "80",
    num_seeds: int = 2,
    save_to=None,
) -> list[list]:
    """Extension: the full seven-way comparison.

    Adds CrowdER (ask everything — the cost ceiling) and node-priority
    transitivity (Vesdapunt et al. 2014) to the paper's five-method panel.
    """
    from ..baselines import CrowdERResolver, NodePriorityResolver

    workload = prepare(dataset)
    rows = []
    for seed in _seeds(num_seeds):
        crowd = make_crowd(workload, band, seed, mode="simulation")
        for method in ("power", "power+"):
            rows.append(run_method(method, workload, crowd, seed=seed))
        for resolver in (
            CrowdERResolver(),
            NodePriorityResolver(),
        ):
            result = resolver.run(workload.pairs, workload.scores, crowd.session())
            quality = pairwise_quality(result.matches, workload.gold)
            from .runner import MethodRow

            rows.append(MethodRow(
                method=result.name, dataset=dataset, band=band, seed=seed,
                f_measure=quality.f_measure, precision=quality.precision,
                recall=quality.recall, questions=result.questions,
                iterations=result.iterations, cost_cents=result.cost_cents,
                assignment_time=result.assignment_time,
            ))
        from .runner import run_method as _run

        for method in ("trans", "acd", "gcer"):
            rows.append(_run(method, workload, crowd, seed=seed))
    merged = {}
    for row in rows:
        merged.setdefault(row.method, []).append(row)
    table = []
    order = ["power", "power+", "trans", "node-priority", "gcer", "acd", "crowder"]
    for method in order:
        row = average_rows(merged[method])
        table.append([dataset, method, row.f_measure, row.questions, row.iterations])
    emit(f"Extension: seven-way comparison (band {band}, simulation workers)",
         ["dataset", "method", "F1", "#questions", "#iterations"],
         table, save_to)
    return table


def scalability_sweep(
    sizes=(500, 1000, 2000, 4000),
    dataset: str = "restaurant",
    band: str = "90",
    seed: int = 0,
    save_to=None,
) -> list[list]:
    """Extension: how Power's cost scales with the candidate-set size.

    The partial order's value grows with the graph: questions should grow
    clearly sub-linearly in the number of pairs (each answer colors a
    growing cone), which is what makes the method viable at ACMPub scale.
    """
    import time as _time

    rows = []
    for size in sizes:
        workload = prepare(dataset, max_pairs=size)
        if len(workload.pairs) < size:
            continue
        crowd = make_crowd(workload, band, seed, mode="real")
        started = _time.perf_counter()
        row = run_method("power", workload, crowd, seed=seed)
        elapsed = _time.perf_counter() - started
        rows.append([
            dataset, size, row.questions,
            round(row.questions / size, 4), row.f_measure, round(elapsed, 2),
        ])
    emit(f"Extension: Power cost scaling (band {band})",
         ["dataset", "#pairs", "#questions", "questions/pair", "F1", "time (s)"],
         rows, save_to)
    return rows


def latency_compare(
    dataset: str = "restaurant",
    band: str = "90",
    seed: int = 0,
    save_to=None,
) -> list[list]:
    """Extension: modeled wall-clock latency per selection algorithm.

    Converts each run's actual round structure (questions per crowd round)
    into wall-clock under :class:`repro.crowd.latency.LatencyModel` —
    the paper's iteration argument (Figs. 11/14) in minutes.
    """
    from ..baselines import CrowdERResolver, TransResolver
    from ..crowd.latency import LatencyModel
    from ..graph import GroupedGraph, PairGraph, split_grouping
    from ..selection import MultiPathSelector, SinglePathSelector, TopoSortSelector

    workload = prepare(dataset)
    base = PairGraph(workload.pairs, workload.vectors)
    grouped = GroupedGraph(base, split_grouping(workload.vectors, 0.1))
    crowd = make_crowd(workload, band, seed, mode="real")
    model = LatencyModel()
    rows = []
    for selector in (SinglePathSelector(seed=seed), MultiPathSelector(seed=seed),
                     TopoSortSelector(seed=seed)):
        session = crowd.session()
        result = selector.run(grouped, session)
        rows.append([
            dataset, result.name, result.questions, result.iterations,
            round(model.estimate_seconds(session.batch_sizes) / 60, 1),
        ])
    for resolver in (TransResolver(), CrowdERResolver()):
        session = crowd.session()
        result = resolver.run(workload.pairs, workload.scores, session)
        rows.append([
            dataset, result.name, result.questions, result.iterations,
            round(model.estimate_seconds(session.batch_sizes) / 60, 1),
        ])
    emit(f"Extension: modeled wall-clock latency (band {band})",
         ["dataset", "method", "#questions", "#iterations", "est. minutes"],
         rows, save_to)
    return rows


def fault_sweep(
    rates: Sequence[float] = (0.0, 0.1, 0.25),
    dataset: str = "restaurant",
    band: str = "90",
    seed: int = 0,
    methods: Sequence[str] = ("power", "power+", "trans", "gcer"),
    telemetry_dir: str = "benchmarks/results",
    save_to=None,
) -> list[list]:
    """Extension: Power vs. baselines on a faulty crowd platform.

    Drives every method through the :mod:`repro.engine` orchestration
    runtime while a one-knob fault profile (worker no-shows, abandonment,
    straggler tails, spam bursts — :meth:`FaultProfile.scaled`) degrades
    the platform.  Reported per (rate, method): F1, questions, total spend
    including the re-post surcharge, simulated wall clock, re-posts and
    expired HITs.  At rate 0 the engine is provably inert, so that column
    doubles as a regression check against the synchronous numbers; as the
    rate grows, the cost gap between few-question methods (Power) and
    question-hungry baselines *widens*, because every extra question is
    another lottery ticket on the fault distribution.
    """
    import json as _json
    from pathlib import Path as _Path

    from ..engine import CrowdEngine, EngineConfig, FaultProfile

    workload = prepare(dataset)
    if fast_mode():
        rates = tuple(rates)[:2]
        methods = tuple(methods)[:2]
    rows = []
    telemetry_out: dict[str, dict] = {}
    for rate in rates:
        profile = FaultProfile.scaled(rate) if rate > 0 else FaultProfile()
        # One shared platform per fault level (the paper's §7.1 protocol:
        # algorithms asking the same pair observe the same answer).
        crowd = make_crowd(workload, band, seed, mode="simulation")
        for method in methods:
            engine = CrowdEngine(
                EngineConfig(faults=profile, seed=seed, event_log_limit=25)
            )
            row = run_method(method, workload, crowd, seed=seed, engine=engine)
            telemetry = engine.telemetry
            rows.append([
                dataset, rate, method, row.f_measure, row.questions,
                round(telemetry.total_spent_cents),
                round(telemetry.wall_clock_seconds / 60, 1),
                telemetry.re_posts, telemetry.expired,
            ])
            report = telemetry.as_dict()
            report.pop("recent_events", None)
            telemetry_out[f"{method}@rate={rate:g}"] = report
    if telemetry_dir is not None:
        out_path = _Path(telemetry_dir) / "ENGINE_fault_sweep.json"
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(
            _json.dumps(
                {"dataset": dataset, "band": band, "seed": seed,
                 "runs": telemetry_out},
                indent=2,
            ) + "\n",
            encoding="utf-8",
        )
    emit(f"Extension: fault-injection panel (band {band}, engine runtime)",
         ["dataset", "fault rate", "method", "F1", "#questions",
          "spent (cents)", "wall clock (min)", "#re-posts", "#expired"],
         rows, save_to)
    return rows


def assignment_compare(
    dataset: str = "restaurant",
    band=(0.55, 0.98),
    seed: int = 0,
    save_to=None,
) -> list[list]:
    """Extension: question-to-worker assignment policies under Power+.

    A mixed-quality pool (0.55-0.98) makes routing matter: quality-aware
    assignment (best estimated workers, load-capped) should beat random and
    round-robin — the §2.2.2 "assigning questions to appropriate workers"
    idea, end to end.
    """
    from ..crowd import (
        AssigningCrowd,
        BestWorkerAssignment,
        RandomAssignment,
        RoundRobinAssignment,
        WorkerPool,
    )
    from ..crowd.quality import estimate_accuracy_from_gold

    workload = prepare(dataset)
    gold = {(1_000_000 + i, 1_000_001 + i): bool(i % 2) for i in range(0, 80, 2)}
    pool = WorkerPool(size=40, accuracy_range=band, seed=seed)
    estimates = {
        w.worker_id: estimate_accuracy_from_gold(w, gold) for w in pool.workers
    }
    rows = []
    for label, policy in (
        ("random", RandomAssignment()),
        ("round-robin", RoundRobinAssignment()),
        ("best-worker", BestWorkerAssignment(estimates, max_load_share=0.2)),
    ):
        crowd = AssigningCrowd(workload.truth, pool, policy)
        row = run_method("power+", workload, crowd, seed=seed)
        rows.append([dataset, label, row.f_measure, row.questions])
    emit("Extension: assignment policies (mixed 0.55-0.98 pool, Power+)",
         ["dataset", "policy", "F1", "#questions"], rows, save_to)
    return rows
