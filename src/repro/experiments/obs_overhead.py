"""Observability overhead benchmark: the cost of watching the pipeline.

The :mod:`repro.obs` transparency contract has two halves.  The battery
proves instrumentation never changes *results*
(``check_observability_transparent``); this harness proves it never
meaningfully changes *speed*.  One full resolution (join → vectorize →
construct → select → cluster, simulated crowd included) runs in three
modes, interleaved and timed best-of-N:

* **baseline** — observability disabled (the default
  :data:`~repro.obs.instrument.DISABLED` handle): every hook costs one
  attribute check;
* **metrics** — the registry records counters/gauges/histograms but spans
  are the no-op singleton (tracing off);
* **tracing** — spans *and* metrics, the full ``--trace --metrics-out``
  configuration.

Gates (relaxed in ``POWER_BENCH_FAST=1`` smoke runs, where the workload is
too small for stable percentages): metrics-only overhead under
:data:`METRICS_OVERHEAD_MAX_PCT`, tracing+metrics overhead under
:data:`TRACING_OVERHEAD_MAX_PCT`, identical resolution results in all
three modes, and a deterministic span merge — a 4-worker sharded run's
grafted trace must match the inline (``workers=0``) run's structure
exactly.  The report lands in ``benchmarks/results/BENCH_obs.json``.
"""

from __future__ import annotations

import platform
import time

from ..core import PowerConfig, PowerResolver
from ..data import acmpub, cora, restaurant
from ..exceptions import ConfigurationError
from ..obs import Observability, activated, structure
from .runner import fast_mode

#: Full-run ceilings (percent over baseline) — the ISSUE's acceptance bars.
TRACING_OVERHEAD_MAX_PCT = 5.0
METRICS_OVERHEAD_MAX_PCT = 1.0

#: Smoke-run ceilings: a sub-second workload makes relative overhead noise;
#: the smoke gate only demands the same order of magnitude.
FAST_TRACING_OVERHEAD_MAX_PCT = 40.0
FAST_METRICS_OVERHEAD_MAX_PCT = 25.0

#: Workers/shards for the span-merge determinism check.
SHARD_WORKERS = 4


def _bench_table(dataset: str, scale: float | None):
    if dataset == "acmpub":
        if scale is None:
            scale = 0.02 if fast_mode() else 0.15
        return acmpub(scale=scale), scale, 0.3
    if dataset == "restaurant":
        return restaurant(), 1.0, 0.2
    if dataset == "cora":
        return cora(), 1.0, 0.2
    raise ConfigurationError(f"unknown dataset {dataset!r}")


def _fingerprint(result) -> tuple:
    """Everything the transparency contract says must not move."""
    return (
        result.questions,
        result.iterations,
        result.cost_cents,
        tuple(sorted(result.matches)),
        tuple(tuple(sorted(c)) for c in sorted(result.clusters)),
    )


def run_obs_overhead_benchmark(
    dataset: str = "acmpub",
    scale: float | None = None,
    repeats: int | None = None,
    seed: int = 0,
    worker_band: str = "90",
) -> dict:
    """Time the three observability modes and check the shard span merge.

    Modes are *interleaved* (baseline, metrics, tracing, baseline, ...)
    so thermal drift and cache state hit all three equally; each mode's
    reported time is its best across repeats.
    """
    if repeats is None:
        repeats = 1 if fast_mode() else 3
    table, scale, threshold = _bench_table(dataset, scale)
    config = PowerConfig(seed=seed, pruning_threshold=threshold)

    def resolve():
        return PowerResolver(config).resolve(table, worker_band=worker_band)

    def baseline():
        return resolve(), None

    def metrics_only():
        with activated(Observability(tracing=False, metrics=True)) as obs:
            result = resolve()
        return result, obs

    def tracing():
        with activated(Observability(tracing=True, metrics=True)) as obs:
            result = resolve()
        return result, obs

    modes = {"baseline": baseline, "metrics": metrics_only, "tracing": tracing}
    best: dict[str, float] = {name: float("inf") for name in modes}
    fingerprints: dict[str, tuple] = {}
    last_obs: dict[str, object] = {}
    for _ in range(max(1, repeats)):
        for name, runner in modes.items():
            start = time.perf_counter()
            result, obs = runner()
            elapsed = time.perf_counter() - start
            best[name] = min(best[name], elapsed)
            fingerprints[name] = _fingerprint(result)
            if obs is not None:
                last_obs[name] = obs

    equivalent = (
        fingerprints["baseline"]
        == fingerprints["metrics"]
        == fingerprints["tracing"]
    )

    def overhead_pct(mode: str) -> float:
        if best["baseline"] <= 0:
            return 0.0
        return round(
            max(0.0, (best[mode] - best["baseline"]) / best["baseline"]) * 100,
            3,
        )

    traced = last_obs["tracing"]
    spans = structure(traced.tracer.export())
    shard = _shard_merge_determinism(config, table, worker_band)
    fast = fast_mode()
    report = {
        "benchmark": "obs-overhead",
        "dataset": table.name,
        "records": len(table),
        "scale": scale,
        "repeats": repeats,
        "seed": seed,
        "fast_mode": fast,
        "python": platform.python_version(),
        "modes": {
            "baseline": {"seconds": round(best["baseline"], 6)},
            "metrics": {
                "seconds": round(best["metrics"], 6),
                "overhead_pct": overhead_pct("metrics"),
                "metrics_recorded": len(last_obs["metrics"].registry),
            },
            "tracing": {
                "seconds": round(best["tracing"], 6),
                "overhead_pct": overhead_pct("tracing"),
                "spans": len(spans),
                "metrics_recorded": len(traced.registry),
            },
        },
        "equivalent": equivalent,
        "gates": {
            "tracing_overhead_max_pct": (
                FAST_TRACING_OVERHEAD_MAX_PCT if fast else TRACING_OVERHEAD_MAX_PCT
            ),
            "metrics_overhead_max_pct": (
                FAST_METRICS_OVERHEAD_MAX_PCT if fast else METRICS_OVERHEAD_MAX_PCT
            ),
        },
        "shard_merge": shard,
    }
    return report


def _shard_merge_determinism(
    config: PowerConfig, table, worker_band: str
) -> dict:
    """A 4-worker traced shard run must merge to the inline run's shape."""
    from ..shard import ShardedResolver

    shard_config = PowerConfig(
        seed=config.seed,
        pruning_threshold=config.pruning_threshold,
        shards=SHARD_WORKERS,
    )

    def run(workers: int):
        with activated(Observability(tracing=True, metrics=True)) as obs:
            result = ShardedResolver(shard_config, workers=workers).resolve(
                table, worker_band=worker_band
            )
        return result, structure(obs.tracer.export())

    inline_result, inline_shape = run(0)
    pooled_result, pooled_shape = run(SHARD_WORKERS)
    return {
        "workers": SHARD_WORKERS,
        "shards": SHARD_WORKERS,
        "deterministic": pooled_shape == inline_shape,
        "equivalent": _fingerprint(pooled_result) == _fingerprint(inline_result),
        "spans": len(pooled_shape),
    }


def obs_summary_rows(report: dict) -> list[tuple]:
    """Rows for the console table (mode, seconds, overhead)."""
    modes = report["modes"]
    rows = [("baseline", f"{modes['baseline']['seconds']:.3f}", "-", "-")]
    for name in ("metrics", "tracing"):
        mode = modes[name]
        rows.append((
            name,
            f"{mode['seconds']:.3f}",
            f"{mode['overhead_pct']:.2f}%",
            str(mode.get("spans", mode.get("metrics_recorded", "-"))),
        ))
    return rows


def obs_acceptance_failures(report: dict) -> list[str]:
    """Every violated gate, as a human-readable sentence."""
    failures = []
    gates = report["gates"]
    modes = report["modes"]
    if not report["equivalent"]:
        failures.append(
            "instrumented runs diverged from the baseline resolution "
            "(transparency violation)"
        )
    tracing_pct = modes["tracing"]["overhead_pct"]
    if tracing_pct > gates["tracing_overhead_max_pct"]:
        failures.append(
            f"tracing+metrics overhead {tracing_pct:.2f}% exceeds "
            f"{gates['tracing_overhead_max_pct']}%"
        )
    metrics_pct = modes["metrics"]["overhead_pct"]
    if metrics_pct > gates["metrics_overhead_max_pct"]:
        failures.append(
            f"metrics-only overhead {metrics_pct:.2f}% exceeds "
            f"{gates['metrics_overhead_max_pct']}%"
        )
    shard = report["shard_merge"]
    if not shard["deterministic"]:
        failures.append(
            f"{shard['workers']}-worker trace structure differs from the "
            "inline run (span merge is not deterministic)"
        )
    if not shard["equivalent"]:
        failures.append("sharded traced run diverged from the inline run")
    if modes["tracing"].get("spans", 0) == 0:
        failures.append("tracing mode recorded no spans (vacuous benchmark)")
    return failures


__all__ = [
    "METRICS_OVERHEAD_MAX_PCT",
    "TRACING_OVERHEAD_MAX_PCT",
    "obs_acceptance_failures",
    "obs_summary_rows",
    "run_obs_overhead_benchmark",
]
