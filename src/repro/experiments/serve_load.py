"""Serve-load benchmark: concurrency must pay while correctness holds.

The serving layer's pitch is that one process can host many tenants whose
crowd round-trips overlap: while tenant A waits for its (simulated) crowd
answers, tenants B..Z get the CPU.  This harness measures that claim on a
synthetic restaurant workload and gates three things at once:

* **throughput scaling** — the same per-session workload is pushed
  through a live :class:`~repro.serve.ResolutionServer` at 1, 8, and 32
  concurrent sessions (each driver a real socket client).  Aggregate
  batch throughput at the top concurrency must be at least
  :data:`THROUGHPUT_SCALING_MIN`× the single-session baseline.  The
  crowd round-trip is modeled with ``crowd_latency`` (an ``asyncio``
  sleep after each batch's compute — timing only, never state), which is
  exactly the resource concurrency can reclaim.
* **bit-identical isolation** — while the clock runs, every session's
  final ``state_sha`` is compared against a direct serial
  :class:`~repro.stream.StreamingResolver` run of the same name, seed,
  and chunks.  A timing win that perturbs resolution state is a bug.
* **load shedding, not collapse** — a deliberately over-provisioned
  pipelined burst against a ``queue_depth=2`` server must produce
  refusals that each carry a positive ``retry_after``, leave the server
  healthy, and leave the session holding exactly the admitted batches.

``POWER_BENCH_FAST=1`` shrinks the workload (fewer sessions, shorter
simulated round-trips) and relaxes the scaling bar — sub-second phases
make ratios noisy; the equivalence and shedding gates are never relaxed.
The report lands in ``benchmarks/results/BENCH_serve.json``.
"""

from __future__ import annotations

import asyncio
import platform
import statistics
import time

from ..core import PowerConfig
from ..data import synthesize
from ..data.perturb import LIGHT_PERTURBATIONS
from ..data.vocab import CITIES, CUISINES, RESTAURANT_NAME_HEADS
from ..exceptions import ConfigurationError
from ..serve import PROTOCOL_VERSION, AsyncServeClient, ResolutionServer, ServeApp
from ..stream import StreamingResolver
from .runner import fast_mode

ATTRS = ("name", "city", "cuisine")

#: Full-run floor: aggregate throughput at max concurrency vs one session.
THROUGHPUT_SCALING_MIN = 3.0
#: Smoke-run floor: tiny phases only have to show concurrency not hurting.
FAST_THROUGHPUT_SCALING_MIN = 1.2

#: Session fan-outs per phase (full / smoke).
CONCURRENCIES = (1, 8, 32)
FAST_CONCURRENCIES = (1, 4)

#: The pipelined burst thrown at the ``queue_depth=2`` shedding server.
SHED_BURST = 6


def _entity(rng):
    name = RESTAURANT_NAME_HEADS[int(rng.integers(0, len(RESTAURANT_NAME_HEADS)))]
    return (
        f"{name} house",
        CITIES[int(rng.integers(0, len(CITIES)))],
        CUISINES[int(rng.integers(0, len(CUISINES)))],
    )


def _workload(records_cap, batch_size, crowd_latency, concurrencies):
    if records_cap is None:
        records_cap = 45 if fast_mode() else 75
    if batch_size is None:
        batch_size = 15 if fast_mode() else 25
    if crowd_latency is None:
        crowd_latency = 0.3 if fast_mode() else 1.0
    if concurrencies is None:
        concurrencies = FAST_CONCURRENCIES if fast_mode() else CONCURRENCIES
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    table = synthesize(
        name="serve-load",
        attributes=ATTRS,
        entity_factory=_entity,
        num_entities=max(2, int(records_cap * 0.6)),
        num_records=records_cap,
        seed=99,
        intensity=0.4,
        pool=LIGHT_PERTURBATIONS,
    )
    records = list(table)
    chunks = [
        records[start : start + batch_size]
        for start in range(0, len(records), batch_size)
    ]
    return chunks, records_cap, batch_size, crowd_latency, tuple(concurrencies)


def _rows(chunk):
    return [list(record.values) for record in chunk]


def _ids(chunk):
    return [record.entity_id for record in chunk]


def _direct_sha(root, name, chunks, seed, worker_band):
    resolver = StreamingResolver(
        ATTRS,
        config=PowerConfig(seed=seed),
        name=name,
        worker_band=worker_band,
        checkpoint_dir=root / f"direct-{name}",
    )
    for chunk in chunks:
        resolver.add_batch(_rows(chunk), entity_ids=_ids(chunk))
    return resolver.checkpoint()["state_sha"]


async def _drive_session(client, name, chunks, worker_band, latencies):
    await client.create_session(name, list(ATTRS), worker_band=worker_band)
    for chunk in chunks:
        started = time.perf_counter()
        await client.ingest_with_retry(name, _rows(chunk), _ids(chunk))
        latencies.append(time.perf_counter() - started)
    record = await client.checkpoint(name)
    await client.close_session(name)
    return record["state_sha"]


async def _throughput_phase(root, concurrency, chunks, crowd_latency, worker_band):
    app = ServeApp(
        root / f"phase-{concurrency}",
        max_sessions=concurrency,
        queue_depth=8,
        crowd_latency=crowd_latency,
    )
    latencies: list[float] = []
    async with ResolutionServer(app) as server:

        async def one(index):
            async with AsyncServeClient(port=server.port) as client:
                return index, await _drive_session(
                    client, f"s{index}", chunks, worker_band, latencies
                )

        started = time.perf_counter()
        shas = dict(
            await asyncio.gather(*(one(index) for index in range(concurrency)))
        )
        wall = time.perf_counter() - started
    await app.drain()
    return shas, wall, latencies


async def _shedding_phase(root, chunks, crowd_latency):
    """Pipelined over-provisioned burst against a queue_depth=2 server."""
    app = ServeApp(
        root / "shed",
        max_sessions=2,
        queue_depth=2,
        crowd_latency=max(crowd_latency, 0.2),
    )
    burst_chunk = chunks[0]
    async with ResolutionServer(app) as server:
        async with AsyncServeClient(port=server.port) as client:
            await client.create_session("shed", list(ATTRS))
            responses = await asyncio.gather(
                *(
                    client.request(
                        "ingest",
                        session="shed",
                        rows=_rows(burst_chunk),
                        entity_ids=_ids(burst_chunk),
                    )
                    for _ in range(SHED_BURST)
                )
            )
            shed = [r for r in responses if not r["ok"]]
            admitted = [r for r in responses if r["ok"]]
            health = await client.healthz()
            recorded = (await client.query_clusters("shed"))["batches"]
    await app.drain()
    return {
        "burst": SHED_BURST,
        "queue_depth": 2,
        "admitted": len(admitted),
        "shed": len(shed),
        "all_sheds_priced": all(
            r.get("error") == "overloaded" and r.get("retry_after", 0) > 0
            for r in shed
        ),
        "no_hard_errors": all(
            r["ok"] or r.get("error") == "overloaded" for r in responses
        ),
        "healthz_ok": health["status"] == "ok"
        and health["protocol"] == PROTOCOL_VERSION,
        "recorded_equals_admitted": recorded == len(admitted),
    }


def run_serve_load_benchmark(
    root,
    records_cap: int | None = None,
    batch_size: int | None = None,
    crowd_latency: float | None = None,
    concurrencies: tuple[int, ...] | None = None,
    seed: int = 0,
    worker_band: str = "90",
) -> dict:
    """Time multi-tenant serving at each fan-out and gate the results.

    Args:
        root: scratch directory for checkpoint roots and reference runs
            (a temporary directory; nothing in it outlives the report).
    """
    from pathlib import Path

    root = Path(root)
    chunks, records_cap, batch_size, crowd_latency, concurrencies = _workload(
        records_cap, batch_size, crowd_latency, concurrencies
    )

    # Reference hashes: one direct serial run per session name ever used.
    references = {
        f"s{index}": _direct_sha(
            root, f"s{index}", chunks, seed, worker_band
        )
        for index in range(max(concurrencies))
    }

    phases = []
    for concurrency in concurrencies:
        shas, wall, latencies = asyncio.run(
            _throughput_phase(root, concurrency, chunks, crowd_latency, worker_band)
        )
        batches_total = concurrency * len(chunks)
        ordered = sorted(latencies)
        phases.append(
            {
                "concurrency": concurrency,
                "wall_seconds": wall,
                "batches_total": batches_total,
                "throughput_batches_per_second": batches_total / wall,
                "p50_seconds": statistics.median(ordered),
                "p99_seconds": ordered[
                    min(len(ordered) - 1, int(len(ordered) * 0.99))
                ],
                "sessions_bit_identical": all(
                    shas[index] == references[f"s{index}"]
                    for index in range(concurrency)
                ),
            }
        )

    shedding = asyncio.run(_shedding_phase(root, chunks, crowd_latency))
    single = phases[0]["throughput_batches_per_second"]
    top = phases[-1]["throughput_batches_per_second"]
    return {
        "benchmark": "serve-load",
        "fast_mode": fast_mode(),
        "python": platform.python_version(),
        "workload": {
            "dataset": "synthetic-restaurants",
            "records_per_session": records_cap,
            "batch_size": batch_size,
            "batches_per_session": len(chunks),
            "crowd_latency_seconds": crowd_latency,
            "concurrencies": list(concurrencies),
            "seed": seed,
            "worker_band": worker_band,
        },
        "phases": phases,
        "shedding": shedding,
        "speedups": {"max_vs_single_throughput": top / single},
    }


def serve_summary_rows(report: dict) -> list[list]:
    single = report["phases"][0]["throughput_batches_per_second"]
    rows = []
    for phase in report["phases"]:
        throughput = phase["throughput_batches_per_second"]
        rows.append(
            [
                f"{phase['concurrency']} session(s)",
                f"{phase['wall_seconds']:.2f}s",
                f"{throughput:.2f} batch/s",
                f"{phase['p50_seconds'] * 1000:.0f} / "
                f"{phase['p99_seconds'] * 1000:.0f} ms",
                f"{throughput / single:.2f}x",
            ]
        )
    shedding = report["shedding"]
    rows.append(
        [
            f"shed burst ({shedding['burst']} deep)",
            "--",
            f"{shedding['admitted']} admitted / {shedding['shed']} shed",
            "--",
            "priced" if shedding["all_sheds_priced"] else "UNPRICED",
        ]
    )
    return rows


def serve_acceptance_failures(report: dict) -> list[str]:
    """Gate violations, empty when the benchmark passes."""
    floor = (
        FAST_THROUGHPUT_SCALING_MIN
        if report["fast_mode"]
        else THROUGHPUT_SCALING_MIN
    )
    failures = []
    for phase in report["phases"]:
        if not phase["sessions_bit_identical"]:
            failures.append(
                f"{phase['concurrency']}-session phase diverged from the "
                "direct serial runs (state_sha mismatch)"
            )
    scaling = report["speedups"]["max_vs_single_throughput"]
    if scaling < floor:
        failures.append(
            f"aggregate throughput at max concurrency is only {scaling:.2f}x "
            f"the single-session baseline (floor {floor}x)"
        )
    shedding = report["shedding"]
    if shedding["shed"] == 0:
        failures.append(
            f"a {shedding['burst']}-deep burst past queue_depth="
            f"{shedding['queue_depth']} shed nothing"
        )
    if not shedding["all_sheds_priced"]:
        failures.append("a shed response is missing a positive retry_after")
    if not shedding["no_hard_errors"]:
        failures.append("the shed burst produced hard errors, not refusals")
    if not shedding["healthz_ok"]:
        failures.append("the server is unhealthy after the shed burst")
    if not shedding["recorded_equals_admitted"]:
        failures.append(
            "the session's recorded batches differ from the admitted count "
            "(shedding lost or duplicated work)"
        )
    return failures


__all__ = [
    "CONCURRENCIES",
    "FAST_THROUGHPUT_SCALING_MIN",
    "THROUGHPUT_SCALING_MIN",
    "run_serve_load_benchmark",
    "serve_acceptance_failures",
    "serve_summary_rows",
]
