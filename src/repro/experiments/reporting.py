"""Plain-text tables for the experiment harness.

Every figure/table harness prints the same rows the paper plots, via these
helpers, and the benchmark suite also persists them under
``benchmarks/results/`` so EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

import io
from collections.abc import Sequence
from pathlib import Path


def format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an aligned fixed-width table with a title rule."""
    rendered = [[format_value(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in rendered)) if rendered else len(str(header))
        for i, header in enumerate(headers)
    ]
    out = io.StringIO()
    out.write(f"== {title} ==\n")
    out.write("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)).rstrip() + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for row in rendered:
        out.write("  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip() + "\n")
    return out.getvalue()


def emit(title: str, headers: Sequence[str], rows: Sequence[Sequence],
         save_to: str | Path | None = None) -> str:
    """Print a table and optionally append it to a results file."""
    text = format_table(title, headers, rows)
    print(text)
    if save_to is not None:
        path = Path(save_to)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return text
