"""Experiment harnesses reproducing every table and figure of the paper."""

from . import ablations, figures, perf, serve_load, shard_scaling, stream_ingest
from .reporting import emit, format_table
from .runner import (
    METHODS,
    WORKER_BANDS,
    MethodRow,
    Workload,
    average_rows,
    compare_methods,
    fast_mode,
    make_crowd,
    prepare,
    run_method,
)

__all__ = [
    "METHODS",
    "MethodRow",
    "WORKER_BANDS",
    "Workload",
    "ablations",
    "average_rows",
    "compare_methods",
    "emit",
    "fast_mode",
    "figures",
    "format_table",
    "make_crowd",
    "perf",
    "prepare",
    "serve_load",
    "run_method",
    "shard_scaling",
    "stream_ingest",
]
