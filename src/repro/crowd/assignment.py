"""Question-to-worker assignment policies (the §2.2.2 QASCA idea).

The paper's related work cites quality-aware task assignment ("assigning
questions to appropriate workers").  The default platform assigns workers
to questions uniformly at random; this module adds alternatives:

* :class:`RandomAssignment` — the default, stateless and fair.
* :class:`BestWorkerAssignment` — always pick the highest-(estimated-)
  accuracy workers, subject to a per-worker load cap so a single expert
  cannot answer everything (platforms throttle workers in practice).
* :class:`RoundRobinAssignment` — spread load evenly regardless of quality
  (the fairness baseline).

A policy plugs into :class:`AssigningCrowd`, a
:class:`~repro.crowd.platform.SimulatedCrowd` whose worker selection is
delegated; everything else (voting, caching, cost) is inherited.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import defaultdict
from collections.abc import Mapping

from ..data.ground_truth import Pair
from ..exceptions import ConfigurationError
from .platform import SimulatedCrowd
from .worker import Worker, WorkerPool


class AssignmentPolicy(ABC):
    """Chooses which workers answer a question."""

    @abstractmethod
    def assign(self, pool: WorkerPool, pair: Pair, count: int) -> list[Worker]:
        """Pick *count* distinct workers from *pool* for *pair*."""


class RandomAssignment(AssignmentPolicy):
    """The platform default: uniform random, deterministic per pair."""

    def assign(self, pool: WorkerPool, pair: Pair, count: int) -> list[Worker]:
        return pool.assign(pair, count)


class RoundRobinAssignment(AssignmentPolicy):
    """Spread questions evenly across the pool (fairness baseline)."""

    def __init__(self) -> None:
        self._cursor = 0

    def assign(self, pool: WorkerPool, pair: Pair, count: int) -> list[Worker]:
        if count > len(pool):
            raise ConfigurationError(
                f"cannot assign {count} workers from a pool of {len(pool)}"
            )
        chosen = [
            pool.workers[(self._cursor + offset) % len(pool)]
            for offset in range(count)
        ]
        self._cursor = (self._cursor + count) % len(pool)
        return chosen


class BestWorkerAssignment(AssignmentPolicy):
    """Prefer the most accurate workers, under a per-worker load cap.

    Args:
        accuracies: estimated accuracy per worker id (e.g. from
            :func:`repro.crowd.quality.estimate_accuracy_from_gold` or
            Dawid-Skene); workers absent from the mapping rank last.
        max_load_share: no worker may answer more than this fraction of all
            assignments handed out so far (plus a small burst allowance),
            modelling platform throttling and keeping the panel diverse.
    """

    def __init__(
        self,
        accuracies: Mapping[int, float],
        max_load_share: float = 0.25,
    ) -> None:
        if not accuracies:
            raise ConfigurationError("need at least one accuracy estimate")
        if not 0.0 < max_load_share <= 1.0:
            raise ConfigurationError(
                f"max_load_share must be in (0, 1], got {max_load_share}"
            )
        self.accuracies = dict(accuracies)
        self.max_load_share = max_load_share
        self._load: dict[int, int] = defaultdict(int)
        self._total = 0

    def assign(self, pool: WorkerPool, pair: Pair, count: int) -> list[Worker]:
        if count > len(pool):
            raise ConfigurationError(
                f"cannot assign {count} workers from a pool of {len(pool)}"
            )
        burst = 5 * count  # allowance so the first questions aren't starved
        cap = self.max_load_share * (self._total + burst)
        ranked = sorted(
            pool.workers,
            key=lambda worker: (
                -(self.accuracies.get(worker.worker_id, 0.0)),
                worker.worker_id,
            ),
        )
        chosen: list[Worker] = []
        for worker in ranked:
            if len(chosen) == count:
                break
            if self._load[worker.worker_id] < cap:
                chosen.append(worker)
        # If the cap starved us (tiny pools), fall back to least-loaded.
        if len(chosen) < count:
            leftovers = [w for w in ranked if w not in chosen]
            leftovers.sort(key=lambda w: (self._load[w.worker_id], w.worker_id))
            chosen.extend(leftovers[: count - len(chosen)])
        for worker in chosen:
            self._load[worker.worker_id] += 1
        self._total += count
        return chosen


class AssigningCrowd(SimulatedCrowd):
    """A simulated crowd whose worker selection follows a policy."""

    def __init__(
        self,
        truth: Mapping[Pair, bool],
        pool: WorkerPool,
        policy: AssignmentPolicy,
        assignments: int = 5,
        aggregation: str = "weighted",
        difficulty: Mapping[Pair, float] | None = None,
    ) -> None:
        super().__init__(
            truth,
            pool=pool,
            assignments=assignments,
            aggregation=aggregation,
            difficulty=difficulty,
        )
        self.policy = policy

    def _select_workers(self, pair: Pair):
        return self.policy.assign(self.pool, pair, self.assignments)
