"""Simulated crowdsourcing platform: workers, voting, sessions, cost."""

from .aggregate import VoteOutcome, majority_vote, weighted_majority_vote
from .platform import CrowdSession, PerfectCrowd, SimulatedCrowd, ambiguity_difficulty
from .assignment import (
    AssigningCrowd,
    AssignmentPolicy,
    BestWorkerAssignment,
    RandomAssignment,
    RoundRobinAssignment,
)
from .latency import LatencyModel
from .quality import (
    DawidSkeneEstimator,
    DawidSkeneResult,
    QualityAwareCrowd,
    estimate_accuracy_from_gold,
)
from .worker import ACCURACY_BANDS, Worker, WorkerPool

__all__ = [
    "ACCURACY_BANDS",
    "AssigningCrowd",
    "AssignmentPolicy",
    "BestWorkerAssignment",
    "RandomAssignment",
    "RoundRobinAssignment",
    "CrowdSession",
    "DawidSkeneEstimator",
    "LatencyModel",
    "DawidSkeneResult",
    "QualityAwareCrowd",
    "estimate_accuracy_from_gold",
    "ambiguity_difficulty",
    "PerfectCrowd",
    "SimulatedCrowd",
    "VoteOutcome",
    "Worker",
    "WorkerPool",
    "majority_vote",
    "weighted_majority_vote",
]
