"""Worker model for the simulated crowd.

A worker answers a pair-comparison question ("do these two records refer to
the same entity?") correctly with probability equal to its accuracy — the
model the paper uses for its simulation experiments (§7.2.2), where workers
are generated "with quality in 70%-80%, 80%-90%, and above 90%".

Answers are deterministic per ``(worker, pair)`` under a fixed seed and do
not depend on the order in which questions are asked.  This reproduces the
paper's AMT protocol in which all pairs were crowdsourced once so that
"if different algorithms ask the same pair, they will use the same answer".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.ground_truth import Pair
from ..exceptions import ConfigurationError

#: Accuracy bands used throughout the paper's evaluation, keyed by the label
#: that appears in its figures ("70" = the 70%-80% approval band, etc.).
ACCURACY_BANDS: dict[str, tuple[float, float]] = {
    "70": (0.70, 0.80),
    "80": (0.80, 0.90),
    "90": (0.90, 1.00),
}


#: Worker behaviours: honest workers follow their accuracy; spammers ignore
#: the question entirely (§2.2.2's "malicious workers" that quality control
#: exists to catch).
BEHAVIORS = ("honest", "always-yes", "always-no", "random")


@dataclass(frozen=True)
class Worker:
    """One simulated crowd worker.

    Attributes:
        worker_id: stable identifier within its pool.
        accuracy: probability of answering any single question correctly
            (honest workers only).
        seed: base seed shared by the pool; per-answer randomness is derived
            from ``(seed, worker_id, pair)`` so answers are order-independent.
        behavior: ``"honest"`` (default), or a spammer type — ``"always-yes"``,
            ``"always-no"``, or ``"random"`` (coin flip regardless of truth).
    """

    worker_id: int
    accuracy: float
    seed: int
    behavior: str = "honest"

    def __post_init__(self) -> None:
        if not 0.0 <= self.accuracy <= 1.0:
            raise ConfigurationError(
                f"worker accuracy must be in [0, 1], got {self.accuracy}"
            )
        if self.behavior not in BEHAVIORS:
            raise ConfigurationError(
                f"unknown behavior {self.behavior!r}; known: {BEHAVIORS}"
            )

    def answer(self, pair: Pair, truth: bool, difficulty: float = 1.0) -> bool:
        """Return this worker's Yes/No vote on *pair* given the ground truth.

        Args:
            pair: the question (used only to derive per-answer randomness).
            truth: whether the records really refer to the same entity.
            difficulty: scales an honest worker's error probability.  1.0
                (the default) is the paper's §7.2.2 simulation model, where
                a worker errs with probability ``1 - accuracy`` on *every*
                pair.  Values < 1 model easy pairs (real crowds almost never
                mistake two obviously different restaurants); values up to
                2 model genuinely ambiguous pairs.  The effective error is
                clamped to [0, 0.5].  Spammers ignore difficulty.
        """
        if difficulty < 0:
            raise ConfigurationError(f"difficulty must be >= 0, got {difficulty}")
        if self.behavior == "always-yes":
            return True
        if self.behavior == "always-no":
            return False
        rng = np.random.default_rng((self.seed, self.worker_id, pair[0], pair[1]))
        if self.behavior == "random":
            return bool(rng.random() < 0.5)
        error = min(0.5, (1.0 - self.accuracy) * difficulty)
        correct = rng.random() >= error
        return truth if correct else not truth


class WorkerPool:
    """A pool of workers whose accuracies are drawn from a band.

    Args:
        size: number of workers in the pool.
        accuracy_range: inclusive-exclusive ``(low, high)`` band, or an
            :data:`ACCURACY_BANDS` label such as ``"80"``.
        seed: RNG seed for both accuracy draws and per-answer randomness.
        spammer_fraction: fraction of the pool replaced by spammers.
        spammer_behavior: what the spammers do (``"random"``,
            ``"always-yes"``, or ``"always-no"``).
    """

    def __init__(
        self,
        size: int = 50,
        accuracy_range: tuple[float, float] | str = "90",
        seed: int = 0,
        spammer_fraction: float = 0.0,
        spammer_behavior: str = "random",
    ) -> None:
        if size < 1:
            raise ConfigurationError(f"pool size must be >= 1, got {size}")
        if isinstance(accuracy_range, str):
            try:
                accuracy_range = ACCURACY_BANDS[accuracy_range]
            except KeyError:
                known = ", ".join(sorted(ACCURACY_BANDS))
                raise ConfigurationError(
                    f"unknown accuracy band {accuracy_range!r}; known: {known}"
                ) from None
        low, high = accuracy_range
        if not 0.0 <= low <= high <= 1.0:
            raise ConfigurationError(
                f"accuracy range must satisfy 0 <= low <= high <= 1, got {accuracy_range}"
            )
        if not 0.0 <= spammer_fraction <= 1.0:
            raise ConfigurationError(
                f"spammer_fraction must be in [0, 1], got {spammer_fraction}"
            )
        if spammer_behavior not in ("random", "always-yes", "always-no"):
            raise ConfigurationError(
                f"spammer_behavior must be a spammer type, got {spammer_behavior!r}"
            )
        self.seed = seed
        rng = np.random.default_rng((seed, 0xACC))
        accuracies = low + (high - low) * rng.random(size)
        num_spammers = round(size * spammer_fraction)
        spammer_ids = set(
            int(i) for i in rng.choice(size, size=num_spammers, replace=False)
        )
        self.workers = [
            Worker(
                worker_id=index,
                accuracy=float(accuracy),
                seed=seed,
                behavior=spammer_behavior if index in spammer_ids else "honest",
            )
            for index, accuracy in enumerate(accuracies)
        ]

    def __len__(self) -> int:
        return len(self.workers)

    def assign(self, pair: Pair, count: int) -> list[Worker]:
        """Pick *count* distinct workers for *pair*, deterministically.

        The draw is seeded by the pair so the same workers answer the same
        pair no matter which algorithm asks, or in which order.
        """
        if count > len(self.workers):
            raise ConfigurationError(
                f"cannot assign {count} workers from a pool of {len(self.workers)}"
            )
        rng = np.random.default_rng((self.seed, 0xA551, pair[0], pair[1]))
        chosen = rng.choice(len(self.workers), size=count, replace=False)
        return [self.workers[int(index)] for index in chosen]

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean([worker.accuracy for worker in self.workers]))
