"""Wall-clock latency model for crowdsourced runs.

The paper uses the number of crowd iterations as its latency proxy (each
iteration is one round trip to the platform).  This module turns iteration
structure into wall-clock estimates under a simple queueing model:

* posting a batch costs a fixed overhead (task review, platform delays);
* the platform has a limited number of concurrently active workers, each
  taking some time per question-assignment;
* a batch of ``q`` questions × ``z`` assignments therefore takes
  ``overhead + ceil(q * z / workers) * seconds_per_answer``.

So many small batches (SinglePath's one-question iterations) are dominated
by the per-round overhead, while one huge batch (CrowdER) is throughput
bound — exactly the trade-off the paper's Figs. 11/14 describe in units of
iterations.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class LatencyModel:
    """Crowd timing parameters.

    Attributes:
        concurrent_workers: workers answering at any moment.
        seconds_per_answer: mean time for one worker to judge one pair.
        round_overhead_seconds: fixed cost per crowd round trip (posting,
            platform matching, result collection).
        assignments: redundant workers per question, ``z``.
    """

    concurrent_workers: int = 25
    seconds_per_answer: float = 30.0
    round_overhead_seconds: float = 120.0
    assignments: int = 5

    def __post_init__(self) -> None:
        if self.concurrent_workers < 1:
            raise ConfigurationError(
                f"concurrent_workers must be >= 1, got {self.concurrent_workers}"
            )
        if self.seconds_per_answer <= 0:
            raise ConfigurationError(
                f"seconds_per_answer must be > 0, got {self.seconds_per_answer}"
            )
        if self.round_overhead_seconds < 0:
            raise ConfigurationError(
                f"round_overhead_seconds must be >= 0, got {self.round_overhead_seconds}"
            )
        if self.assignments < 1:
            raise ConfigurationError(
                f"assignments must be >= 1, got {self.assignments}"
            )

    def batch_seconds(self, batch_size: int) -> float:
        """Wall-clock time for one crowd round with *batch_size* questions."""
        if batch_size < 0:
            raise ConfigurationError(f"batch_size must be >= 0, got {batch_size}")
        if batch_size == 0:
            return 0.0
        waves = math.ceil(batch_size * self.assignments / self.concurrent_workers)
        return self.round_overhead_seconds + waves * self.seconds_per_answer

    def estimate_seconds(self, batch_sizes: Sequence[int]) -> float:
        """Total wall-clock time for a run's sequence of crowd rounds."""
        return sum(self.batch_seconds(size) for size in batch_sizes)

    def estimate_uniform(self, questions: int, iterations: int) -> float:
        """Estimate from aggregate counts, assuming equal-size rounds.

        Useful when only a run's totals are known (e.g. numbers quoted from
        a paper); exact per-round sizes give better estimates.
        """
        if questions < 0 or iterations < 0:
            raise ConfigurationError("questions and iterations must be >= 0")
        if iterations == 0:
            return 0.0
        per_round = questions / iterations
        waves = math.ceil(per_round * self.assignments / self.concurrent_workers)
        return iterations * (self.round_overhead_seconds + waves * self.seconds_per_answer)
