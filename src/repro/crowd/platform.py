"""The simulated crowdsourcing platform and per-algorithm sessions.

:class:`SimulatedCrowd` plays the role of AMT in the paper's setup (§7.1):
every pair has one cached, worker-voted answer, so different algorithms that
ask the same pair observe the same answer.  :class:`CrowdSession` is one
algorithm's ledger on top of the shared platform — it counts the questions
the algorithm asked, the iterations (batches) it used, and the monetary cost
under the paper's pricing (ten pairs per HIT, ten cents per HIT, ``z``
assignments per question).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping

from ..data.ground_truth import Pair, canonical_pair
from ..exceptions import ConfigurationError, CrowdError
from .aggregate import VoteOutcome, majority_vote, weighted_majority_vote
from .worker import WorkerPool


class SimulatedCrowd:
    """A crowdsourcing platform backed by ground truth and simulated workers.

    Args:
        truth: ground-truth answer per pair (True = same entity).  Asking a
            pair absent from this mapping raises :class:`CrowdError`.
        pool: the worker pool; defaults to a fresh 90 %-band pool.
        assignments: workers per question, ``z`` (paper default 5).
        aggregation: ``"majority"`` or ``"weighted"`` (weighted by worker
            accuracy; the paper's §7.1 default).
        difficulty: optional per-pair difficulty in [0, 2] scaling worker
            error probabilities.  ``None`` (default) reproduces the paper's
            §7.2.2 simulation, where workers err uniformly at the band rate;
            a mapping models the real-crowd regime of §7.2.1, where errors
            concentrate on genuinely ambiguous pairs (see
            :func:`ambiguity_difficulty` for the standard choice).
    """

    def __init__(
        self,
        truth: Mapping[Pair, bool],
        pool: WorkerPool | None = None,
        assignments: int = 5,
        aggregation: str = "weighted",
        difficulty: Mapping[Pair, float] | None = None,
    ) -> None:
        if assignments < 1:
            raise ConfigurationError(f"assignments must be >= 1, got {assignments}")
        if aggregation not in ("majority", "weighted"):
            raise ConfigurationError(
                f"aggregation must be 'majority' or 'weighted', got {aggregation!r}"
            )
        self.truth = {canonical_pair(*pair): bool(value) for pair, value in truth.items()}
        self.pool = pool if pool is not None else WorkerPool()
        self.assignments = assignments
        self.aggregation = aggregation
        self.difficulty = (
            None
            if difficulty is None
            else {canonical_pair(*pair): float(d) for pair, d in difficulty.items()}
        )
        self._cache: dict[Pair, VoteOutcome] = {}

    def answer(self, pair: Pair) -> VoteOutcome:
        """The platform's (cached) aggregated answer for *pair*."""
        pair = canonical_pair(*pair)
        cached = self._cache.get(pair)
        if cached is not None:
            return cached
        try:
            truth = self.truth[pair]
        except KeyError:
            raise CrowdError(f"pair {pair} is not in the platform's universe") from None
        workers = self._select_workers(pair)
        pair_difficulty = 1.0 if self.difficulty is None else self.difficulty.get(pair, 1.0)
        votes = [worker.answer(pair, truth, pair_difficulty) for worker in workers]
        if self.aggregation == "weighted":
            outcome = weighted_majority_vote(
                votes, [worker.accuracy for worker in workers]
            )
        else:
            outcome = majority_vote(votes)
        self._cache[pair] = outcome
        return outcome

    def _select_workers(self, pair: Pair):
        """Which workers answer *pair*; subclasses may apply a policy."""
        return self.pool.assign(pair, self.assignments)

    def session(
        self, pairs_per_hit: int = 10, cents_per_hit: int = 10
    ) -> "CrowdSession":
        """Open a fresh per-algorithm ledger over this platform."""
        return CrowdSession(self, pairs_per_hit=pairs_per_hit, cents_per_hit=cents_per_hit)


def ambiguity_difficulty(
    vectors: "np.ndarray", pairs: list[Pair], floor: float = 0.1, peak: float = 1.0
) -> dict[Pair, float]:
    """Per-pair difficulty from similarity ambiguity (real-crowd regime).

    A pair whose mean attribute similarity sits near 0.5 is genuinely
    ambiguous (difficulty → *peak*); pairs near 0 or 1 are easy (difficulty
    → *floor*).  Feeding this to :class:`SimulatedCrowd` reproduces the
    §7.2.1 observation that real workers of every approval band do well on
    easy datasets: their errors concentrate where the data is ambiguous,
    not uniformly.
    """
    import numpy as np

    vectors = np.asarray(vectors, dtype=np.float64)
    means = vectors.mean(axis=1)
    # Triangle peaking at 0.5: 1 at the boundary region, 0 at the extremes.
    ambiguity = 1.0 - np.abs(2.0 * means - 1.0)
    scale = floor + (peak - floor) * ambiguity
    return {canonical_pair(*pair): float(d) for pair, d in zip(pairs, scale)}


class PerfectCrowd(SimulatedCrowd):
    """An error-free crowd: always returns the ground truth with confidence 1.

    Useful as an oracle for tests and for isolating algorithmic question
    counts from worker noise.
    """

    def __init__(self, truth: Mapping[Pair, bool], assignments: int = 5) -> None:
        super().__init__(truth, pool=WorkerPool(size=assignments), assignments=assignments)

    def answer(self, pair: Pair) -> VoteOutcome:
        pair = canonical_pair(*pair)
        try:
            truth = self.truth[pair]
        except KeyError:
            raise CrowdError(f"pair {pair} is not in the platform's universe") from None
        return VoteOutcome(
            answer=truth, confidence=1.0, votes=(truth,) * self.assignments
        )


class CrowdSession:
    """One algorithm's view of the platform, with cost/latency accounting.

    Attributes:
        questions_asked: distinct pairs this session has asked.
        iterations: number of (non-empty) batches submitted — the paper's
            latency proxy, since each batch is one round trip to the crowd.

    Cost-accounting semantics (pinned — the engine's budget guardrails in
    :mod:`repro.engine.budget` invert this formula, so it must not drift):

    * Billing is **whole-run pooled**, not per-batch: HITs are counted as
      ``ceil(distinct_questions / pairs_per_hit)``, then multiplied by the
      platform's ``z`` assignments and priced at ``cents_per_hit``.  Many
      sub-HIT rounds (say 25 one-question batches) therefore cost exactly
      the same as one 25-question batch — the platform is assumed to pack
      questions from different rounds into shared HITs, as the paper's §7.1
      pricing (ten pairs per HIT, ten cents) implicitly does when it quotes
      a single cost per run.  Round-trip *latency* is what distinguishes
      the two shapes, via ``batch_sizes`` and
      :class:`~repro.crowd.latency.LatencyModel`, never money.
    * Rounding is **ceiling, once, at the end**: a final partial HIT is
      billed in full (11 distinct questions at 10 pairs/HIT → 2 HITs × z),
      but never more than once across batches.
    * Re-asked pairs are free: ``_asked`` is a set, so asking a pair again
      adds no HITs (the platform caches its answer).
    """

    def __init__(
        self,
        crowd: SimulatedCrowd,
        pairs_per_hit: int = 10,
        cents_per_hit: int = 10,
    ) -> None:
        if pairs_per_hit < 1:
            raise ConfigurationError(f"pairs_per_hit must be >= 1, got {pairs_per_hit}")
        if cents_per_hit < 0:
            raise ConfigurationError(f"cents_per_hit must be >= 0, got {cents_per_hit}")
        self.crowd = crowd
        self.pairs_per_hit = pairs_per_hit
        self.cents_per_hit = cents_per_hit
        self._asked: set[Pair] = set()
        self.iterations = 0
        #: Questions per round, in order — feeds the latency model.
        self.batch_sizes: list[int] = []

    def ask(self, pair: Pair) -> VoteOutcome:
        """Ask a single pair as its own iteration."""
        return self.ask_batch([pair])[canonical_pair(*pair)]

    def ask_batch(self, pairs: Iterable[Pair]) -> dict[Pair, VoteOutcome]:
        """Ask a batch of pairs in parallel; counts as one iteration.

        Re-asking a pair already asked in this session returns the cached
        answer and is not billed again.
        """
        batch = [canonical_pair(*pair) for pair in pairs]
        if not batch:
            return {}
        self.iterations += 1
        self.batch_sizes.append(len(batch))
        answers: dict[Pair, VoteOutcome] = {}
        for pair in batch:
            answers[pair] = self.crowd.answer(pair)
            self._asked.add(pair)
        return answers

    @property
    def questions_asked(self) -> int:
        return len(self._asked)

    @property
    def asked_pairs(self) -> frozenset[Pair]:
        return frozenset(self._asked)

    @property
    def hits(self) -> int:
        """HITs consumed: ceil(questions / pairs-per-HIT) × assignments."""
        if not self._asked:
            return 0
        return math.ceil(len(self._asked) / self.pairs_per_hit) * self.crowd.assignments

    @property
    def cost_cents(self) -> int:
        """Monetary cost in cents under the paper's pricing (§7.1)."""
        return self.hits * self.cents_per_hit
