"""Vote aggregation: majority and weighted-majority voting (§6, §7.1).

The paper assigns each question to ``z`` workers and aggregates with
(weighted) majority voting.  The confidence of the voted answer is ``y / z``
where ``y`` workers voted for the winning side (§6); for weighted voting the
confidence is the winning side's share of the total weight.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..exceptions import CrowdError


@dataclass(frozen=True)
class VoteOutcome:
    """Aggregated result of asking one question to several workers.

    Attributes:
        answer: the voted Yes (True) / No (False) answer.
        confidence: share of (weighted) votes supporting the answer, in
            ``(0.5, 1]`` unless the vote was a tie, in which case 0.5.
        votes: the individual worker votes, for auditability.
    """

    answer: bool
    confidence: float
    votes: tuple[bool, ...]

    @property
    def num_yes(self) -> int:
        return sum(self.votes)

    @property
    def num_no(self) -> int:
        return len(self.votes) - self.num_yes


def majority_vote(votes: Sequence[bool]) -> VoteOutcome:
    """Unweighted majority vote; ties resolve to No (different entities)."""
    if not votes:
        raise CrowdError("cannot aggregate zero votes")
    yes = sum(votes)
    no = len(votes) - yes
    answer = yes > no
    winning = max(yes, no)
    return VoteOutcome(
        answer=answer, confidence=winning / len(votes), votes=tuple(votes)
    )


def weighted_majority_vote(
    votes: Sequence[bool], weights: Sequence[float]
) -> VoteOutcome:
    """Weight each vote (typically by worker accuracy); ties resolve to No.

    This is the "weighted majority voting" of §7.1.  Non-positive total
    weight is rejected rather than silently producing a meaningless answer.
    """
    if not votes:
        raise CrowdError("cannot aggregate zero votes")
    if len(votes) != len(weights):
        raise CrowdError(f"{len(votes)} votes but {len(weights)} weights")
    yes_weight = sum(weight for vote, weight in zip(votes, weights) if vote)
    total = sum(weights)
    if total <= 0:
        raise CrowdError(f"total vote weight must be positive, got {total}")
    answer = yes_weight > total - yes_weight
    winning = max(yes_weight, total - yes_weight)
    return VoteOutcome(
        answer=answer, confidence=winning / total, votes=tuple(votes)
    )
