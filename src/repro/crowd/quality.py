"""Worker-quality estimation and quality-aware answer aggregation.

The paper's §6 takes majority voting "as an example" and notes that "any
other techniques can be integrated into our method"; §2.2.2 surveys the
quality-control literature (worker models, eliminating bad workers,
aggregation).  This module supplies those techniques:

* :func:`estimate_accuracy_from_gold` — the approval-rate approach: measure
  each worker on questions with known answers (qualification tests).
* :class:`DawidSkeneEstimator` — EM estimation of per-worker accuracy from
  the votes alone (the binary symmetric-error special case of Dawid &
  Skene, 1979): alternate between soft answer posteriors given accuracies
  and accuracy estimates given posteriors.
* :class:`QualityAwareCrowd` — a :class:`~repro.crowd.platform.
  SimulatedCrowd` that aggregates with *estimated* (not oracle) accuracies:
  log-odds weighted voting, which is the Bayes-optimal rule for independent
  binary votes.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from ..data.ground_truth import Pair, canonical_pair
from ..exceptions import ConfigurationError, CrowdError
from .aggregate import VoteOutcome
from .platform import SimulatedCrowd
from .worker import Worker, WorkerPool


def estimate_accuracy_from_gold(
    worker: Worker, gold: Mapping[Pair, bool], smoothing: float = 1.0
) -> float:
    """Estimate a worker's accuracy from questions with known answers.

    Laplace smoothing keeps estimates off the 0/1 boundary so that log-odds
    weights stay finite.
    """
    if smoothing < 0:
        raise ConfigurationError(f"smoothing must be >= 0, got {smoothing}")
    correct = sum(
        worker.answer(canonical_pair(*pair), truth) == truth
        for pair, truth in gold.items()
    )
    total = len(gold)
    return (correct + smoothing) / (total + 2 * smoothing)


@dataclass
class DawidSkeneResult:
    """Output of EM accuracy estimation.

    Attributes:
        accuracies: estimated per-worker accuracy, indexed by worker id.
        posteriors: per-question posterior probability of a Yes answer.
        iterations: EM rounds until convergence.
    """

    accuracies: dict[int, float]
    posteriors: dict[Pair, float]
    iterations: int


class DawidSkeneEstimator:
    """EM estimation of worker accuracies from redundant binary votes.

    The model: each question has a latent truth; worker ``w`` reports it
    correctly with probability ``a_w`` regardless of the true class (the
    symmetric one-coin model).  E-step: posterior of each question's truth
    given current accuracies.  M-step: each worker's accuracy is its
    expected agreement with the posteriors.

    Args:
        prior_yes: prior probability that a pair is a match (ER candidate
            sets are usually minority-positive).
        max_iterations / tolerance: EM stopping rule.
    """

    def __init__(
        self,
        prior_yes: float = 0.5,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
    ) -> None:
        if not 0.0 < prior_yes < 1.0:
            raise ConfigurationError(f"prior_yes must be in (0, 1), got {prior_yes}")
        if max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1, got {max_iterations}"
            )
        self.prior_yes = prior_yes
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    def estimate(
        self, votes: Mapping[Pair, Sequence[tuple[int, bool]]]
    ) -> DawidSkeneResult:
        """Run EM on ``{pair: [(worker_id, vote), ...]}``."""
        if not votes:
            raise CrowdError("cannot estimate accuracies from zero votes")
        worker_ids = sorted({w for ballots in votes.values() for w, _ in ballots})
        accuracy = {w: 0.7 for w in worker_ids}  # neutral-optimistic start
        posteriors = {pair: self.prior_yes for pair in votes}
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            # E-step: posterior P(truth = Yes | votes, accuracies).
            new_posteriors = {}
            for pair, ballots in votes.items():
                log_yes = math.log(self.prior_yes)
                log_no = math.log(1.0 - self.prior_yes)
                for worker_id, vote in ballots:
                    a = min(max(accuracy[worker_id], 1e-6), 1 - 1e-6)
                    log_yes += math.log(a if vote else 1 - a)
                    log_no += math.log(1 - a if vote else a)
                peak = max(log_yes, log_no)
                yes = math.exp(log_yes - peak)
                no = math.exp(log_no - peak)
                new_posteriors[pair] = yes / (yes + no)
            # M-step: expected agreement, Laplace-smoothed.
            counts = {w: [1.0, 2.0] for w in worker_ids}  # [agree, total]
            for pair, ballots in votes.items():
                p = new_posteriors[pair]
                for worker_id, vote in ballots:
                    counts[worker_id][0] += p if vote else 1 - p
                    counts[worker_id][1] += 1
            new_accuracy = {w: agree / total for w, (agree, total) in counts.items()}
            drift = max(
                abs(new_accuracy[w] - accuracy[w]) for w in worker_ids
            )
            shift = max(
                abs(new_posteriors[pair] - posteriors[pair]) for pair in votes
            )
            accuracy, posteriors = new_accuracy, new_posteriors
            if max(drift, shift) < self.tolerance:
                break
        return DawidSkeneResult(
            accuracies=accuracy, posteriors=posteriors, iterations=iterations
        )


class QualityAwareCrowd(SimulatedCrowd):
    """A crowd whose aggregation uses *estimated* worker accuracies.

    Workers answer as usual; votes are combined with log-odds weights
    ``log(a / (1 - a))`` derived from accuracies estimated on a gold
    qualification set — no oracle access to the true accuracy.  This is the
    "integrate any other technique" hook of §6 made concrete, and the
    aggregation ablation bench compares it against plain and
    accuracy-weighted majority voting.

    Args:
        truth: ground truth per pair (as for :class:`SimulatedCrowd`).
        pool: worker pool.
        gold: qualification questions with known answers used to estimate
            each worker's accuracy (disjoint from the task pairs ideally).
        assignments: workers per question.
        temperature: shrinkage on the log-odds (0 < t <= 1).  Raw Bayes
            aggregation is *overconfident* when the accuracy estimates come
            from a small gold set — wrong answers then carry confidences
            above Power+'s BLUE threshold and propagate.  Tempering keeps
            the votes' direction while calibrating the confidence.
    """

    def __init__(
        self,
        truth: Mapping[Pair, bool],
        pool: WorkerPool,
        gold: Mapping[Pair, bool],
        assignments: int = 5,
        difficulty: Mapping[Pair, float] | None = None,
        temperature: float = 1.0,
    ) -> None:
        super().__init__(
            truth, pool=pool, assignments=assignments, difficulty=difficulty
        )
        if not gold:
            raise ConfigurationError("need at least one gold question")
        if not 0.0 < temperature <= 1.0:
            raise ConfigurationError(
                f"temperature must be in (0, 1], got {temperature}"
            )
        self.temperature = temperature
        self.estimated_accuracy = {
            worker.worker_id: estimate_accuracy_from_gold(worker, gold)
            for worker in pool.workers
        }

    def answer(self, pair: Pair) -> VoteOutcome:
        pair = canonical_pair(*pair)
        cached = self._cache.get(pair)
        if cached is not None:
            return cached
        try:
            truth = self.truth[pair]
        except KeyError:
            raise CrowdError(f"pair {pair} is not in the platform's universe") from None
        workers = self.pool.assign(pair, self.assignments)
        pair_difficulty = 1.0 if self.difficulty is None else self.difficulty.get(pair, 1.0)
        votes = [worker.answer(pair, truth, pair_difficulty) for worker in workers]
        log_odds = 0.0
        for worker, vote in zip(workers, votes):
            a = min(max(self.estimated_accuracy[worker.worker_id], 1e-6), 1 - 1e-6)
            weight = math.log(a / (1 - a))
            log_odds += weight if vote else -weight
        log_odds *= self.temperature
        probability_yes = 1.0 / (1.0 + math.exp(-log_odds))
        answer = probability_yes > 0.5
        confidence = probability_yes if answer else 1.0 - probability_yes
        outcome = VoteOutcome(
            answer=answer, confidence=confidence, votes=tuple(votes)
        )
        self._cache[pair] = outcome
        return outcome
